//! Quickstart: compile a small uniform-object-model program, run the
//! object-inlining pipeline, and compare the two builds.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use object_inlining::support::Budget;
use object_inlining::{baseline_default, compile, optimize_resilient, run_default};

const SOURCE: &str = "
class Point {
  field x; field y;
  method init(a, b) { self.x = a; self.y = b; }
  method abs() { return sqrt(self.x * self.x + self.y * self.y); }
}

class Rectangle {
  field lower_left; field upper_right;
  method init(a, b, c, d) {
    self.lower_left = new Point(a, b);
    self.upper_right = new Point(c, d);
  }
  method diag() {
    var dx = self.upper_right.x - self.lower_left.x;
    var dy = self.upper_right.y - self.lower_left.y;
    return sqrt(dx * dx + dy * dy);
  }
}

fn main() {
  var total = 0.0;
  var i = 0;
  while (i < 1000) {
    var r = new Rectangle(0.0, 0.0, 3.0, 4.0);
    total = total + r.diag();
    i = i + 1;
  }
  print total;
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile(SOURCE)?;

    let base = baseline_default(&program);
    // The resilient entry point degrades (never panics) on pathological
    // inputs; a healthy program lands on the `guarded-full` tier.
    let optimized = optimize_resilient(&program, &Budget::unlimited()).optimized;

    println!(
        "fields inlined automatically: {} [tier: {}]",
        optimized.report.fields_inlined, optimized.report.tier
    );
    for outcome in &optimized.report.outcomes {
        let verdict = if outcome.inlined { "inlined" } else { "kept" };
        let reason = if outcome.reason.is_empty() {
            String::new()
        } else {
            format!(" ({})", outcome.reason)
        };
        println!("  {:10} {}{}", verdict, outcome.name, reason);
    }

    let before = run_default(&base)?;
    let after = run_default(&optimized.program)?;
    assert_eq!(
        before.output, after.output,
        "inlining must preserve behavior"
    );

    println!("\noutput: {}", before.output.trim());
    println!("\nbaseline metrics:\n{}", before.metrics);
    println!("\ninlined metrics:\n{}", after.metrics);
    println!(
        "\nspeedup: {:.2}x  (allocations {} -> {})",
        after.metrics.speedup_over(&before.metrics),
        before.metrics.allocations,
        after.metrics.allocations
    );
    Ok(())
}
