//! Runs the polyover benchmark (both variants) and prints the paper's
//! Figure 17 story for it: ~3x from collapsing reference chains, merging
//! result polygons into their cons cells, and locality.
//!
//! ```sh
//! cargo run --release --example polygon_overlay
//! ```

use oi_benchmarks::{evaluate, BenchSize};
use oi_core::pipeline::InlineConfig;
use oi_vm::VmConfig;

fn main() {
    for bench in [
        oi_benchmarks::programs::polyover::benchmark_array(BenchSize::Default),
        oi_benchmarks::programs::polyover::benchmark_list(BenchSize::Default),
    ] {
        let eval = evaluate(&bench, &VmConfig::default(), &InlineConfig::default());
        println!("== {} ==", eval.name);
        println!("output:\n{}", eval.output.trim());
        println!(
            "baseline {} cycles, inlined {} cycles -> {:.2}x (manual: {:.2}x)",
            eval.baseline.cycles,
            eval.inlined.cycles,
            eval.speedup(),
            eval.manual_speedup()
        );
        println!(
            "allocations {} -> {} | heap reads {} -> {} | cache misses {} -> {}",
            eval.baseline.allocations,
            eval.inlined.allocations,
            eval.baseline.heap_reads,
            eval.inlined.heap_reads,
            eval.baseline.cache_misses,
            eval.inlined.cache_misses
        );
        println!(
            "fields inlined: {} (+ {} array sites)\n",
            eval.report.fields_inlined, eval.report.array_sites_inlined
        );
    }
}
