//! The paper's running example (Figures 1–5), end to end: Points,
//! Rectangles, a subclass, polymorphic use through `do_rectangle`, and
//! Points escaping into Lists — printing the IR before and after so you can
//! see the class restructuring (Figure 11) and the use redirection
//! (Figure 12).
//!
//! ```sh
//! cargo run --example rectangle_inline
//! ```

use object_inlining::support::Budget;
use object_inlining::{compile, optimize_resilient, run_default};

/// A direct transliteration of the paper's Figures 1, 3, 4 and 5 (with
/// `do_rectangle` monomorphised per call through contour analysis, exactly
/// as the paper's Figure 6/7 walkthrough describes).
const SOURCE: &str = "
class Point {
  field x_pos; field y_pos;
  method init(x, y) { self.x_pos = x; self.y_pos = y; }
  method area(p) {
    return absf(self.x_pos - p.x_pos) * absf(self.y_pos - p.y_pos);
  }
  method abs() {
    return sqrt(self.x_pos * self.x_pos + self.y_pos * self.y_pos);
  }
}

class Rectangle {
  field lower_left; field upper_right;
  method init(ll_x, ll_y, ur_x, ur_y) {
    self.lower_left = new Point(ll_x, ll_y);
    self.upper_right = new Point(ur_x, ur_y);
  }
  method area() {
    return self.lower_left.area(self.upper_right);
  }
}

class Parallelogram : Rectangle {
  field upper_left;
}

class List {
  field head; field tail;
  method init(h, t) { self.head = h; self.tail = t; }
}

fn absf(v) { if (v < 0.0) { return 0.0 - v; } return v; }

fn do_rectangle(llx, lly, urx, ury) {
  var r = new Rectangle(llx, lly, urx, ury);
  print r.area();
  var l1 = new List(r.lower_left, nil);
  var l2 = new List(r.upper_right, nil);
  // head(l1) returns a Point inlined into a Rectangle; abs dispatches
  // against the interior reference (the paper's specialized clone).
  print l1.head.abs();
  print l2.head.abs();
}

fn main() {
  do_rectangle(1.0, 2.0, 3.0, 4.0);
  do_rectangle(5.0, 6.0, 7.0, 8.0);
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile(SOURCE)?;
    let optimized = optimize_resilient(&program, &Budget::unlimited()).optimized;

    println!("== decisions ==");
    for outcome in &optimized.report.outcomes {
        println!(
            "  {} {}",
            if outcome.inlined {
                "INLINED "
            } else {
                "rejected"
            },
            outcome.name
        );
        if !outcome.reason.is_empty() {
            println!("            {}", outcome.reason);
        }
    }

    // Show the restructured Rectangle/Parallelogram layouts (Figure 11).
    println!("\n== restructured class layouts ==");
    let p = &optimized.program;
    for name in ["Rectangle", "Parallelogram", "List"] {
        if let Some(cid) = p.class_by_name(name) {
            let fields: Vec<&str> = p
                .layout_of(cid)
                .iter()
                .map(|&f| p.interner.resolve(p.fields[f].name))
                .collect();
            println!("  {name}: [{}]", fields.join(", "));
        }
    }

    println!("\n== inline layouts ==");
    for (lid, layout) in p.layouts.iter_enumerated() {
        println!(
            "  {lid}: child={} slots={:?}",
            p.interner.resolve(p.classes[layout.child_class].name),
            layout.slots
        );
    }

    let before = run_default(&program)?;
    let after = run_default(&optimized.program)?;
    assert_eq!(before.output, after.output);
    println!("\n== program output (identical before/after) ==");
    print!("{}", after.output);
    println!(
        "\nallocations {} -> {}, heap reads {} -> {}",
        before.metrics.allocations,
        after.metrics.allocations,
        before.metrics.heap_reads,
        after.metrics.heap_reads
    );
    Ok(())
}
