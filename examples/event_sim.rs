//! Runs the Silo event-driven simulator benchmark and demonstrates both
//! sides of the paper's §6.1 discussion: the queue wrappers and log records
//! that *are* inlined, and the global event list whose cons cells are
//! correctly *refused* (copying them would change aliasing).
//!
//! ```sh
//! cargo run --release --example event_sim
//! ```

use oi_benchmarks::{evaluate, BenchSize};
use oi_core::ladder::{optimize_with_ladder, LadderConfig};
use oi_core::pipeline::{baseline, InlineConfig};
use oi_support::Budget;
use oi_vm::VmConfig;

fn main() {
    let bench = oi_benchmarks::programs::silo::benchmark(BenchSize::Default);
    let eval = evaluate(&bench, &VmConfig::default(), &InlineConfig::default());

    println!("== silo ==");
    println!("simulator output:\n{}", eval.output.trim());

    println!("\ninlining decisions:");
    for outcome in &eval.report.outcomes {
        if outcome.inlined {
            println!("  INLINED  {}", outcome.name);
        } else {
            println!("  refused  {} — {}", outcome.name, outcome.reason);
        }
    }
    println!(
        "  (+ {} array allocation site(s) inlined)",
        eval.report.array_sites_inlined
    );

    println!(
        "\nspeedup {:.2}x; allocations {} -> {}; the event list still allocates —",
        eval.speedup(),
        eval.baseline.allocations,
        eval.inlined.allocations
    );
    println!("events are aliased between the global list and their stations, exactly");
    println!("the limitation the paper reports for Silo.");

    // Show the per-class allocation census of both builds: Queue and Stats
    // vanish; Event and EvCell remain.
    let program = oi_ir::lower::compile(&bench.source).unwrap();
    let base = oi_vm::run(
        &baseline(&program, &Default::default()),
        &VmConfig::default(),
    )
    .unwrap();
    let inl = oi_vm::run(
        &optimize_with_ladder(&program, &LadderConfig::default(), &Budget::unlimited())
            .optimized
            .program,
        &VmConfig::default(),
    )
    .unwrap();
    println!("\nallocation census (baseline -> inlined):");
    let mut names: Vec<&str> = base
        .allocation_census
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    names.sort_unstable();
    for name in names {
        println!(
            "  {:14} {:>8} -> {:>8}",
            name,
            base.allocations_of(name),
            inl.allocations_of(name)
        );
    }
}
