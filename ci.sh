#!/usr/bin/env sh
# The full offline CI gate: formatting, lints, release build, tests.
# No network access is required — the workspace has no external deps.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> cargo test (property tests)"
cargo test -q --features property-tests --test proptest_pipeline

echo "==> bench-smoke (snapshot + noise-aware regression gate)"
# Fresh snapshots against the committed baselines. The modeled VM is
# deterministic, so a loose +/-25% gate only trips on real metric
# changes (after which the baselines need re-recording; see README
# "Benchmark snapshots"). Two wall-clock samples keep this step cheap.
# The committed baselines were recorded on a different machine, where
# wall-clock deltas mean nothing — so these compares disarm the
# statistical wall gate with --wall-advisory. The same-machine gate is
# exercised by the wall-stability step below.
cargo build --release -q -p oi-bench --bins
OI_BENCH_SAMPLES=2 target/release/oi-bench snapshot --size small --out target/bench_smoke_small.json
target/release/oi-bench compare BENCH_baseline_small.json target/bench_smoke_small.json --threshold-pct 25 --wall-advisory
OI_BENCH_SAMPLES=2 target/release/oi-bench snapshot --size default --out target/bench_smoke_default.json
target/release/oi-bench compare BENCH_baseline.json target/bench_smoke_default.json --threshold-pct 25 --wall-advisory

echo "==> prof-smoke (hierarchical profiler end to end)"
# `oic prof` on the example program: the oi.prof.v1 document and the
# collapsed-stack export must both come out well-formed, and bad flags
# must keep the exit-2 usage discipline.
target/release/oic prof examples/rectangle_inline.oi --json --out target/prof_smoke.json
grep -q '"schema":"oi.prof.v1"' target/prof_smoke.json
target/release/oic prof examples/rectangle_inline.oi --collapse --out target/prof_smoke.collapsed
grep -q '^compile' target/prof_smoke.collapsed
grep -q '^vm\.inlined;' target/prof_smoke.collapsed
if target/release/oic prof --bogus-flag examples/rectangle_inline.oi 2>/dev/null; then
    echo "prof-smoke: bad flag should exit non-zero" >&2
    exit 1
fi

echo "==> wall-stability (statistically gated wall-clock, same tree)"
# Two back-to-back snapshots of the identical build must compare clean
# with the full wall-clock gate armed: the noise-calibrated threshold
# has to absorb same-machine run-to-run jitter. A regression here means
# the noise model is underestimating the floor.
target/release/oi-bench snapshot --size small --samples 5 --out target/wall_a.json
target/release/oi-bench snapshot --size small --samples 5 --out target/wall_b.json
target/release/oi-bench compare target/wall_a.json target/wall_b.json

echo "==> fuzz-smoke (differential oracle, fixed seeds)"
# Deterministic adversarial fuzzing: every generated program runs under
# both the baseline and the inlined build and must agree on output,
# termination status, and total allocations. Fixed seeds keep the corpus
# stable across runs; bounded runs keep the step cheap. Any divergence
# or panic exits non-zero and fails CI.
target/release/oic fuzz --runs 64 --seed 1
target/release/oic fuzz --runs 64 --seed 97
# The same corpus with checked execution: the heap sanitizer validates
# every inline-object invariant during the inlined runs; any finding is
# an oracle rejection and fails the session.
target/release/oic fuzz --runs 64 --seed 1 --checked

echo "==> chaos-smoke (fault-injection matrix vs the detection lattice)"
# Injects every fault class from the systematic matrix into the sentinel
# corpus. The driver exits non-zero unless every class is detected
# (sanitizer or oracle), the culprit decision retracted, the repaired
# output restored baseline-equal, and zero faults escape. The run also
# covers the service-layer matrix (request-never-yields,
# fuel-exhaustion-storm, mid-request-panic, wedged-worker, compile-spin,
# retry-storm, persister-backlog) against the multi-tenant scheduler,
# the serve pump and its watchdog/breaker self-healing, and the storage
# I/O fault matrix (torn
# writes, bit flips, torn journal tails, version skew, ...) against the
# persistent artifact tier: every I/O class must be detected and
# quarantined with zero corrupt artifacts served. The document must
# carry every row and report zero escapes overall.
target/release/oic chaos --json --out target/chaos_smoke.json
grep -q '"service_faults":' target/chaos_smoke.json
for f in request-never-yields fuel-exhaustion-storm mid-request-panic \
         wedged-worker compile-spin retry-storm persister-backlog; do
    grep -q "\"fault\":\"$f\"" target/chaos_smoke.json
done
grep -q '"io_faults":' target/chaos_smoke.json
for f in torn-write truncated-journal-tail bit-flip-body bit-flip-header \
         stale-manifest-record enospc-mid-write version-skew; do
    grep -q "\"fault\":\"$f\"" target/chaos_smoke.json
done
grep -q '"escaped":0,"ok":true' target/chaos_smoke.json

echo "==> batch-smoke (panic-isolated fleet compilation under pressure)"
# The batch driver compiles the example programs plus a fixed-seed fuzz
# corpus through the degradation ladder. Unlimited budgets first: every
# job must land on a tier with zero panics and zero divergences (exit
# 0). Then a one-round analysis budget: jobs must *degrade* (sound
# global widening) rather than fail, so the run still exits 0 and the
# summary must show degraded jobs.
target/release/oic batch examples --fuzz-corpus 64 --seed 1 --keep-going --json --out target/batch_smoke.json
target/release/oic batch examples --fuzz-corpus 64 --seed 1 --max-rounds 1 --keep-going --json --out target/batch_tight.json
if grep -q '"degraded":0,' target/batch_tight.json; then
    echo "batch-smoke: expected degraded jobs under --max-rounds 1" >&2
    exit 1
fi

echo "==> serve-smoke (compile server protocol end to end)"
# A real piped session against `oic serve`: compile a program (miss),
# compile the same bytes again (hit), ask for the metrics registry, and
# shut down cleanly. The responses must carry the oi.serve.v1 envelope,
# the repeat must be served from the artifact cache, and the stats
# payload must be the oi.metrics.v1 export.
printf '%s\n' \
    '{"id": 1, "op": "compile", "path": "examples/rectangle_inline.oi"}' \
    '{"id": 2, "op": "compile", "path": "examples/rectangle_inline.oi"}' \
    '{"id": 3, "op": "stats"}' \
    '{"id": 4, "op": "shutdown"}' \
    | target/release/oic serve > target/serve_smoke.jsonl
test "$(wc -l < target/serve_smoke.jsonl)" -eq 4
grep -q '"schema":"oi.serve.v1"' target/serve_smoke.jsonl
if grep -q '"ok":false' target/serve_smoke.jsonl; then
    echo "serve-smoke: a request failed" >&2
    exit 1
fi
sed -n 2p target/serve_smoke.jsonl | grep -q '"cache":"hit"'
sed -n 3p target/serve_smoke.jsonl | grep -q '"schema":"oi.metrics.v1"'

echo "==> loadgen-smoke (replayed compile load against the server)"
# A seeded Zipf-skewed replay against an in-process server. The driver
# exits non-zero unless the run is error-free, the hit rate clears the
# structural floor, and the oi.metrics.v1 counters reconcile exactly
# with the driver's own tallies.
target/release/oic bench loadgen --requests 500 --sources 10 --seed 1 \
    --json --out target/loadgen_smoke.json
grep -q '"schema":"oi.load.v1"' target/loadgen_smoke.json
grep -q '"reconciled":true' target/loadgen_smoke.json

echo "==> persist-smoke (crash-safe artifact store across restarts)"
# Two piped serve sessions over the same --cache-dir: session one
# compiles (miss) and persists write-behind through the shutdown drain;
# session two is a fresh process that must answer the same bytes from
# the verified disk tier ("disk", not "miss") and serve the repeat from
# memory ("hit").
rm -rf target/persist_smoke_store
printf '%s\n' \
    '{"id": 1, "op": "compile", "path": "examples/rectangle_inline.oi"}' \
    '{"id": 2, "op": "shutdown"}' \
    | target/release/oic serve --cache-dir target/persist_smoke_store \
    > target/persist_smoke_a.jsonl
sed -n 1p target/persist_smoke_a.jsonl | grep -q '"cache":"miss"'
printf '%s\n' \
    '{"id": 1, "op": "compile", "path": "examples/rectangle_inline.oi"}' \
    '{"id": 2, "op": "compile", "path": "examples/rectangle_inline.oi"}' \
    '{"id": 3, "op": "shutdown"}' \
    | target/release/oic serve --cache-dir target/persist_smoke_store \
    > target/persist_smoke_b.jsonl
sed -n 1p target/persist_smoke_b.jsonl | grep -q '"cache":"disk"'
sed -n 2p target/persist_smoke_b.jsonl | grep -q '"cache":"hit"'
if grep -q '"ok":false' target/persist_smoke_b.jsonl; then
    echo "persist-smoke: a request failed after restart" >&2
    exit 1
fi
rm -rf target/persist_smoke_store

echo "==> restart-smoke (unclean kills against the persistent tier)"
# A scaled-down restartload replay: the trace is killed uncleanly twice
# (torn journal tail, no compaction) and restarted over the same store.
# The driver exits non-zero on any corrupt serve, any reconciliation
# mismatch, a restart without recovery evidence, or a warm hit rate
# under 0.8x the pre-kill steady state.
target/release/oic bench restartload --requests 300 --sources 10 --seed 1 \
    --json --out target/restart_smoke.json
grep -q '"schema":"oi.restart.v1"' target/restart_smoke.json
grep -q '"corrupt_total":0' target/restart_smoke.json
grep -q '"recovered":true' target/restart_smoke.json
grep -q '"reconciled":true' target/restart_smoke.json

echo "==> brownout-smoke (adaptive overload control end to end)"
# A seeded cold-compile burst against a brownout-enabled serve session:
# the controller must descend at least one rung under the burst, every
# shed must converge through the typed retry_after_ms contract with
# zero give-ups, queue-wait p99 while degraded must stay under twice
# the target, the ladder must unwind fully, and the driver's client-side
# tallies must reconcile exactly with the server's shed/request
# counters. The driver exits non-zero on any gate failure.
target/release/oic bench brownoutload --seed 1 \
    --json --out target/brownout_smoke.json
grep -q '"schema":"oi.brownout.v1"' target/brownout_smoke.json
grep -q '"give_ups":0' target/brownout_smoke.json
grep -q '"final_tier":"guarded-full"' target/brownout_smoke.json
if grep -q '"brownout_descend_total":0' target/brownout_smoke.json; then
    echo "brownout-smoke: the burst never forced a brownout descend" >&2
    exit 1
fi
grep -q '"passed":true' target/brownout_smoke.json

echo "==> tenant-smoke (metered multi-tenant execution end to end)"
# A scaled-down tenantload burst through the fuel-sliced fair
# scheduler: the gate exits non-zero on any panic, any cross-tenant
# kill, fuel non-reconciliation, a throughput miss, or a starved
# tenant. The throughput floor is dropped to 1 job/s so this step
# measures integrity, not machine speed.
target/release/oic bench tenantload --requests 1000 --tenants 50 --hogs 2 \
    --min-throughput 1 --json --out target/tenant_smoke.json
grep -q '"schema":"oi.tenantload.v1"' target/tenant_smoke.json
grep -q '"cross_tenant_kills":0' target/tenant_smoke.json
grep -q '"panics":0' target/tenant_smoke.json
grep -q '"reconciled":true' target/tenant_smoke.json
# A piped serve session under a tight instruction quota: the hostile
# tenant's run must die with a typed kill naming that tenant, while the
# well-behaved neighbor and the shutdown drain still answer in order.
printf '%s\n' \
    '{"id": 1, "op": "run", "tenant": "mallory", "source": "fn main() { var i = 0; var acc = 0; while (i < 50000) { acc = acc + i; i = i + 1; } print acc; }"}' \
    '{"id": 2, "op": "run", "tenant": "alice", "source": "fn main() { print 1 + 1; }"}' \
    '{"id": 3, "op": "shutdown"}' \
    | target/release/oic serve --max-instructions 1000 > target/tenant_serve_smoke.jsonl
test "$(wc -l < target/tenant_serve_smoke.jsonl)" -eq 3
sed -n 1p target/tenant_serve_smoke.jsonl | grep -q '"error_kind":"quota-exceeded"'
sed -n 1p target/tenant_serve_smoke.jsonl | grep -q 'mallory'
sed -n 2p target/tenant_serve_smoke.jsonl | grep -q '"ok":true'
sed -n 3p target/tenant_serve_smoke.jsonl | grep -q '"ok":true'

echo "CI green."
