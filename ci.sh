#!/usr/bin/env sh
# The full offline CI gate: formatting, lints, release build, tests.
# No network access is required — the workspace has no external deps.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> cargo test (property tests)"
cargo test -q --features property-tests --test proptest_pipeline

echo "CI green."
