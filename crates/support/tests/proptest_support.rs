//! Property tests for the support primitives.

use oi_support::{IdxVec, Interner, Span};
use proptest::prelude::*;

oi_support::define_idx!(pub struct PropId, "pid");

proptest! {
    #[test]
    fn interner_resolves_what_it_interned(words in proptest::collection::vec("\\PC{0,16}", 0..64)) {
        let mut interner = Interner::new();
        let syms: Vec<_> = words.iter().map(|w| interner.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            prop_assert_eq!(interner.resolve(*s), w.as_str());
        }
        // Interning again returns identical symbols.
        for (w, s) in words.iter().zip(&syms) {
            prop_assert_eq!(interner.intern(w), *s);
        }
        // Distinct strings get distinct symbols.
        let unique: std::collections::HashSet<_> = words.iter().collect();
        prop_assert_eq!(interner.len(), unique.len());
    }

    #[test]
    fn fresh_names_are_always_new(words in proptest::collection::vec("[a-z]{1,6}", 1..32)) {
        let mut interner = Interner::new();
        let mut seen = std::collections::HashSet::new();
        for w in &words {
            let s = interner.fresh(w);
            prop_assert!(seen.insert(s), "fresh returned an existing symbol");
        }
    }

    #[test]
    fn span_merge_is_commutative_associative_idempotent(
        (a1, a2) in (0u32..1000, 0u32..1000),
        (b1, b2) in (0u32..1000, 0u32..1000),
        (c1, c2) in (0u32..1000, 0u32..1000),
    ) {
        let s = |x: u32, y: u32| Span::new(x.min(y), x.max(y));
        let (a, b, c) = (s(a1, a2), s(b1, b2), s(c1, c2));
        prop_assert_eq!(a.merge(b), b.merge(a));
        prop_assert_eq!(a.merge(b).merge(c), a.merge(b.merge(c)));
        prop_assert_eq!(a.merge(a), a);
        // The merge covers both inputs.
        let m = a.merge(b);
        prop_assert!(m.start <= a.start && m.end >= a.end);
        prop_assert!(m.start <= b.start && m.end >= b.end);
    }

    #[test]
    fn span_line_col_is_monotone(src in "\\PC{0,120}", cut in 0usize..120) {
        let cut = cut.min(src.len()) as u32;
        // Snap to a char boundary.
        let mut cut = cut;
        while cut > 0 && !src.is_char_boundary(cut as usize) {
            cut -= 1;
        }
        let (l1, c1) = Span::new(0, 0).line_col(&src);
        let (l2, _c2) = Span::new(cut, cut).line_col(&src);
        prop_assert_eq!((l1, c1), (1, 1));
        prop_assert!(l2 >= 1);
    }

    #[test]
    fn idxvec_behaves_like_vec(values in proptest::collection::vec(any::<i64>(), 0..128)) {
        let mut iv: IdxVec<PropId, i64> = IdxVec::new();
        let mut ids = Vec::new();
        for &v in &values {
            ids.push(iv.push(v));
        }
        prop_assert_eq!(iv.len(), values.len());
        for (id, v) in ids.iter().zip(&values) {
            prop_assert_eq!(iv[*id], *v);
        }
        let collected: Vec<i64> = iv.iter().copied().collect();
        prop_assert_eq!(collected, values.clone());
        // Enumerated ids are dense and ordered.
        for (i, (id, _)) in iv.iter_enumerated().enumerate() {
            prop_assert_eq!(id.index(), i);
        }
        prop_assert_eq!(iv.into_inner(), values);
    }
}
