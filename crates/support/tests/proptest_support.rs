//! Property tests for the support primitives, driven by the in-repo
//! seeded PRNG so every failure reproduces from its printed seed.

use oi_support::rng::XorShift64;
use oi_support::{IdxVec, Interner, Span};

oi_support::define_idx!(pub struct PropId, "pid");

/// A random printable string, possibly with multi-byte characters.
fn random_word(rng: &mut XorShift64, max_len: usize) -> String {
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| match rng.below(8) {
            0 => 'é',
            1 => '—',
            2 => '🦀',
            3 => ' ',
            _ => (b'a' + rng.below(26) as u8) as char,
        })
        .collect()
}

#[test]
fn interner_resolves_what_it_interned() {
    for seed in 0..64u64 {
        let mut rng = XorShift64::new(seed);
        let words: Vec<String> = (0..rng.below(64))
            .map(|_| random_word(&mut rng, 16))
            .collect();
        let mut interner = Interner::new();
        let syms: Vec<_> = words.iter().map(|w| interner.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            assert_eq!(interner.resolve(*s), w.as_str(), "seed {seed}");
        }
        // Interning again returns identical symbols.
        for (w, s) in words.iter().zip(&syms) {
            assert_eq!(interner.intern(w), *s, "seed {seed}");
        }
        // Distinct strings get distinct symbols.
        let unique: std::collections::HashSet<_> = words.iter().collect();
        assert_eq!(interner.len(), unique.len(), "seed {seed}");
    }
}

#[test]
fn fresh_names_are_always_new() {
    for seed in 0..32u64 {
        let mut rng = XorShift64::new(seed);
        let mut interner = Interner::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1 + rng.below(31) {
            let w = rng.ident(6);
            let s = interner.fresh(&w);
            assert!(
                seen.insert(s),
                "seed {seed}: fresh returned an existing symbol"
            );
        }
    }
}

#[test]
fn span_merge_is_commutative_associative_idempotent() {
    let mut rng = XorShift64::new(0xA11CE);
    for _ in 0..256 {
        let mut s = || {
            let x = rng.below(1000) as u32;
            let y = rng.below(1000) as u32;
            Span::new(x.min(y), x.max(y))
        };
        let (a, b, c) = (s(), s(), s());
        assert_eq!(a.merge(b), b.merge(a));
        assert_eq!(a.merge(b).merge(c), a.merge(b.merge(c)));
        assert_eq!(a.merge(a), a);
        // The merge covers both inputs.
        let m = a.merge(b);
        assert!(m.start <= a.start && m.end >= a.end);
        assert!(m.start <= b.start && m.end >= b.end);
    }
}

#[test]
fn span_line_col_is_monotone() {
    for seed in 0..64u64 {
        let mut rng = XorShift64::new(seed);
        let mut src = random_word(&mut rng, 60);
        if rng.chance(1, 2) {
            src = src.replace(' ', "\n");
        }
        let mut cut = rng.below(src.len() + 1);
        // Snap to a char boundary.
        while cut > 0 && !src.is_char_boundary(cut) {
            cut -= 1;
        }
        let (l1, c1) = Span::new(0, 0).line_col(&src);
        let (l2, _c2) = Span::new(cut as u32, cut as u32).line_col(&src);
        assert_eq!((l1, c1), (1, 1), "seed {seed}");
        assert!(l2 >= 1, "seed {seed}");
    }
}

#[test]
fn idxvec_behaves_like_vec() {
    for seed in 0..64u64 {
        let mut rng = XorShift64::new(seed);
        let values: Vec<i64> = (0..rng.below(128)).map(|_| rng.next_u64() as i64).collect();
        let mut iv: IdxVec<PropId, i64> = IdxVec::new();
        let mut ids = Vec::new();
        for &v in &values {
            ids.push(iv.push(v));
        }
        assert_eq!(iv.len(), values.len());
        for (id, v) in ids.iter().zip(&values) {
            assert_eq!(iv[*id], *v);
        }
        let collected: Vec<i64> = iv.iter().copied().collect();
        assert_eq!(collected, values);
        // Enumerated ids are dense and ordered.
        for (i, (id, _)) in iv.iter_enumerated().enumerate() {
            assert_eq!(id.index(), i);
        }
        assert_eq!(iv.into_inner(), values);
    }
}
