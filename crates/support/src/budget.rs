//! Resource budgets for the analysis and pipeline: the knob that turns
//! cliff-edge divergence errors into graceful precision loss.
//!
//! A [`Budget`] bounds a compilation along four dimensions — wall-clock
//! deadline, abstract-interpretation steps, fixpoint rounds, and contour
//! creations. Consumers *charge* the budget as they work; the first
//! dimension to run out is recorded and every later charge fails, so the
//! caller can switch to a degraded-but-sound strategy (the analysis
//! engine widens globally; the pipeline ladder descends a tier).
//!
//! Charges use interior mutability ([`std::cell::Cell`]) so a budget can
//! be threaded by shared reference through code that is otherwise
//! immutable-borrow-heavy. A `Budget` is deliberately neither `Clone`
//! nor `Sync`: one budget governs one job on one thread.
//!
//! # Examples
//!
//! ```
//! use oi_support::budget::{Budget, BudgetDimension};
//!
//! let b = Budget::unlimited().with_rounds(2);
//! assert!(b.charge_round());
//! assert!(b.charge_round());
//! assert!(!b.charge_round());
//! assert_eq!(b.exhausted_dimension(), Some(BudgetDimension::Rounds));
//! // Exhaustion is sticky across dimensions.
//! assert!(!b.charge_step());
//! ```

use std::cell::Cell;
use std::time::{Duration, Instant};

/// The budget dimension that ran out first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetDimension {
    /// The wall-clock deadline passed.
    Deadline,
    /// The abstract-interpretation step allowance ran out.
    Steps,
    /// The fixpoint-round allowance ran out.
    Rounds,
    /// The contour-creation allowance ran out.
    Contours,
}

impl BudgetDimension {
    /// Stable kebab-case name used in provenance, traces, and JSON.
    pub fn name(self) -> &'static str {
        match self {
            BudgetDimension::Deadline => "deadline",
            BudgetDimension::Steps => "steps",
            BudgetDimension::Rounds => "rounds",
            BudgetDimension::Contours => "contours",
        }
    }
}

impl std::fmt::Display for BudgetDimension {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How often `charge_step` consults the clock. Steps are charged per
/// abstract instruction, so an `Instant::now()` each time would dominate;
/// once every 1024 steps keeps deadline overshoot in the microseconds.
const DEADLINE_CHECK_MASK: u64 = 1023;

/// A cooperative resource budget (see the module docs).
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    steps_left: Cell<u64>,
    rounds_left: Cell<u64>,
    contours_left: Cell<u64>,
    ticks: Cell<u64>,
    exhausted: Cell<Option<BudgetDimension>>,
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Budget {
    /// A budget no charge can exhaust.
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            steps_left: Cell::new(u64::MAX),
            rounds_left: Cell::new(u64::MAX),
            contours_left: Cell::new(u64::MAX),
            ticks: Cell::new(0),
            exhausted: Cell::new(None),
        }
    }

    /// Sets a wall-clock deadline `limit` from now.
    #[must_use]
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(Instant::now() + limit);
        self
    }

    /// Caps abstract-interpretation steps.
    #[must_use]
    pub fn with_steps(self, steps: u64) -> Self {
        self.steps_left.set(steps);
        self
    }

    /// Caps fixpoint rounds.
    #[must_use]
    pub fn with_rounds(self, rounds: u64) -> Self {
        self.rounds_left.set(rounds);
        self
    }

    /// Caps contour creations (method and object contours combined).
    #[must_use]
    pub fn with_contours(self, contours: u64) -> Self {
        self.contours_left.set(contours);
        self
    }

    /// The dimension that ran out, if any.
    pub fn exhausted_dimension(&self) -> Option<BudgetDimension> {
        self.exhausted.get()
    }

    /// `true` once any dimension has run out. Exhaustion is sticky: no
    /// later charge on any dimension succeeds.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted.get().is_some()
    }

    /// Checks the deadline immediately (charges nothing). Returns `false`
    /// when the budget is exhausted.
    pub fn check_deadline(&self) -> bool {
        if self.is_exhausted() {
            return false;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.exhausted.set(Some(BudgetDimension::Deadline));
                return false;
            }
        }
        true
    }

    /// Charges one abstract-interpretation step. The deadline is polled
    /// every 1024 steps. Returns `false` when the budget is exhausted.
    pub fn charge_step(&self) -> bool {
        if self.is_exhausted() {
            return false;
        }
        let ticks = self.ticks.get().wrapping_add(1);
        self.ticks.set(ticks);
        if ticks & DEADLINE_CHECK_MASK == 0 && !self.check_deadline() {
            return false;
        }
        self.decrement(&self.steps_left, BudgetDimension::Steps)
    }

    /// Charges one fixpoint round (and polls the deadline). Returns
    /// `false` when the budget is exhausted.
    pub fn charge_round(&self) -> bool {
        if !self.check_deadline() {
            return false;
        }
        self.decrement(&self.rounds_left, BudgetDimension::Rounds)
    }

    /// Charges one contour creation (and polls the deadline). Returns
    /// `false` when the budget is exhausted.
    pub fn charge_contour(&self) -> bool {
        if !self.check_deadline() {
            return false;
        }
        self.decrement(&self.contours_left, BudgetDimension::Contours)
    }

    fn decrement(&self, left: &Cell<u64>, dim: BudgetDimension) -> bool {
        match left.get() {
            0 => {
                self.exhausted.set(Some(dim));
                false
            }
            u64::MAX => true, // unlimited sentinel
            n => {
                left.set(n - 1);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.charge_step());
        }
        assert!(b.charge_round());
        assert!(b.charge_contour());
        assert!(!b.is_exhausted());
    }

    #[test]
    fn step_budget_exhausts_and_is_sticky() {
        let b = Budget::unlimited().with_steps(3);
        assert!(b.charge_step());
        assert!(b.charge_step());
        assert!(b.charge_step());
        assert!(!b.charge_step());
        assert_eq!(b.exhausted_dimension(), Some(BudgetDimension::Steps));
        // Other dimensions are shut off too.
        assert!(!b.charge_round());
        assert!(!b.charge_contour());
    }

    #[test]
    fn contour_budget_is_independent_of_rounds() {
        let b = Budget::unlimited().with_contours(1).with_rounds(10);
        assert!(b.charge_round());
        assert!(b.charge_contour());
        assert!(!b.charge_contour());
        assert_eq!(b.exhausted_dimension(), Some(BudgetDimension::Contours));
    }

    #[test]
    fn expired_deadline_exhausts_on_first_poll() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        assert!(!b.charge_round());
        assert_eq!(b.exhausted_dimension(), Some(BudgetDimension::Deadline));
    }

    #[test]
    fn zero_round_budget_fails_the_first_charge() {
        let b = Budget::unlimited().with_rounds(0);
        assert!(!b.charge_round());
        assert_eq!(b.exhausted_dimension(), Some(BudgetDimension::Rounds));
    }

    #[test]
    fn dimension_names_are_stable() {
        assert_eq!(BudgetDimension::Deadline.name(), "deadline");
        assert_eq!(BudgetDimension::Steps.name(), "steps");
        assert_eq!(BudgetDimension::Rounds.name(), "rounds");
        assert_eq!(BudgetDimension::Contours.name(), "contours");
        assert_eq!(BudgetDimension::Rounds.to_string(), "rounds");
    }
}
