//! Shared, typed error values for pipeline stages.
//!
//! Stages that can fail on hostile input return `Result<_, OiError>` so
//! callers (the CLI, the fuzz harness, the soundness firewall) degrade
//! gracefully instead of panicking. Internal-invariant violations stay
//! panics; everything reachable from user-supplied programs gets a
//! variant here.

use std::error::Error;
use std::fmt;

/// A recoverable pipeline failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OiError {
    /// The abstract interpretation failed to reach a fixpoint within its
    /// configured round budget.
    AnalysisDivergence {
        /// The round bound that was exhausted.
        rounds: usize,
    },
    /// A transformation stage produced IR that fails verification.
    InvalidIr {
        /// Which stage produced the program (`"restructure"`,
        /// `"finalize"`, ...).
        stage: String,
        /// Rendered verifier diagnostics.
        errors: Vec<String>,
    },
    /// A catch-all for violated internal invariants surfaced as errors
    /// rather than panics (e.g. running unverified IR).
    Internal {
        /// What went wrong.
        context: String,
    },
}

impl fmt::Display for OiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OiError::AnalysisDivergence { rounds } => {
                write!(f, "analysis failed to converge in {rounds} rounds")
            }
            OiError::InvalidIr { stage, errors } => {
                write!(f, "{stage} produced invalid IR: {}", errors.join("; "))
            }
            OiError::Internal { context } => write!(f, "internal error: {context}"),
        }
    }
}

impl Error for OiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_stage_and_bound() {
        let e = OiError::AnalysisDivergence { rounds: 12 };
        assert_eq!(e.to_string(), "analysis failed to converge in 12 rounds");
        let e = OiError::InvalidIr {
            stage: "restructure".into(),
            errors: vec!["a".into(), "b".into()],
        };
        assert_eq!(e.to_string(), "restructure produced invalid IR: a; b");
    }
}
