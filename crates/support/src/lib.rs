#![warn(missing_docs)]
//! Support utilities for the object-inlining reproduction.
//!
//! This crate hosts the small, dependency-free building blocks shared by the
//! rest of the workspace:
//!
//! - [`intern`]: a string interner producing copyable [`intern::Symbol`]s,
//! - [`index`]: typed index newtypes and the [`index::IdxVec`] arena,
//! - [`budget`]: cooperative resource budgets (deadline, steps, rounds,
//!   contours) behind the analysis governor and the batch driver,
//! - [`cli`]: the shared command-line argument scanner used by every
//!   binary (strict flag classification, exit-2 discipline),
//! - [`codec`]: dependency-free binary encoding (bounds-checked,
//!   panic-free decoding) behind the persistent artifact store,
//! - [`diag`]: source spans, a line-start index, and compiler diagnostics,
//! - [`error`]: the shared [`error::OiError`] type for recoverable
//!   pipeline failures,
//! - [`hash`]: a dependency-free blake-style 128-bit content hash behind
//!   the compile server's artifact-cache keys,
//! - [`json`]: a dependency-free JSON document model (build, print, parse),
//! - [`metrics`]: a service-metrics registry (counters, gauges, latency
//!   histograms) exported as schema-stable `oi.metrics.v1`,
//! - [`panic`]: panic containment (`catch_unwind` + hook silencing) for
//!   drivers that survive hostile jobs,
//! - [`trace`]: the `oi-trace` observability layer (spans, events,
//!   counters, and pluggable sinks selected via `OIC_TRACE`),
//! - [`rng`]: a seedable xorshift PRNG for synthetic workloads and
//!   property tests,
//! - [`stats`]: robust timing statistics (median/MAD, IQR outlier
//!   rejection, calibrated noise floors) behind every wall-clock verdict.
//!
//! # Examples
//!
//! ```
//! use oi_support::intern::Interner;
//!
//! let mut interner = Interner::new();
//! let a = interner.intern("lower_left");
//! let b = interner.intern("lower_left");
//! assert_eq!(a, b);
//! assert_eq!(interner.resolve(a), "lower_left");
//! ```

pub mod budget;
pub mod cli;
pub mod codec;
pub mod diag;
pub mod error;
pub mod hash;
pub mod index;
pub mod intern;
pub mod json;
pub mod metrics;
pub mod panic;
pub mod rng;
pub mod stats;
pub mod trace;

pub use budget::{Budget, BudgetDimension};
pub use diag::{Diagnostic, LineIndex, Span};
pub use error::OiError;
pub use index::IdxVec;
pub use intern::{Interner, Symbol};
pub use json::Json;

/// Declares a copyable, ordered, hashable index newtype over `u32`.
///
/// The generated type implements the [`index::Idx`] trait so it can key an
/// [`IdxVec`].
///
/// # Examples
///
/// ```
/// oi_support::define_idx!(pub struct ClassId, "class");
/// let c = ClassId::new(3);
/// assert_eq!(c.index(), 3);
/// assert_eq!(format!("{c:?}"), "class3");
/// ```
#[macro_export]
macro_rules! define_idx {
    ($(#[$meta:meta])* pub struct $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an index from a raw `usize`.
            ///
            /// # Panics
            ///
            /// Panics if `raw` exceeds `u32::MAX`.
            #[inline]
            pub fn new(raw: usize) -> Self {
                assert!(raw <= u32::MAX as usize, "index overflow");
                Self(raw as u32)
            }

            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl $crate::index::Idx for $name {
            #[inline]
            fn from_usize(raw: usize) -> Self {
                Self::new(raw)
            }
            #[inline]
            fn as_usize(self) -> usize {
                self.index()
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}
