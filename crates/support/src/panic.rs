//! Panic containment shared by the fuzz harness and the batch driver.
//!
//! Both drivers run many untrusted compilations in one process and must
//! turn a panicking job into a reported finding instead of a dead
//! process. The pattern is always the same — `catch_unwind` around the
//! job, panic payload rendered to a string, and the default panic hook
//! (which prints a backtrace per panic) silenced for the session so a
//! hostile corpus cannot flood the output. This module centralizes it.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f`, converting a panic into an `Err` carrying the payload
/// rendered as a string.
///
/// The closure is wrapped in [`AssertUnwindSafe`]: callers hand in
/// borrows of state they will discard (or only read) after a panic, which
/// is the contained-job contract.
///
/// # Errors
///
/// Returns the panic message when `f` panics (`"non-string panic
/// payload"` when the payload is not a `String` or `&str`).
pub fn contained<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_else(|| "non-string panic payload".to_owned())
    })
}

/// Silences the process-global panic hook until the returned guard drops,
/// restoring the previous hook afterwards.
///
/// Install this once per session *before* spawning contained jobs (the
/// hook is process-global, so set it from the driver thread, not from
/// workers). Nesting is safe — each guard restores what it replaced.
#[must_use = "the hook is restored when the guard drops"]
pub fn silence_hook() -> HookGuard {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    HookGuard { prev: Some(prev) }
}

/// A boxed panic hook, as [`std::panic::take_hook`] returns it.
type Hook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

/// Restores the previous panic hook on drop; see [`silence_hook`].
pub struct HookGuard {
    prev: Option<Hook>,
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contained_passes_values_through() {
        assert_eq!(contained(|| 41 + 1), Ok(42));
    }

    #[test]
    fn contained_renders_string_payloads() {
        let _quiet = silence_hook();
        let err = contained(|| -> () { panic!("boom {}", 7) }).unwrap_err();
        assert_eq!(err, "boom 7");
        let err = contained(|| -> () { panic!("plain") }).unwrap_err();
        assert_eq!(err, "plain");
    }

    #[test]
    fn contained_renders_non_string_payloads() {
        let _quiet = silence_hook();
        let err = contained(|| -> () { std::panic::panic_any(17_usize) }).unwrap_err();
        assert_eq!(err, "non-string panic payload");
    }
}
