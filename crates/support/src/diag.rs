//! Source spans and diagnostics.
//!
//! All front-end and verification errors carry a [`Span`] pointing into the
//! original source text so messages can quote line/column positions.

use std::error::Error;
use std::fmt;

/// A half-open byte range into a source string.
///
/// # Examples
///
/// ```
/// use oi_support::Span;
/// let s = Span::new(4, 9);
/// assert_eq!(s.len(), 5);
/// let merged = s.merge(Span::new(1, 6));
/// assert_eq!((merged.start, merged.end), (1, 9));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span from byte offsets.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "span start after end");
        Self { start, end }
    }

    /// A zero-length span at offset 0, for synthesized nodes.
    pub fn dummy() -> Self {
        Self::default()
    }

    /// Length in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Returns `true` for zero-length spans.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Computes 1-based `(line, column)` of the span start within `source`.
    ///
    /// Convenience for one-off lookups; when rendering several
    /// diagnostics against the same source, build a [`LineIndex`] once
    /// and use [`LineIndex::line_col`] instead of rescanning per span.
    pub fn line_col(self, source: &str) -> (u32, u32) {
        LineIndex::new(source).line_col(self)
    }
}

/// A precomputed line-start table for a source string.
///
/// Locating a span is a binary search over line starts plus a scan of one
/// line to count characters, instead of a scan of the whole file per
/// lookup. Columns are 1-based and counted in characters (not bytes), so
/// multi-byte UTF-8 code points each advance the column by one.
///
/// # Examples
///
/// ```
/// use oi_support::{LineIndex, Span};
/// let index = LineIndex::new("ab\ncdé f");
/// assert_eq!(index.line_col(Span::new(7, 8)), (2, 4)); // after 'é'
/// ```
pub struct LineIndex<'a> {
    source: &'a str,
    /// Byte offset of the first byte of each line; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl<'a> LineIndex<'a> {
    /// Scans `source` once, recording where each line begins.
    pub fn new(source: &'a str) -> Self {
        let mut line_starts = vec![0u32];
        for (idx, byte) in source.bytes().enumerate() {
            if byte == b'\n' {
                line_starts.push(idx as u32 + 1);
            }
        }
        Self {
            source,
            line_starts,
        }
    }

    /// 1-based `(line, column)` of the span's start offset. Offsets past
    /// the end of the source are clamped to the end.
    pub fn line_col(&self, span: Span) -> (u32, u32) {
        let offset = (span.start as usize).min(self.source.len()) as u32;
        // partition_point finds the first line starting *after* offset;
        // the line containing the offset is the one before it.
        let line = self.line_starts.partition_point(|&start| start <= offset) - 1;
        let line_start = self.line_starts[line] as usize;
        let col = self.source[line_start..offset as usize].chars().count() as u32 + 1;
        (line as u32 + 1, col)
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Severity of a [`Diagnostic`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory note.
    Note,
    /// A problem that does not stop compilation.
    Warning,
    /// A fatal problem.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => f.write_str("note"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A compiler message attached to a source location.
///
/// # Examples
///
/// ```
/// use oi_support::{Diagnostic, Span};
/// let d = Diagnostic::error("unknown class `Pointt`", Span::new(10, 16));
/// assert!(d.to_string().contains("unknown class"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the message is.
    pub severity: Severity,
    /// Human-readable description, lowercase, no trailing period.
    pub message: String,
    /// Where in the source the problem lies.
    pub span: Span,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Self {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Self {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Creates a note diagnostic.
    pub fn note(message: impl Into<String>, span: Span) -> Self {
        Self {
            severity: Severity::Note,
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic with line/column information from `source`.
    ///
    /// Builds a throwaway [`LineIndex`]; when rendering a batch of
    /// diagnostics, prefer [`Diagnostic::render_with`].
    pub fn render(&self, source: &str) -> String {
        self.render_with(&LineIndex::new(source))
    }

    /// Renders the diagnostic using a prebuilt [`LineIndex`].
    pub fn render_with(&self, index: &LineIndex<'_>) -> String {
        let (line, col) = index.line_col(self.span);
        format!("{}:{}: {}: {}", line, col, self.severity, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} at {:?}", self.severity, self.message, self.span)
    }
}

impl Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_commutative_cover() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 10);
        assert_eq!(a.merge(b), b.merge(a));
        assert_eq!(a.merge(b), Span::new(2, 10));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncde\nf";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(5, 6).line_col(src), (2, 3));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 1));
    }

    #[test]
    fn line_index_matches_scan_on_multibyte_sources() {
        // 'é' is 2 bytes, '—' is 3, '🦀' is 4: byte offsets and char
        // columns diverge from the second character of each line on.
        let src = "aé b🦀c\nsecond — line\nплюс";
        let index = LineIndex::new(src);
        for (byte_offset, _) in src.char_indices() {
            let span = Span::new(byte_offset as u32, byte_offset as u32);
            // Reference implementation: the old linear scan.
            let mut line = 1u32;
            let mut col = 1u32;
            for (idx, ch) in src.char_indices() {
                if idx >= byte_offset {
                    break;
                }
                if ch == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            assert_eq!(index.line_col(span), (line, col), "offset {byte_offset}");
        }
    }

    #[test]
    fn line_index_clamps_past_end() {
        let index = LineIndex::new("ab\nc");
        assert_eq!(index.line_col(Span::new(100, 100)), (2, 2));
    }

    #[test]
    fn line_index_handles_empty_and_trailing_newline() {
        assert_eq!(LineIndex::new("").line_col(Span::new(0, 0)), (1, 1));
        let index = LineIndex::new("ab\n");
        assert_eq!(index.line_col(Span::new(3, 3)), (2, 1));
    }

    #[test]
    fn render_includes_position() {
        let d = Diagnostic::error("bad token", Span::new(3, 4));
        assert_eq!(d.render("ab\ncd"), "2:1: error: bad token");
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    #[should_panic(expected = "span start after end")]
    fn invalid_span_panics() {
        let _ = Span::new(5, 3);
    }
}
