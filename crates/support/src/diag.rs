//! Source spans and diagnostics.
//!
//! All front-end and verification errors carry a [`Span`] pointing into the
//! original source text so messages can quote line/column positions.

use std::error::Error;
use std::fmt;

/// A half-open byte range into a source string.
///
/// # Examples
///
/// ```
/// use oi_support::Span;
/// let s = Span::new(4, 9);
/// assert_eq!(s.len(), 5);
/// let merged = s.merge(Span::new(1, 6));
/// assert_eq!((merged.start, merged.end), (1, 9));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span from byte offsets.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "span start after end");
        Self { start, end }
    }

    /// A zero-length span at offset 0, for synthesized nodes.
    pub fn dummy() -> Self {
        Self::default()
    }

    /// Length in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Returns `true` for zero-length spans.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Computes 1-based `(line, column)` of the span start within `source`.
    pub fn line_col(self, source: &str) -> (u32, u32) {
        let mut line = 1;
        let mut col = 1;
        for (idx, ch) in source.char_indices() {
            if idx as u32 >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Severity of a [`Diagnostic`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory note.
    Note,
    /// A problem that does not stop compilation.
    Warning,
    /// A fatal problem.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => f.write_str("note"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A compiler message attached to a source location.
///
/// # Examples
///
/// ```
/// use oi_support::{Diagnostic, Span};
/// let d = Diagnostic::error("unknown class `Pointt`", Span::new(10, 16));
/// assert!(d.to_string().contains("unknown class"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the message is.
    pub severity: Severity,
    /// Human-readable description, lowercase, no trailing period.
    pub message: String,
    /// Where in the source the problem lies.
    pub span: Span,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Self { severity: Severity::Error, message: message.into(), span }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Self { severity: Severity::Warning, message: message.into(), span }
    }

    /// Creates a note diagnostic.
    pub fn note(message: impl Into<String>, span: Span) -> Self {
        Self { severity: Severity::Note, message: message.into(), span }
    }

    /// Renders the diagnostic with line/column information from `source`.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        format!("{}:{}: {}: {}", line, col, self.severity, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} at {:?}", self.severity, self.message, self.span)
    }
}

impl Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_commutative_cover() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 10);
        assert_eq!(a.merge(b), b.merge(a));
        assert_eq!(a.merge(b), Span::new(2, 10));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncde\nf";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(5, 6).line_col(src), (2, 3));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 1));
    }

    #[test]
    fn render_includes_position() {
        let d = Diagnostic::error("bad token", Span::new(3, 4));
        assert_eq!(d.render("ab\ncd"), "2:1: error: bad token");
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    #[should_panic(expected = "span start after end")]
    fn invalid_span_panics() {
        let _ = Span::new(5, 3);
    }
}
