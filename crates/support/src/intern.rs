//! String interning.
//!
//! Identifiers (class, method and field names) appear everywhere in the
//! compiler; interning them makes comparisons and hashing O(1) and keeps the
//! IR copyable.

use std::collections::HashMap;
use std::fmt;

/// An interned string handle.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; comparing symbols from different interners is a logic error (but
/// memory safe).
///
/// # Examples
///
/// ```
/// use oi_support::intern::Interner;
/// let mut i = Interner::new();
/// let s = i.intern("area");
/// assert_eq!(i.resolve(s), "area");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the raw interner slot of this symbol.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs a symbol from a raw interner slot.
    ///
    /// This is the deserialization escape hatch: the on-disk artifact
    /// codec stores symbols as raw indices and rebuilds the interner by
    /// re-interning its string table in order ([`Interner::strings`]).
    /// The caller is responsible for range-checking `raw` against the
    /// interner that will resolve it — a fabricated symbol is memory safe
    /// but panics on [`Interner::resolve`].
    #[inline]
    pub fn from_raw(raw: u32) -> Symbol {
        Symbol(raw)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// A deduplicating store of strings.
///
/// Strings are interned once and resolved by [`Symbol`]. The interner is the
/// single source of truth for names across the front end, IR, analysis and
/// transformation stages.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol if `s` was seen before.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), sym);
        sym
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Iterates the interned strings in symbol order (symbol 0 first).
    ///
    /// Re-`intern`ing the yielded strings into a fresh interner, in order,
    /// reproduces identical symbols — the property the on-disk artifact
    /// codec relies on to round-trip raw symbol indices.
    pub fn strings(&self) -> impl Iterator<Item = &str> {
        self.strings.iter().map(String::as_str)
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Interns `base`, or `base$1`, `base$2`, ... — the first variant not yet
    /// present. Used when cloning methods and classes to generate fresh,
    /// readable names.
    pub fn fresh(&mut self, base: &str) -> Symbol {
        if self.get(base).is_none() {
            return self.intern(base);
        }
        for n in 1u32.. {
            let candidate = format!("{base}${n}");
            if self.get(&candidate).is_none() {
                return self.intern(&candidate);
            }
        }
        unreachable!("exhausted fresh-name counter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let a2 = i.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let words = ["Point", "Rectangle", "lower_left", "x", ""];
        let syms: Vec<_> = words.iter().map(|w| i.intern(w)).collect();
        for (w, s) in words.iter().zip(syms) {
            assert_eq!(i.resolve(s), *w);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("nope").is_none());
        assert!(i.is_empty());
        let s = i.intern("yes");
        assert_eq!(i.get("yes"), Some(s));
    }

    #[test]
    fn fresh_avoids_collisions() {
        let mut i = Interner::new();
        let a = i.fresh("area");
        let b = i.fresh("area");
        let c = i.fresh("area");
        assert_eq!(i.resolve(a), "area");
        assert_eq!(i.resolve(b), "area$1");
        assert_eq!(i.resolve(c), "area$2");
    }

    #[test]
    fn clone_preserves_contents() {
        let mut i = Interner::new();
        let s = i.intern("abc");
        let j = i.clone();
        assert_eq!(j.resolve(s), "abc");
    }
}
