//! A metrics registry for long-lived services: counters, gauges, and
//! fixed-bucket latency histograms.
//!
//! The compile server (`oic serve`) and the load harness instrument every
//! service stage through one [`Registry`]; the whole registry exports as a
//! schema-stable `oi.metrics.v1` document ([`Registry::to_json`]) served
//! over the protocol's `stats` request and dumped by `--metrics-out`.
//!
//! Design points:
//!
//! - **Counters** are monotonic `u64` totals ([`Registry::add`]).
//!   [`Registry::set_counter`] mirrors an externally maintained monotonic
//!   total (e.g. the artifact cache's own hit/miss counts) into the
//!   registry so one document carries everything.
//! - **Gauges** are point-in-time `i64` values ([`Registry::gauge_set`],
//!   [`Registry::gauge_add`]) — requests in flight, cache bytes.
//! - **Histograms** use the fixed log-spaced nanosecond bucket bounds in
//!   [`DEFAULT_BOUNDS_NS`] *and* retain raw samples (capped at
//!   [`RAW_SAMPLE_CAP`]), so the p50/p90/p99 readout is computed by the
//!   same order-statistics code every wall-clock verdict in this workspace
//!   uses ([`crate::stats::percentile`]) rather than by lossy bucket
//!   interpolation. Past the cap the quantiles fall back to bucket upper
//!   bounds and the snapshot says so (`"raw_capped": true`).
//! - **Snapshot vs reset**: [`Registry::to_json`] is non-destructive —
//!   repeated snapshots with no recording in between are identical.
//!   [`Registry::reset`] zeroes counters and gauges and clears histogram
//!   state.
//!
//! The registry is internally synchronized (a poison-tolerant mutex), so
//! one instance can be shared across batch worker threads.

use crate::json::Json;
use crate::stats::{percentile, TimingStats};
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// Fixed histogram bucket upper bounds in nanoseconds, log-spaced (×4)
/// from 1µs to ~4s; an implicit overflow bucket catches the rest.
pub const DEFAULT_BOUNDS_NS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_024_000_000,
    4_096_000_000,
];

/// Raw samples retained per histogram for exact quantiles. A long-lived
/// server eventually overflows this; quantiles then degrade to bucket
/// upper bounds rather than growing without bound.
pub const RAW_SAMPLE_CAP: usize = 65_536;

/// One fixed-bucket latency histogram with retained raw samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    samples: Vec<u128>,
    capped: bool,
    count: u64,
    sum_ns: u128,
}

impl Histogram {
    /// An empty histogram over [`DEFAULT_BOUNDS_NS`].
    pub fn new() -> Histogram {
        Histogram::with_bounds(&DEFAULT_BOUNDS_NS)
    }

    /// An empty histogram over ascending `bounds` (upper bucket edges; an
    /// overflow bucket is always appended).
    pub fn with_bounds(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "ascending bounds");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            samples: Vec::new(),
            capped: false,
            count: 0,
            sum_ns: 0,
        }
    }

    /// Records one nanosecond sample: increments the first bucket whose
    /// upper bound is `>= ns` (the overflow bucket beyond the last bound)
    /// and retains the raw sample until [`RAW_SAMPLE_CAP`].
    pub fn record(&mut self, ns: u128) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| ns <= u128::from(b))
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_ns += ns;
        if self.samples.len() < RAW_SAMPLE_CAP {
            self.samples.push(ns);
        } else {
            self.capped = true;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `pct` percentile in nanoseconds: exact (nearest-rank over the
    /// retained raw samples, via [`crate::stats::percentile`]) until the
    /// raw cap, then the upper bound of the first bucket holding the rank.
    pub fn quantile_ns(&self, pct: f64) -> u128 {
        if self.count == 0 {
            return 0;
        }
        if !self.capped {
            let mut sorted = self.samples.clone();
            sorted.sort_unstable();
            return percentile(&sorted, pct);
        }
        // Degraded path: walk the cumulative bucket counts.
        let rank = ((pct.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self
                    .bounds
                    .get(i)
                    .copied()
                    .map_or(u128::from(u64::MAX), u128::from);
            }
        }
        u128::from(u64::MAX)
    }

    /// The robust [`TimingStats`] summary of the retained raw samples.
    pub fn stats(&self) -> TimingStats {
        TimingStats::from_nanos(self.samples.clone())
    }

    /// Per-bucket `(upper bound, count)` pairs; the overflow bucket
    /// reports `None` as its bound.
    pub fn buckets(&self) -> Vec<(Option<u64>, u64)> {
        self.bounds
            .iter()
            .map(|&b| Some(b))
            .chain(std::iter::once(None))
            .zip(self.counts.iter().copied())
            .collect()
    }

    /// The histogram as schema-stable JSON (embedded per-name in
    /// `oi.metrics.v1`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", self.count.into()),
            (
                "sum_ns",
                (self.sum_ns.min(u128::from(u64::MAX)) as u64).into(),
            ),
            ("p50_ns", (self.quantile_ns(50.0) as u64).into()),
            ("p90_ns", (self.quantile_ns(90.0) as u64).into()),
            ("p99_ns", (self.quantile_ns(99.0) as u64).into()),
            ("raw_capped", self.capped.into()),
            (
                "buckets",
                Json::Arr(
                    self.buckets()
                        .into_iter()
                        .map(|(le, n)| {
                            Json::obj(vec![
                                ("le_ns", le.map_or(Json::Null, Json::from)),
                                ("count", n.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The named-metric registry. Cheap to create; meant to live as long as
/// the service it observes.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A worker that panicked inside `contained` while recording must
        // not wedge the whole registry: the data is monotone counters, so
        // continuing with the inner state is safe.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Adds `delta` to the named monotonic counter (created at zero).
    pub fn add(&self, name: &str, delta: u64) {
        *self.locked().counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named counter to an externally maintained monotonic total
    /// (mirroring, e.g., the artifact cache's own counters).
    pub fn set_counter(&self, name: &str, value: u64) {
        self.locked().counters.insert(name.to_string(), value);
    }

    /// The named counter's current value (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.locked().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, value: i64) {
        self.locked().gauges.insert(name.to_string(), value);
    }

    /// Adjusts the named gauge by `delta` (created at zero).
    pub fn gauge_add(&self, name: &str, delta: i64) {
        *self.locked().gauges.entry(name.to_string()).or_insert(0) += delta;
    }

    /// The named gauge's current value (zero when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.locked().gauges.get(name).copied().unwrap_or(0)
    }

    /// Records one nanosecond sample into the named histogram (created
    /// with the default bounds).
    pub fn observe_ns(&self, name: &str, ns: u128) {
        self.locked()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(ns);
    }

    /// The `pct` percentile of the named histogram (zero when absent).
    pub fn quantile_ns(&self, name: &str, pct: f64) -> u128 {
        self.locked()
            .histograms
            .get(name)
            .map_or(0, |h| h.quantile_ns(pct))
    }

    /// Zeroes every counter and gauge and clears every histogram. The
    /// metric *names* survive (a post-reset snapshot keeps its shape).
    pub fn reset(&self) {
        let mut inner = self.locked();
        for v in inner.counters.values_mut() {
            *v = 0;
        }
        for v in inner.gauges.values_mut() {
            *v = 0;
        }
        for h in inner.histograms.values_mut() {
            *h = Histogram::with_bounds(&h.bounds.clone());
        }
    }

    /// The whole registry as a schema-stable `oi.metrics.v1` document.
    /// Non-destructive: snapshotting twice with no recording in between
    /// yields identical documents.
    pub fn to_json(&self) -> Json {
        let inner = self.locked();
        Json::obj(vec![
            ("schema", "oi.metrics.v1".into()),
            (
                "counters",
                Json::Obj(
                    inner
                        .counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), v.into()))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    inner
                        .gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), v.into()))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    inner
                        .histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A fixed-capacity sliding window of nanosecond samples with exact
/// order-statistics quantiles over the *recent* past only.
///
/// [`Histogram`] quantiles are cumulative over the whole run — right for
/// end-of-run verdicts, wrong for a feedback controller, which must see
/// latency *fall* once its own mitigation takes effect. `Window` keeps the
/// last `capacity` samples in a ring and forgets the rest, so the brownout
/// controller's p99 tracks current conditions and recovery is observable.
#[derive(Clone, Debug)]
pub struct Window {
    ring: Vec<u128>,
    capacity: usize,
    next: usize,
    filled: bool,
}

impl Window {
    /// An empty window retaining the last `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Window {
        Window {
            ring: Vec::new(),
            capacity: capacity.max(1),
            next: 0,
            filled: false,
        }
    }

    /// Records one sample, evicting the oldest once at capacity.
    pub fn record(&mut self, ns: u128) {
        if self.ring.len() < self.capacity {
            self.ring.push(ns);
        } else {
            self.ring[self.next] = ns;
            self.filled = true;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Samples currently held (saturates at the capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` until the first sample lands.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// `true` once the window has wrapped at least once.
    pub fn is_saturated(&self) -> bool {
        self.filled
    }

    /// The `pct` percentile (nearest-rank, [`crate::stats::percentile`])
    /// of the samples currently in the window; zero when empty.
    pub fn quantile_ns(&self, pct: f64) -> u128 {
        if self.ring.is_empty() {
            return 0;
        }
        let mut sorted = self.ring.clone();
        sorted.sort_unstable();
        percentile(&sorted, pct)
    }

    /// Forgets every sample (capacity is kept).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.next = 0;
        self.filled = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_edges() {
        let mut h = Histogram::with_bounds(&[10, 100, 1000]);
        h.record(10); // lands in the <=10 bucket, not <=100
        h.record(11); // first value past an edge lands one bucket up
        h.record(100);
        h.record(1000);
        h.record(1001); // overflow bucket
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 4, "3 bounded buckets + overflow");
        assert_eq!(buckets[0], (Some(10), 1));
        assert_eq!(buckets[1], (Some(100), 2));
        assert_eq!(buckets[2], (Some(1000), 1));
        assert_eq!(buckets[3], (None, 1));
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn default_bounds_are_ascending_and_cover_microseconds_to_seconds() {
        assert!(DEFAULT_BOUNDS_NS.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(DEFAULT_BOUNDS_NS[0], 1_000);
        assert!(*DEFAULT_BOUNDS_NS.last().unwrap() >= 4_000_000_000);
        let h = Histogram::new();
        assert_eq!(h.buckets().len(), DEFAULT_BOUNDS_NS.len() + 1);
    }

    #[test]
    fn quantiles_match_stats_order_statistics_on_the_same_samples() {
        // The satellite contract: histogram p50/p99 must agree with
        // oi_support::stats on the identical sample set.
        let samples: Vec<u128> = (1..=1000).rev().map(|i| i * 100).collect();
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        assert_eq!(h.quantile_ns(50.0), stats::percentile(&sorted, 50.0));
        assert_eq!(h.quantile_ns(90.0), stats::percentile(&sorted, 90.0));
        assert_eq!(h.quantile_ns(99.0), stats::percentile(&sorted, 99.0));
        // Odd-length sets: nearest-rank p50 is exactly the median.
        let odd: Vec<u128> = vec![5, 1, 9, 3, 7];
        let mut ho = Histogram::new();
        for &s in &odd {
            ho.record(s);
        }
        let mut odd_sorted = odd.clone();
        odd_sorted.sort_unstable();
        assert_eq!(ho.quantile_ns(50.0), stats::median(&odd_sorted));
    }

    #[test]
    fn capped_histogram_degrades_to_bucket_bounds() {
        let mut h = Histogram::with_bounds(&[10, 100]);
        h.samples = vec![0; RAW_SAMPLE_CAP]; // simulate a full reservoir
        h.count = RAW_SAMPLE_CAP as u64;
        h.counts[0] = RAW_SAMPLE_CAP as u64;
        h.record(50);
        assert!(h.capped);
        // Everything recorded so far ranks within the first two buckets.
        assert_eq!(h.quantile_ns(50.0), 10);
        assert_eq!(h.quantile_ns(100.0), 100);
    }

    #[test]
    fn snapshot_is_repeatable_and_reset_zeroes() {
        let r = Registry::new();
        r.add("serve.requests", 3);
        r.gauge_set("serve.in_flight", 2);
        r.observe_ns("serve.total_ns", 1_500);
        r.observe_ns("serve.total_ns", 2_500);
        let a = r.to_json().to_string();
        let b = r.to_json().to_string();
        assert_eq!(a, b, "snapshots are non-destructive");
        let doc = crate::Json::parse(&a).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("oi.metrics.v1")
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("serve.requests"))
                .and_then(Json::as_i64),
            Some(3)
        );
        r.reset();
        assert_eq!(r.counter("serve.requests"), 0);
        assert_eq!(r.gauge("serve.in_flight"), 0);
        assert_eq!(r.quantile_ns("serve.total_ns", 99.0), 0);
        let after = crate::Json::parse(&r.to_json().to_string()).unwrap();
        assert!(
            after
                .get("histograms")
                .and_then(|h| h.get("serve.total_ns"))
                .is_some(),
            "names survive a reset"
        );
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        r.add("hits", 1);
        r.add("hits", 2);
        assert_eq!(r.counter("hits"), 3);
        r.set_counter("hits", 10);
        assert_eq!(r.counter("hits"), 10);
        r.gauge_add("in_flight", 1);
        r.gauge_add("in_flight", 1);
        r.gauge_add("in_flight", -1);
        assert_eq!(r.gauge("in_flight"), 1);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("absent"), 0);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = std::sync::Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        r.add("n", 1);
                        r.observe_ns("t", 10);
                    }
                });
            }
        });
        assert_eq!(r.counter("n"), 400);
        assert_eq!(r.quantile_ns("t", 50.0), 10);
    }

    #[test]
    fn window_quantiles_track_only_recent_samples() {
        let mut w = Window::new(4);
        assert!(w.is_empty());
        assert_eq!(w.quantile_ns(99.0), 0);
        for ns in [1_000u128, 2_000, 3_000, 4_000] {
            w.record(ns);
        }
        assert_eq!(w.len(), 4);
        assert!(!w.is_saturated());
        assert_eq!(w.quantile_ns(50.0), 2_000);
        assert_eq!(w.quantile_ns(100.0), 4_000);
        // Four cheap samples evict the expensive past entirely: the p99
        // falls, which is exactly what a cumulative histogram cannot do.
        for _ in 0..4 {
            w.record(10);
        }
        assert!(w.is_saturated());
        assert_eq!(w.quantile_ns(99.0), 10);
        w.clear();
        assert!(w.is_empty());
        assert!(!w.is_saturated());
        // Capacity is floored at one and keeps only the latest sample.
        let mut tiny = Window::new(0);
        tiny.record(5);
        tiny.record(7);
        assert_eq!(tiny.len(), 1);
        assert_eq!(tiny.quantile_ns(50.0), 7);
    }

    /// A contained job that dies while recording poisons the registry
    /// mutex. The serve loop exports metrics after every request, so a
    /// poisoned registry must keep recording and exporting — a panicking
    /// reader must never take the metrics endpoint (or the server) down
    /// with it.
    #[test]
    fn poisoned_registry_keeps_recording_and_exporting() {
        let _quiet = crate::panic::silence_hook();
        let r = std::sync::Arc::new(Registry::new());
        r.add("serve.requests", 3);
        r.observe_ns("serve.total_ns", 1_000);

        let poisoner = r.clone();
        let worker = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().expect("first lock is clean");
            panic!("reader dies while holding the registry lock");
        });
        assert!(worker.join().is_err(), "the poisoner must panic");
        assert!(r.inner.lock().is_err(), "the mutex must be poisoned");

        // Export must not panic — and must still see the pre-poison data.
        let doc = crate::panic::contained(|| r.to_json()).expect("export must not panic");
        assert_eq!(
            doc.get("schema").and_then(crate::Json::as_str),
            Some("oi.metrics.v1")
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("serve.requests"))
                .and_then(crate::Json::as_i64),
            Some(3)
        );

        // And the registry keeps accepting writes afterwards.
        r.add("serve.requests", 1);
        r.gauge_set("serve.in_flight", 2);
        r.observe_ns("serve.total_ns", 2_000);
        assert_eq!(r.counter("serve.requests"), 4);
        assert_eq!(r.gauge("serve.in_flight"), 2);
        assert!(r.quantile_ns("serve.total_ns", 99.0) >= 1_000);
    }
}
