//! Robust statistics for wall-clock timing samples.
//!
//! Modeled metrics (cycles, allocations) are deterministic and gate at a
//! 0% threshold; wall-clock is not. Judging a duration therefore needs a
//! noise model, and this module is the one place it lives: every tool
//! that reports or compares a wall time ([`crate::trace`] consumers,
//! `oi-bench` snapshots, `oic prof`) goes through these functions.
//!
//! The model is deliberately order-statistic-based — median and MAD, not
//! mean and standard deviation — because timing samples on a shared
//! machine are heavy-tailed: one scheduler preemption produces an outlier
//! that would dominate a mean. The pieces:
//!
//! - [`median`] / [`mad`]: location and scale estimators with a 50%
//!   breakdown point.
//! - [`reject_outliers_iqr`]: Tukey-fence rejection (1.5×IQR beyond the
//!   quartiles) applied before a sample set is summarized.
//! - [`TimingStats::from_nanos`]: the one-stop summary — rejection, then
//!   order statistics, then a relative-spread figure.
//! - [`ab_split_floor_pct`]: the calibrated noise floor. Samples taken in
//!   arrival order are split into interleaved A/B halves (A = even
//!   positions, B = odd); both halves ran the *same binary*, so any
//!   difference between their medians is pure measurement noise. The
//!   relative A/B delta is the smallest change the harness could possibly
//!   resolve — a real regression must clear it.

use crate::json::Json;

/// Median of a **sorted** slice: the midpoint average for even lengths,
/// the middle element for odd. Zero on empty input.
pub fn median(sorted: &[u128]) -> u128 {
    match sorted.len() {
        0 => 0,
        n if n % 2 == 1 => sorted[n / 2],
        n => (sorted[n / 2 - 1] + sorted[n / 2]) / 2,
    }
}

/// Median absolute deviation from `center`. Zero on empty input and for
/// all-identical samples (any order accepted).
pub fn mad(samples: &[u128], center: u128) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    let mut devs: Vec<u128> = samples.iter().map(|&s| s.abs_diff(center)).collect();
    devs.sort_unstable();
    median(&devs)
}

/// Nearest-rank percentile of a **sorted** slice: the smallest sample
/// such that at least `pct` percent of the set is at or below it, so the
/// result is always an actual sample. `pct` is clamped to `[0, 100]`;
/// zero on empty input. `percentile(s, 50.0)` equals [`median`] for odd
/// lengths (nearest-rank never interpolates).
pub fn percentile(sorted: &[u128], pct: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct.clamp(0.0, 100.0) / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// First and third quartiles of a **sorted** slice (nearest-rank, so the
/// values are always actual samples). `(0, 0)` on empty input.
pub fn quartiles(sorted: &[u128]) -> (u128, u128) {
    match sorted.len() {
        0 => (0, 0),
        n => (sorted[n / 4], sorted[(3 * n) / 4].min(sorted[n - 1])),
    }
}

/// Drops samples outside the Tukey fences `[q1 - 1.5*IQR, q3 + 1.5*IQR]`
/// and reports how many were rejected. Sets of fewer than four samples
/// pass through untouched — quartiles are meaningless there.
pub fn reject_outliers_iqr(mut samples: Vec<u128>) -> (Vec<u128>, usize) {
    if samples.len() < 4 {
        return (samples, 0);
    }
    samples.sort_unstable();
    let (q1, q3) = quartiles(&samples);
    let iqr = q3 - q1;
    let lo = q1.saturating_sub(iqr + iqr / 2);
    let hi = q3 + iqr + iqr / 2;
    let before = samples.len();
    samples.retain(|&s| (lo..=hi).contains(&s));
    let rejected = before - samples.len();
    (samples, rejected)
}

/// The robust summary of one timing-sample set, in nanoseconds.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimingStats {
    /// Samples provided (before outlier rejection).
    pub n: usize,
    /// Samples rejected by the IQR fences.
    pub rejected: usize,
    /// Fastest kept sample.
    pub min: u128,
    /// Median of the kept samples.
    pub median: u128,
    /// Slowest kept sample.
    pub max: u128,
    /// Median absolute deviation of the kept samples.
    pub mad: u128,
    /// `100 * mad / median` — the relative spread, in percent. Zero when
    /// the median is zero.
    pub rel_mad_pct: f64,
}

impl TimingStats {
    /// Summarizes raw nanosecond samples (any order): IQR rejection, then
    /// order statistics on what survives. Empty input yields the zeroed
    /// summary rather than panicking — callers report "no samples", they
    /// don't crash.
    pub fn from_nanos(samples: Vec<u128>) -> TimingStats {
        let n = samples.len();
        let (kept, rejected) = reject_outliers_iqr(samples);
        if kept.is_empty() {
            return TimingStats {
                n,
                rejected,
                ..TimingStats::default()
            };
        }
        let med = median(&kept);
        let mad = mad(&kept, med);
        TimingStats {
            n,
            rejected,
            min: kept[0],
            median: med,
            max: kept[kept.len() - 1],
            mad,
            rel_mad_pct: if med == 0 {
                0.0
            } else {
                100.0 * mad as f64 / med as f64
            },
        }
    }

    /// The summary as a JSON object with a stable key order (embedded in
    /// `oi.bench.v1` rows and `oi.prof.v1` documents).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("n", (self.n as u64).into()),
            ("rejected", (self.rejected as u64).into()),
            ("min", (self.min as u64).into()),
            ("median", (self.median as u64).into()),
            ("max", (self.max as u64).into()),
            ("mad", (self.mad as u64).into()),
            ("rel_mad_pct", self.rel_mad_pct.into()),
        ])
    }
}

/// The calibrated noise floor from repeated same-binary runs, in percent.
///
/// `ordered` must be in **arrival order** (the order the runs actually
/// happened). It is split into interleaved halves — even positions form
/// group A, odd positions group B — so both groups sample the same
/// machine conditions over the same wall-clock window. Both groups ran
/// identical work, so `|median(A) - median(B)| / median(all)` measures
/// the harness's own resolution: a cross-build delta below this figure is
/// indistinguishable from noise. Returns zero when fewer than two samples
/// exist or the overall median is zero.
pub fn ab_split_floor_pct(ordered: &[u128]) -> f64 {
    if ordered.len() < 2 {
        return 0.0;
    }
    let mut a: Vec<u128> = ordered.iter().step_by(2).copied().collect();
    let mut b: Vec<u128> = ordered.iter().skip(1).step_by(2).copied().collect();
    a.sort_unstable();
    b.sort_unstable();
    let mut all: Vec<u128> = ordered.to_vec();
    all.sort_unstable();
    let overall = median(&all);
    if overall == 0 {
        return 0.0;
    }
    let delta = median(&a).abs_diff(median(&b));
    100.0 * delta as f64 / overall as f64
}

/// The noise floor for one sample set: the larger of the interleaved A/B
/// split delta and the relative MAD. Both are needed — the A/B split
/// catches drift over the sampling window (thermal ramp, background
/// load), the MAD catches per-run jitter.
pub fn noise_floor_pct(ordered: &[u128]) -> f64 {
    let stats = TimingStats::from_nanos(ordered.to_vec());
    ab_split_floor_pct(ordered).max(stats.rel_mad_pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_empty_single_even_odd() {
        assert_eq!(median(&[]), 0);
        assert_eq!(median(&[7]), 7);
        assert_eq!(median(&[1, 3]), 2);
        assert_eq!(median(&[1, 3, 5]), 3);
        assert_eq!(median(&[1, 3, 5, 100]), 4);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0);
        let s: Vec<u128> = (1..=100).collect();
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 99.0), 99);
        assert_eq!(percentile(&s, 100.0), 100);
        assert_eq!(percentile(&s, 0.0), 1);
        assert_eq!(percentile(&[7], 99.0), 7);
        // Odd lengths: p50 coincides with the median.
        let odd = [1, 3, 5];
        assert_eq!(percentile(&odd, 50.0), median(&odd));
    }

    #[test]
    fn mad_is_zero_for_identical_and_empty() {
        assert_eq!(mad(&[], 0), 0);
        assert_eq!(mad(&[5, 5, 5, 5], 5), 0);
        // {1, 2, 9}, center 2 -> deviations {1, 0, 7} -> median 1.
        assert_eq!(mad(&[1, 2, 9], 2), 1);
    }

    #[test]
    fn iqr_rejects_constructed_outliers() {
        // Tight cluster plus one wild point: the fence drops exactly it.
        let samples = vec![100, 101, 99, 102, 98, 100, 101, 5000];
        let (kept, rejected) = reject_outliers_iqr(samples);
        assert_eq!(rejected, 1);
        assert!(!kept.contains(&5000));
        assert_eq!(kept.len(), 7);
    }

    #[test]
    fn iqr_passes_small_sets_through() {
        let (kept, rejected) = reject_outliers_iqr(vec![1, 1_000_000, 2]);
        assert_eq!(rejected, 0);
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn timing_stats_on_empty_input_is_zeroed() {
        let s = TimingStats::from_nanos(vec![]);
        assert_eq!(s.n, 0);
        assert_eq!(s.median, 0);
        assert_eq!(s.rel_mad_pct, 0.0);
    }

    #[test]
    fn timing_stats_on_single_sample() {
        let s = TimingStats::from_nanos(vec![42]);
        assert_eq!((s.n, s.min, s.median, s.max, s.mad), (1, 42, 42, 42, 0));
        assert_eq!(s.rejected, 0);
    }

    #[test]
    fn timing_stats_on_identical_samples_has_zero_spread() {
        let s = TimingStats::from_nanos(vec![10; 8]);
        assert_eq!(s.median, 10);
        assert_eq!(s.mad, 0);
        assert_eq!(s.rel_mad_pct, 0.0);
        assert_eq!(s.rejected, 0);
    }

    #[test]
    fn timing_stats_rejects_outliers_before_summarizing() {
        let s = TimingStats::from_nanos(vec![100, 101, 99, 102, 98, 100, 101, 5000]);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.max, 102);
        assert!(s.median >= 98 && s.median <= 102);
    }

    #[test]
    fn ab_split_floor_is_zero_for_stable_samples() {
        assert_eq!(ab_split_floor_pct(&[100; 10]), 0.0);
        assert_eq!(ab_split_floor_pct(&[100]), 0.0);
        assert_eq!(ab_split_floor_pct(&[]), 0.0);
    }

    #[test]
    fn ab_split_floor_sees_drift() {
        // First half fast, second half slow: the interleaved split keeps
        // both groups exposed to the drift, but an alternating pattern
        // (A always fast, B always slow) is fully resolved.
        let alternating = [100, 120, 100, 120, 100, 120];
        let floor = ab_split_floor_pct(&alternating);
        assert!(floor > 15.0, "floor {floor} should expose the A/B gap");
    }

    #[test]
    fn noise_floor_combines_split_and_mad() {
        let noisy = [100, 140, 90, 150, 95, 160];
        assert!(noise_floor_pct(&noisy) > 0.0);
        assert_eq!(noise_floor_pct(&[50; 6]), 0.0);
    }

    #[test]
    fn timing_stats_json_is_schema_stable() {
        let j = TimingStats::from_nanos(vec![10, 20, 30])
            .to_json()
            .to_string();
        let parsed = Json::parse(&j).unwrap();
        for key in [
            "n",
            "rejected",
            "min",
            "median",
            "max",
            "mad",
            "rel_mad_pct",
        ] {
            assert!(parsed.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(parsed.get("median").and_then(Json::as_i64), Some(20));
    }
}
