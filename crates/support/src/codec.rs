//! Dependency-free binary encoding for on-disk artifacts.
//!
//! The persistent artifact store (`oi_core::cache::store`) serializes
//! compiled programs to disk. The workspace has no external dependencies,
//! so this module provides the minimal substrate: a [`Writer`] that appends
//! fixed-width little-endian primitives and length-prefixed strings to a
//! byte buffer, and a bounds-checked [`Reader`] that decodes them back.
//!
//! Every multi-byte integer is little-endian. Strings and sequences are
//! length-prefixed with a `u64`. Floats travel as IEEE-754 bit patterns
//! ([`f64::to_bits`]) so round-trips are exact, including NaN payloads.
//!
//! Decoding never panics on malformed input: every read is bounds-checked
//! and returns a [`DecodeError`] carrying the offset and a description, so
//! callers (the crash-recovery scan) can quarantine a corrupt artifact
//! instead of taking down the service.
//!
//! # Examples
//!
//! ```
//! use oi_support::codec::{Reader, Writer};
//! let mut w = Writer::new();
//! w.u32(7);
//! w.str("area");
//! w.f64(1.5);
//! let bytes = w.into_bytes();
//!
//! let mut r = Reader::new(&bytes);
//! assert_eq!(r.u32().unwrap(), 7);
//! assert_eq!(r.str().unwrap(), "area");
//! assert_eq!(r.f64().unwrap(), 1.5);
//! assert!(r.is_done());
//! ```

use std::fmt;

/// A decoding failure: the input was truncated, oversized, or malformed.
///
/// Carries the byte offset at which decoding failed and a static
/// description of what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset into the input at which the failure was detected.
    pub at: usize,
    /// What the decoder was trying to read.
    pub what: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for DecodeError {}

/// An append-only binary encoder over a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes with no length prefix (caller owns framing).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (stable across platforms).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a `u64`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.raw(s.as_bytes());
    }

    /// Appends a `u64`-length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.raw(b);
    }
}

/// A bounds-checked binary decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn err(&self, what: &'static str) -> DecodeError {
        DecodeError { at: self.pos, what }
    }

    /// Consumes exactly `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(self.err("unexpected end of input"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a `u64` and converts it to `usize`, failing on overflow.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| self.err("usize overflow"))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(i64::from_le_bytes(a))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a boolean byte; any value other than 0 or 1 is malformed.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(self.err("boolean out of range")),
        }
    }

    /// Reads a sequence length, rejecting lengths the remaining input
    /// cannot possibly hold (each element needs at least one byte). This
    /// bounds allocations on corrupt input before any element decodes.
    pub fn seq_len(&mut self) -> Result<usize, DecodeError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(self.err("sequence length exceeds input"));
        }
        Ok(n)
    }

    /// Reads a `u64`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.seq_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("invalid UTF-8"))
    }

    /// Reads a `u64`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.seq_len()?;
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u32(u32::MAX);
        w.u64(u64::MAX - 1);
        w.usize(12345);
        w.i64(-42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        w.bool(false);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), u32::MAX);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_done());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut w = Writer::new();
        w.u64(7);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        let e = r.u64().unwrap_err();
        assert_eq!(e.at, 0);
        assert!(e.to_string().contains("unexpected end"));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocating() {
        // A string claiming u64::MAX bytes must fail on the length check,
        // not attempt the allocation.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.str().is_err());
    }

    #[test]
    fn malformed_bool_and_utf8_are_decode_errors() {
        let mut r = Reader::new(&[2]);
        assert!(r.bool().is_err());

        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.str().is_err());
    }

    #[test]
    fn offsets_in_errors_point_at_the_failure() {
        let mut w = Writer::new();
        w.u32(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.u32().unwrap();
        let e = r.u8().unwrap_err();
        assert_eq!(e.at, 4);
    }
}
