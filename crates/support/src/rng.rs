//! Deterministic pseudo-random number generation.
//!
//! A small xorshift64* generator used by the synthetic-workload generator
//! and the property tests. Keeping it in-repo keeps the whole workspace
//! buildable with **zero external dependencies** (registry access is not
//! assumed), and seeding is explicit so every randomized test is exactly
//! reproducible from its printed seed.
//!
//! # Examples
//!
//! ```
//! use oi_support::rng::XorShift64;
//! let mut a = XorShift64::new(42);
//! let mut b = XorShift64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let n = a.below(10);
//! assert!(n < 10);
//! ```

/// A xorshift64* pseudo-random generator (Vigna 2016). Not cryptographic;
/// statistically fine for workload shuffling and property-test case
/// generation.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid;
    /// the seed is pre-mixed with a splitmix64 step so nearby seeds give
    /// unrelated streams.
    pub fn new(seed: u64) -> Self {
        // splitmix64 finalizer: guarantees a non-zero, well-mixed state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { state: z | 1 }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next 32 pseudo-random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `0..n` (`0` when `n == 0`). Uses modulo
    /// reduction; the bias is negligible for the small ranges used here.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// A uniform value in `lo..hi` (returns `lo` when the range is empty).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            lo
        } else {
            lo + (self.next_u64() % (hi - lo) as u64) as i64
        }
    }

    /// `true` with probability `num / den` (`den == 0` gives `false`).
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        den != 0 && (self.next_u32() % den) < num
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len())]
    }

    /// A random lowercase ASCII identifier of length `1..=max_len`.
    pub fn ident(&mut self, max_len: usize) -> String {
        let len = 1 + self.below(max_len.max(1));
        (0..len)
            .map(|i| {
                let alphabet = if i == 0 {
                    b"abcdefghijklmnopqrstuvwxyz".as_slice()
                } else {
                    b"abcdefghijklmnopqrstuvwxyz0123456789_".as_slice()
                };
                *self.pick(alphabet) as char
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn range_and_chance_are_sane() {
        let mut r = XorShift64::new(9);
        for _ in 0..1000 {
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
        }
        assert!(!r.chance(0, 10));
        assert!(r.chance(10, 10));
    }

    #[test]
    fn idents_are_plausible() {
        let mut r = XorShift64::new(11);
        for _ in 0..100 {
            let id = r.ident(6);
            assert!(!id.is_empty() && id.len() <= 6);
            assert!(id.chars().next().unwrap().is_ascii_lowercase());
        }
    }
}
