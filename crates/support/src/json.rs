//! A minimal JSON document model with zero dependencies.
//!
//! Provides construction helpers, compact serialization with correct
//! string escaping, and a small parser (used by the test suite to
//! validate documents the tools emit). The serializer writes keys in
//! insertion order so output schemas are stable across runs.
//!
//! # Examples
//!
//! ```
//! use oi_support::json::Json;
//! let doc = Json::Obj(vec![
//!     ("name".into(), Json::Str("Box.p".into())),
//!     ("inlined".into(), Json::Bool(true)),
//! ]);
//! assert_eq!(doc.to_string(), r#"{"name":"Box.p","inlined":true}"#);
//! assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
//! ```

use std::fmt;

/// A JSON value. Objects preserve insertion order (they are association
/// lists, not maps) so serialized output is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer number.
    Int(i64),
    /// An unsigned integer number too large for `Int`.
    UInt(u64),
    /// A floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            Json::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::UInt(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes into `out` in compact form (no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{}` on f64 always produces a valid JSON number
                    // (it never prints `inf`/`NaN` for finite values).
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. The whole input must be consumed (trailing
    /// whitespace is allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Appends `s` as a quoted JSON string, escaping control characters,
/// quotes, and backslashes.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: a message plus the byte offset where it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale; the input is valid UTF-8.
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{08}',
            b'f' => '\u{0C}',
            b'u' => {
                let hi = self.hex4()?;
                // Combine UTF-16 surrogate pairs; lone surrogates become
                // the replacement character rather than failing the parse.
                if (0xD800..0xDC00).contains(&hi) {
                    if self.bytes[self.pos..].starts_with(b"\\u") {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        if (0xDC00..0xE000).contains(&lo) {
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            return Ok(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                    }
                    '\u{FFFD}'
                } else {
                    char::from_u32(hi).unwrap_or('\u{FFFD}')
                }
            }
            _ => return Err(self.err("invalid escape character")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            message: "invalid number".into(),
            offset: start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let s = "a\"b\\c\nd\te\u{08}\u{0C}\u{1}é—🦀";
        let doc = Json::Str(s.to_string());
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert!(text.contains("\\\""));
        assert!(text.contains("\\n"));
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn numbers_round_trip() {
        for doc in [
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::UInt(u64::MAX),
            Json::Float(1.5),
            Json::Float(-0.25),
        ] {
            assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
        }
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn objects_preserve_order() {
        let doc = Json::obj(vec![("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(doc.to_string(), r#"{"z":1,"a":2}"#);
        assert_eq!(doc.get("a"), Some(&Json::Int(2)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parses_nested_documents() {
        let doc = Json::parse(r#" {"a": [1, 2.5, null, true], "b": {"c": "A🦀"}} "#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("A🦀")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "01x", "[1] []", "nul"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
