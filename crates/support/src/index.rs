//! Typed indices and index-keyed vectors.
//!
//! The compiler's tables (classes, methods, fields, temps, blocks, contours)
//! are all dense arrays keyed by small integer ids. [`IdxVec`] pairs a vector
//! with a typed index so a `ClassId` cannot be used to index the method
//! table.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

/// A typed dense index. Implemented by the `define_idx!` macro.
pub trait Idx: Copy + Eq + std::hash::Hash + fmt::Debug {
    /// Builds the index from a raw position.
    fn from_usize(raw: usize) -> Self;
    /// Returns the raw position.
    fn as_usize(self) -> usize;
}

/// A vector indexed by a typed id.
///
/// # Examples
///
/// ```
/// use oi_support::{define_idx, IdxVec};
/// define_idx!(pub struct NodeId, "n");
///
/// let mut v: IdxVec<NodeId, &str> = IdxVec::new();
/// let a = v.push("alpha");
/// let b = v.push("beta");
/// assert_eq!(v[a], "alpha");
/// assert_eq!(v[b], "beta");
/// assert_eq!(v.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IdxVec<I: Idx, T> {
    raw: Vec<T>,
    _marker: PhantomData<fn(I)>,
}

impl<I: Idx, T> IdxVec<I, T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self {
            raw: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates an empty vector with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            raw: Vec::with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Appends a value, returning its id.
    pub fn push(&mut self, value: T) -> I {
        let id = I::from_usize(self.raw.len());
        self.raw.push(value);
        id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The id the next `push` will return.
    pub fn next_id(&self) -> I {
        I::from_usize(self.raw.len())
    }

    /// Checked access.
    pub fn get(&self, id: I) -> Option<&T> {
        self.raw.get(id.as_usize())
    }

    /// Checked mutable access.
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.raw.get_mut(id.as_usize())
    }

    /// Returns `true` if `id` is in bounds.
    pub fn contains_id(&self, id: I) -> bool {
        id.as_usize() < self.raw.len()
    }

    /// Iterates over values.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterates over values mutably.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.raw.iter_mut()
    }

    /// Iterates over `(id, &value)` pairs.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &T)> {
        self.raw
            .iter()
            .enumerate()
            .map(|(i, t)| (I::from_usize(i), t))
    }

    /// Iterates over all valid ids.
    pub fn ids(&self) -> impl Iterator<Item = I> + use<I, T> {
        (0..self.raw.len()).map(I::from_usize)
    }

    /// Borrows the underlying slice.
    pub fn as_slice(&self) -> &[T] {
        &self.raw
    }

    /// Consumes `self`, returning the underlying vector.
    pub fn into_inner(self) -> Vec<T> {
        self.raw
    }
}

impl<I: Idx, T> Default for IdxVec<I, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Idx, T: fmt::Debug> fmt::Debug for IdxVec<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter_enumerated()).finish()
    }
}

impl<I: Idx, T> Index<I> for IdxVec<I, T> {
    type Output = T;
    fn index(&self, id: I) -> &T {
        &self.raw[id.as_usize()]
    }
}

impl<I: Idx, T> IndexMut<I> for IdxVec<I, T> {
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.raw[id.as_usize()]
    }
}

impl<I: Idx, T> FromIterator<T> for IdxVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        Self {
            raw: iter.into_iter().collect(),
            _marker: PhantomData,
        }
    }
}

impl<I: Idx, T> Extend<T> for IdxVec<I, T> {
    fn extend<It: IntoIterator<Item = T>>(&mut self, iter: It) {
        self.raw.extend(iter);
    }
}

impl<'a, I: Idx, T> IntoIterator for &'a IdxVec<I, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.iter()
    }
}

impl<I: Idx, T> IntoIterator for IdxVec<I, T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    crate::define_idx!(pub struct TestId, "t");

    #[test]
    fn push_and_index() {
        let mut v: IdxVec<TestId, i32> = IdxVec::new();
        let a = v.push(10);
        let b = v.push(20);
        assert_eq!(v[a], 10);
        assert_eq!(v[b], 20);
        v[a] = 11;
        assert_eq!(v[a], 11);
    }

    #[test]
    fn iter_enumerated_yields_ids_in_order() {
        let v: IdxVec<TestId, char> = "abc".chars().collect();
        let pairs: Vec<_> = v.iter_enumerated().map(|(i, c)| (i.index(), *c)).collect();
        assert_eq!(pairs, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
    }

    #[test]
    fn next_id_tracks_len() {
        let mut v: IdxVec<TestId, ()> = IdxVec::new();
        assert_eq!(v.next_id().index(), 0);
        v.push(());
        assert_eq!(v.next_id().index(), 1);
        assert!(v.contains_id(TestId::new(0)));
        assert!(!v.contains_id(TestId::new(1)));
    }

    #[test]
    fn get_is_checked() {
        let mut v: IdxVec<TestId, i32> = IdxVec::new();
        assert!(v.get(TestId::new(0)).is_none());
        let a = v.push(5);
        assert_eq!(v.get(a), Some(&5));
        *v.get_mut(a).unwrap() = 6;
        assert_eq!(v[a], 6);
    }

    #[test]
    fn extend_and_into_iter() {
        let mut v: IdxVec<TestId, i32> = IdxVec::new();
        v.extend([1, 2, 3]);
        let sum: i32 = (&v).into_iter().sum();
        assert_eq!(sum, 6);
        let raw = v.into_inner();
        assert_eq!(raw, vec![1, 2, 3]);
    }
}
