//! A tiny shared command-line argument scanner.
//!
//! The workspace's binaries (`oic`, `figures`, `oi-bench`) all hand-rolled
//! the same loop: walk the argument list, classify each token as a flag or
//! a positional, reject anything unknown with exit code 2. This module
//! centralizes the classification so every tool agrees on the details:
//!
//! - `--name` is a flag; `--name=value` is a flag with an inline value;
//! - a lone `-` is a positional (conventionally "stdin");
//! - any other token starting with `-` is malformed and reported as
//!   `unknown flag `...`` — the exact message the golden CLI tests pin;
//! - flags that take their value as a *separate* token (`--size small`)
//!   pull it with [`ArgScanner::value_for`].
//!
//! Tools keep their own flag tables and policies (which flags exist, which
//! commands they apply to); the scanner only handles tokenization.
//!
//! # Examples
//!
//! ```
//! use oi_support::cli::{Arg, ArgScanner};
//!
//! let mut args = ArgScanner::new(vec![
//!     "--json".into(),
//!     "--size".into(),
//!     "small".into(),
//!     "file.oi".into(),
//! ]);
//! assert_eq!(args.next(), Some(Ok(Arg::flag("json"))));
//! assert_eq!(args.next(), Some(Ok(Arg::flag("size"))));
//! assert_eq!(args.value_for("--size"), Ok("small".to_string()));
//! assert_eq!(args.next(), Some(Ok(Arg::Positional("file.oi".into()))));
//! assert_eq!(args.next(), None);
//! ```

/// One classified command-line token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Arg {
    /// `--name` (value `None`) or `--name=value` (value `Some`).
    Flag {
        /// Flag name without the leading dashes.
        name: String,
        /// Inline `=value` payload, if present.
        value: Option<String>,
    },
    /// A plain (non-flag) token.
    Positional(String),
}

impl Arg {
    /// A bare `--name` flag (test/construction convenience).
    pub fn flag(name: &str) -> Arg {
        Arg::Flag {
            name: name.to_string(),
            value: None,
        }
    }
}

/// Walks an argument list, classifying tokens on demand.
#[derive(Debug)]
pub struct ArgScanner {
    args: Vec<String>,
    pos: usize,
}

impl ArgScanner {
    /// Scans the given tokens (typically already stripped of `argv[0]`).
    pub fn new(args: Vec<String>) -> ArgScanner {
        ArgScanner { args, pos: 0 }
    }

    /// Scans the process arguments, skipping the program name.
    pub fn from_env() -> ArgScanner {
        ArgScanner::new(std::env::args().skip(1).collect())
    }

    /// Classifies the next token; `None` when exhausted. Malformed tokens
    /// (single-dash options) yield `Err` with a user-facing message.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<Arg, String>> {
        let token = self.args.get(self.pos)?.clone();
        self.pos += 1;
        Some(classify(&token))
    }

    /// Takes the next raw token as the value of `flag` (for flags whose
    /// value is a separate token, e.g. `--size small`). Errors when the
    /// list is exhausted.
    pub fn value_for(&mut self, flag: &str) -> Result<String, String> {
        match self.args.get(self.pos) {
            Some(v) => {
                self.pos += 1;
                Ok(v.clone())
            }
            None => Err(format!("`{flag}` needs a value")),
        }
    }
}

/// Classifies a single token.
fn classify(token: &str) -> Result<Arg, String> {
    if let Some(rest) = token.strip_prefix("--") {
        if rest.is_empty() {
            return Err("unknown flag `--`".to_string());
        }
        return Ok(match rest.split_once('=') {
            Some((name, value)) => Arg::Flag {
                name: name.to_string(),
                value: Some(value.to_string()),
            },
            None => Arg::Flag {
                name: rest.to_string(),
                value: None,
            },
        });
    }
    if token.starts_with('-') && token.len() > 1 {
        return Err(format!("unknown flag `{token}`"));
    }
    Ok(Arg::Positional(token.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(tokens: &[&str]) -> ArgScanner {
        ArgScanner::new(tokens.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn classifies_flags_values_and_positionals() {
        let mut args = scan(&["run", "--inline", "--trace=json", "file.oi", "-"]);
        assert_eq!(args.next(), Some(Ok(Arg::Positional("run".into()))));
        assert_eq!(args.next(), Some(Ok(Arg::flag("inline"))));
        assert_eq!(
            args.next(),
            Some(Ok(Arg::Flag {
                name: "trace".into(),
                value: Some("json".into())
            }))
        );
        assert_eq!(args.next(), Some(Ok(Arg::Positional("file.oi".into()))));
        assert_eq!(args.next(), Some(Ok(Arg::Positional("-".into()))));
        assert_eq!(args.next(), None);
    }

    #[test]
    fn rejects_single_dash_options_with_pinned_message() {
        let mut args = scan(&["-x"]);
        assert_eq!(args.next(), Some(Err("unknown flag `-x`".into())));
        let mut args = scan(&["--"]);
        assert_eq!(args.next(), Some(Err("unknown flag `--`".into())));
    }

    #[test]
    fn value_for_pulls_the_next_token() {
        let mut args = scan(&["--size", "small"]);
        assert_eq!(args.next(), Some(Ok(Arg::flag("size"))));
        assert_eq!(args.value_for("--size"), Ok("small".into()));
        assert_eq!(args.next(), None);
        assert_eq!(
            args.value_for("--out"),
            Err("`--out` needs a value".to_string())
        );
    }

    #[test]
    fn empty_equals_value_is_preserved() {
        let mut args = scan(&["--trace="]);
        assert_eq!(
            args.next(),
            Some(Ok(Arg::Flag {
                name: "trace".into(),
                value: Some(String::new())
            }))
        );
    }
}
