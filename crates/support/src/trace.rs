//! `oi-trace`: structured tracing for the whole pipeline.
//!
//! The paper's evaluation is about *explaining* where inlining wins come
//! from; this module is the plumbing that makes the pipeline explain
//! itself. It provides:
//!
//! - **Spans** — timed phases (`analysis`, `decision`, `rewrite`, ...)
//!   that nest, and whose durations are aggregated into a per-phase
//!   profile retrievable after a run.
//! - **Events** — structured instants with key/value fields, e.g. a
//!   `contour.split` naming its cause.
//! - **Counters** — cheap aggregate-only tallies for hot paths
//!   (worklist iterations, tag joins) that never hit a sink per call.
//! - **Sinks** — pluggable outputs: [`TextSink`] (indented pretty text on
//!   stderr), [`JsonLinesSink`] (one JSON object per line on stderr), and
//!   [`MemorySink`] (in-process capture for tests).
//!
//! A [`Tracer`] is installed per thread ([`install`]); instrumentation
//! sites call the free functions [`span`], [`event`], and [`counter`],
//! which are no-ops (no allocation, no clock read) when no tracer is
//! installed. Sink selection is driven by the `OIC_TRACE` environment
//! variable (`text` or `json`) or CLI flags; see [`TraceMode::from_env`].
//!
//! ```
//! use oi_support::trace::{self, MemorySink, Tracer};
//! use std::rc::Rc;
//!
//! let sink = Rc::new(MemorySink::default());
//! let tracer = Rc::new(Tracer::new(vec![sink.clone()]));
//! let _guard = trace::install(tracer.clone());
//! {
//!     let _span = trace::span("analysis");
//!     trace::counter("analysis.rounds", 3);
//! }
//! assert_eq!(tracer.counters(), vec![("analysis.rounds".to_string(), 3)]);
//! assert_eq!(sink.snapshot().len(), 2); // span start + end
//! ```

use crate::json::Json;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

/// Which sink (if any) the CLI tools should install.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Tracing disabled; instrumentation sites are no-ops.
    #[default]
    Off,
    /// Human-readable indented lines on stderr.
    Text,
    /// One JSON object per event on stderr (JSON-lines).
    Json,
}

impl TraceMode {
    /// Parses a mode name: `json`, `text` (also `1`/`on`), `off`/empty.
    pub fn parse(name: &str) -> Option<TraceMode> {
        match name {
            "json" => Some(TraceMode::Json),
            "text" | "1" | "on" => Some(TraceMode::Text),
            "off" | "0" | "" => Some(TraceMode::Off),
            _ => None,
        }
    }

    /// Reads the `OIC_TRACE` environment variable. Unset or unrecognized
    /// values mean [`TraceMode::Off`].
    pub fn from_env() -> TraceMode {
        match std::env::var("OIC_TRACE") {
            Ok(value) => TraceMode::parse(&value).unwrap_or(TraceMode::Off),
            Err(_) => TraceMode::Off,
        }
    }
}

/// What kind of record an [`Event`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanStart,
    /// A span closed; `elapsed_us` is set.
    SpanEnd,
    /// A point-in-time structured event.
    Instant,
}

/// A single trace record as delivered to sinks.
#[derive(Clone, Debug)]
pub struct Event {
    /// Record kind.
    pub kind: EventKind,
    /// Dotted event name, e.g. `pass.rewrite` or `contour.split`.
    pub name: String,
    /// Span nesting depth at the time of the record.
    pub depth: usize,
    /// Wall-clock duration in microseconds ([`EventKind::SpanEnd`] only).
    pub elapsed_us: Option<u64>,
    /// Structured payload fields, in emission order.
    pub fields: Vec<(String, Json)>,
}

impl Event {
    /// Renders as a single JSON object (one JSON-lines record).
    pub fn to_json(&self) -> Json {
        let kind = match self.kind {
            EventKind::SpanStart => "span",
            EventKind::SpanEnd => "span_end",
            EventKind::Instant => "event",
        };
        let mut pairs = vec![
            ("ev".to_string(), Json::Str(kind.to_string())),
            ("name".to_string(), Json::Str(self.name.clone())),
            ("depth".to_string(), Json::UInt(self.depth as u64)),
        ];
        if let Some(us) = self.elapsed_us {
            pairs.push(("us".to_string(), Json::UInt(us)));
        }
        for (k, v) in &self.fields {
            pairs.push((k.clone(), v.clone()));
        }
        Json::Obj(pairs)
    }

    /// Renders as one indented human-readable line.
    pub fn to_text(&self) -> String {
        let mut line = "  ".repeat(self.depth);
        let marker = match self.kind {
            EventKind::SpanStart => '>',
            EventKind::SpanEnd => '<',
            EventKind::Instant => '*',
        };
        let _ = write!(line, "{marker} {}", self.name);
        if let Some(us) = self.elapsed_us {
            let _ = write!(line, " {}.{:03}ms", us / 1000, us % 1000);
        }
        for (k, v) in &self.fields {
            match v {
                Json::Str(s) => {
                    let _ = write!(line, " {k}={s}");
                }
                other => {
                    let _ = write!(line, " {k}={other}");
                }
            }
        }
        line
    }
}

/// A trace output. Sinks receive every span and instant event (counters
/// are aggregate-only and are not delivered per call).
pub trait Sink {
    /// Consumes one record.
    fn record(&self, event: &Event);
}

/// Writes indented human-readable lines to stderr.
#[derive(Default)]
pub struct TextSink;

impl Sink for TextSink {
    fn record(&self, event: &Event) {
        eprintln!("{}", event.to_text());
    }
}

/// Writes one compact JSON object per record to stderr.
#[derive(Default)]
pub struct JsonLinesSink;

impl Sink for JsonLinesSink {
    fn record(&self, event: &Event) {
        eprintln!("{}", event.to_json());
    }
}

/// Captures records in memory; used by tests to assert on trace output.
#[derive(Default)]
pub struct MemorySink {
    events: RefCell<Vec<Event>>,
}

impl MemorySink {
    /// A copy of every record captured so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.borrow_mut().push(event.clone());
    }
}

/// Aggregated timing for one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// How many spans with this name closed.
    pub count: u64,
    /// Total wall-clock microseconds across those spans.
    pub total_us: u64,
}

/// The per-thread trace collector: fans records out to sinks and keeps
/// the phase profile and counter aggregates.
pub struct Tracer {
    sinks: Vec<Rc<dyn Sink>>,
    depth: Cell<usize>,
    phases: RefCell<BTreeMap<String, PhaseStat>>,
    counters: RefCell<BTreeMap<String, i64>>,
}

impl Tracer {
    /// A tracer fanning out to the given sinks. An empty sink list is
    /// valid: spans still aggregate into the phase profile, which is what
    /// `--json` timing output uses even when `OIC_TRACE` is off.
    pub fn new(sinks: Vec<Rc<dyn Sink>>) -> Tracer {
        Tracer {
            sinks,
            depth: Cell::new(0),
            phases: RefCell::new(BTreeMap::new()),
            counters: RefCell::new(BTreeMap::new()),
        }
    }

    /// A tracer with the sink the mode calls for (none for `Off`).
    pub fn for_mode(mode: TraceMode) -> Tracer {
        let sinks: Vec<Rc<dyn Sink>> = match mode {
            TraceMode::Off => vec![],
            TraceMode::Text => vec![Rc::new(TextSink)],
            TraceMode::Json => vec![Rc::new(JsonLinesSink)],
        };
        Tracer::new(sinks)
    }

    /// The per-phase timing profile, sorted by phase name.
    pub fn phase_profile(&self) -> Vec<(String, PhaseStat)> {
        self.phases
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// All counter totals, sorted by counter name.
    pub fn counters(&self) -> Vec<(String, i64)> {
        self.counters
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<Tracer>>> = const { RefCell::new(None) };
}

/// Restores the previously installed tracer when dropped.
pub struct InstallGuard {
    previous: Option<Rc<Tracer>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|current| {
            *current.borrow_mut() = self.previous.take();
        });
    }
}

/// Installs `tracer` as this thread's collector until the returned guard
/// drops (the previous tracer, if any, is then restored).
pub fn install(tracer: Rc<Tracer>) -> InstallGuard {
    let previous = CURRENT.with(|current| current.borrow_mut().replace(tracer));
    InstallGuard { previous }
}

/// The currently installed tracer, if any.
pub fn current() -> Option<Rc<Tracer>> {
    CURRENT.with(|current| current.borrow().clone())
}

/// Whether a tracer is installed. Instrumentation sites that must build
/// field payloads should check this first to keep the disabled path free.
pub fn is_enabled() -> bool {
    CURRENT.with(|current| current.borrow().is_some())
}

/// An open span; closing (dropping) it emits a `SpanEnd` with the elapsed
/// wall-clock time and folds the duration into the phase profile.
pub struct SpanGuard {
    tracer: Option<Rc<Tracer>>,
    name: String,
    start: Option<Instant>,
    fields: Vec<(String, Json)>,
}

impl SpanGuard {
    /// Attaches a field reported on the closing `SpanEnd` record (e.g. a
    /// delta computed while the span ran).
    pub fn field(&mut self, key: &str, value: Json) {
        if self.tracer.is_some() {
            self.fields.push((key.to_string(), value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(tracer) = self.tracer.take() else {
            return;
        };
        let elapsed_us = self
            .start
            .map(|start| start.elapsed().as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let depth = tracer.depth.get().saturating_sub(1);
        tracer.depth.set(depth);
        {
            let mut phases = tracer.phases.borrow_mut();
            let stat = phases.entry(self.name.clone()).or_default();
            stat.count += 1;
            stat.total_us += elapsed_us;
        }
        tracer.record(&Event {
            kind: EventKind::SpanEnd,
            name: std::mem::take(&mut self.name),
            depth,
            elapsed_us: Some(elapsed_us),
            fields: std::mem::take(&mut self.fields),
        });
    }
}

/// Opens a timed span. A no-op guard is returned when tracing is off.
pub fn span(name: &str) -> SpanGuard {
    span_with(name, Vec::new())
}

/// Opens a timed span with fields attached to its opening record.
pub fn span_with(name: &str, fields: Vec<(String, Json)>) -> SpanGuard {
    let Some(tracer) = current() else {
        return SpanGuard {
            tracer: None,
            name: String::new(),
            start: None,
            fields: Vec::new(),
        };
    };
    let depth = tracer.depth.get();
    tracer.record(&Event {
        kind: EventKind::SpanStart,
        name: name.to_string(),
        depth,
        elapsed_us: None,
        fields,
    });
    tracer.depth.set(depth + 1);
    SpanGuard {
        tracer: Some(tracer),
        name: name.to_string(),
        start: Some(Instant::now()),
        fields: Vec::new(),
    }
}

/// Emits a point-in-time event with structured fields.
pub fn event(name: &str, fields: Vec<(String, Json)>) {
    if let Some(tracer) = current() {
        let depth = tracer.depth.get();
        tracer.record(&Event {
            kind: EventKind::Instant,
            name: name.to_string(),
            depth,
            elapsed_us: None,
            fields,
        });
    }
}

/// Adds `delta` to the named counter. Aggregate-only: nothing is sent to
/// sinks, so this is safe to call from hot loops.
pub fn counter(name: &str, delta: i64) {
    if let Some(tracer) = current() {
        let mut counters = tracer.counters.borrow_mut();
        *counters.entry(name.to_string()).or_insert(0) += delta;
    }
}

/// Convenience builder for one `(key, value)` field pair.
pub fn kv(key: &str, value: impl Into<Json>) -> (String, Json) {
    (key.to_string(), value.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_memory_tracer(run: impl FnOnce()) -> (Rc<Tracer>, Vec<Event>) {
        let sink = Rc::new(MemorySink::default());
        let tracer = Rc::new(Tracer::new(vec![sink.clone() as Rc<dyn Sink>]));
        {
            let _guard = install(tracer.clone());
            run();
        }
        let events = sink.snapshot();
        (tracer, events)
    }

    #[test]
    fn spans_nest_and_report_depth() {
        let (_tracer, events) = with_memory_tracer(|| {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                event("leaf", vec![kv("x", 1u64)]);
            }
        });
        let shape: Vec<(EventKind, &str, usize)> = events
            .iter()
            .map(|e| (e.kind, e.name.as_str(), e.depth))
            .collect();
        assert_eq!(
            shape,
            vec![
                (EventKind::SpanStart, "outer", 0),
                (EventKind::SpanStart, "inner", 1),
                (EventKind::Instant, "leaf", 2),
                (EventKind::SpanEnd, "inner", 1),
                (EventKind::SpanEnd, "outer", 0),
            ]
        );
        assert!(events[3].elapsed_us.is_some());
    }

    #[test]
    fn phase_profile_aggregates_by_name() {
        let (tracer, _events) = with_memory_tracer(|| {
            for _ in 0..3 {
                let _s = span("pass.rewrite");
            }
            let _other = span("pass.decide");
        });
        let profile = tracer.phase_profile();
        let rewrite = profile
            .iter()
            .find(|(name, _)| name == "pass.rewrite")
            .unwrap();
        assert_eq!(rewrite.1.count, 3);
        assert_eq!(
            profile
                .iter()
                .filter(|(name, _)| name == "pass.decide")
                .count(),
            1
        );
    }

    #[test]
    fn counters_aggregate_without_sink_records() {
        let (tracer, events) = with_memory_tracer(|| {
            counter("analysis.rounds", 2);
            counter("analysis.rounds", 3);
            counter("tags.joined", 1);
        });
        assert!(events.is_empty(), "counters must not reach sinks");
        assert_eq!(
            tracer.counters(),
            vec![
                ("analysis.rounds".to_string(), 5),
                ("tags.joined".to_string(), 1)
            ]
        );
    }

    #[test]
    fn disabled_tracing_is_inert() {
        assert!(!is_enabled());
        let mut guard = span("nothing");
        guard.field("ignored", Json::Null);
        event("nothing", vec![]);
        counter("nothing", 1);
        drop(guard);
    }

    #[test]
    fn install_guard_restores_previous() {
        let outer = Rc::new(Tracer::new(vec![]));
        let _outer_guard = install(outer.clone());
        {
            let inner = Rc::new(Tracer::new(vec![]));
            let _inner_guard = install(inner.clone());
            counter("c", 1);
            assert_eq!(inner.counters().len(), 1);
        }
        counter("c", 10);
        assert_eq!(outer.counters(), vec![("c".to_string(), 10)]);
    }

    #[test]
    fn json_lines_records_are_valid_json() {
        let (_tracer, events) = with_memory_tracer(|| {
            let mut s = span_with("phase", vec![kv("label", "a\"b\nc")]);
            s.field("delta", Json::Int(-4));
        });
        for event in &events {
            let text = event.to_json().to_string();
            let parsed = Json::parse(&text).expect("every record must be valid JSON");
            assert!(parsed.get("ev").is_some());
            assert!(parsed.get("name").is_some());
        }
        assert_eq!(
            events[0].to_json().get("label").unwrap().as_str(),
            Some("a\"b\nc")
        );
    }

    #[test]
    fn trace_mode_parsing() {
        assert_eq!(TraceMode::parse("json"), Some(TraceMode::Json));
        assert_eq!(TraceMode::parse("text"), Some(TraceMode::Text));
        assert_eq!(TraceMode::parse("off"), Some(TraceMode::Off));
        assert_eq!(TraceMode::parse("bogus"), None);
    }
}
