//! Dependency-free content hashing for cache keys.
//!
//! The artifact cache (`oi_core::cache`) addresses compiled artifacts by
//! `(source hash, configuration fingerprint)`. The workspace builds with
//! zero external dependencies, so instead of a real BLAKE this module
//! hand-rolls a blake-*style* streaming hash: two independently seeded
//! 64-bit mixing lanes over little-endian word chunks, each finalized with
//! a splitmix64 avalanche, concatenated into a 128-bit [`Fingerprint`].
//! It is **not cryptographic** — collision resistance only has to hold
//! against accidental collisions in a compile cache, where a collision
//! costs a wrong cache hit on adversarially chosen *but locally authored*
//! sources, not a security boundary.
//!
//! Structured inputs (config fields) are written through the typed
//! `write_*` helpers, which length/tag-prefix their payloads so adjacent
//! fields cannot alias (`"ab" + "c"` hashes differently from `"a" + "bc"`).
//!
//! # Examples
//!
//! ```
//! use oi_support::hash::{fingerprint, Hasher};
//! let a = fingerprint(b"class P { field x; }");
//! let b = fingerprint(b"class P { field x; }");
//! assert_eq!(a, b);
//! assert_ne!(a, fingerprint(b"class P { field  x; }"), "byte-different");
//!
//! let mut h = Hasher::new();
//! h.write_str("config");
//! h.write_u64(42);
//! assert_ne!(h.finish(), a);
//! ```

/// A 128-bit content fingerprint (two independent 64-bit lanes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(
    /// First lane.
    pub u64,
    /// Second lane.
    pub u64,
);

impl Fingerprint {
    /// The fingerprint as 32 lowercase hex characters (stable across
    /// platforms — both lanes are computed with explicit little-endian
    /// chunking).
    pub fn to_hex(&self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }

    /// Derives a new fingerprint from this one plus a scope string —
    /// the hook for per-method cache granularity: a future incremental
    /// summary cache can key `whole_program_fp.scoped("Class.method")`
    /// without rehashing the source.
    pub fn scoped(&self, scope: &str) -> Fingerprint {
        let mut h = Hasher::new();
        h.write_u64(self.0);
        h.write_u64(self.1);
        h.write_str(scope);
        h.finish()
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// splitmix64 finalizer: full-avalanche bit mixing.
fn avalanche(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A streaming two-lane hasher producing a [`Fingerprint`].
#[derive(Clone, Debug)]
pub struct Hasher {
    a: u64,
    b: u64,
    len: u64,
}

/// Lane multipliers: distinct odd constants (golden-ratio and FNV primes)
/// so the lanes decorrelate even over identical input words.
const LANE_A_MUL: u64 = 0x9E37_79B9_7F4A_7C15;
const LANE_B_MUL: u64 = 0x0000_0100_0000_01B3;

impl Hasher {
    /// A hasher with the fixed lane IVs (all fingerprints are comparable
    /// across processes and runs).
    pub fn new() -> Hasher {
        Hasher {
            a: 0x6A09_E667_F3BC_C908,
            b: 0xBB67_AE85_84CA_A73B,
            len: 0,
        }
    }

    fn mix(&mut self, word: u64) {
        self.a = (self.a ^ word).wrapping_mul(LANE_A_MUL);
        self.a ^= self.a >> 29;
        self.b = (self.b ^ word.rotate_left(32)).wrapping_mul(LANE_B_MUL);
        self.b ^= self.b >> 31;
    }

    /// Absorbs raw bytes (little-endian 8-byte chunks; the tail chunk is
    /// zero-padded, with the true byte length folded in at finish time so
    /// padding cannot alias real zero bytes).
    pub fn write(&mut self, bytes: &[u8]) {
        self.len = self.len.wrapping_add(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut buf = [0u8; 8];
            buf[..tail.len()].copy_from_slice(tail);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    /// Absorbs one `u64` as a tagged 8-byte field.
    pub fn write_u64(&mut self, v: u64) {
        self.mix(0x75_36_34); // "u64" domain tag
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a string, length-prefixed so adjacent fields cannot alias.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs a boolean as a tagged byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(u64::from(v) | 0xB0_00);
    }

    /// The 128-bit fingerprint of everything absorbed so far (the hasher
    /// can keep absorbing afterwards).
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(
            avalanche(self.a ^ self.len),
            avalanche(self.b ^ self.len.rotate_left(17)),
        )
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

/// One-shot fingerprint of a byte slice.
pub fn fingerprint(bytes: &[u8]) -> Fingerprint {
    let mut h = Hasher::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_input_identical_fingerprint() {
        assert_eq!(fingerprint(b"hello"), fingerprint(b"hello"));
        assert_eq!(fingerprint(b""), fingerprint(b""));
    }

    #[test]
    fn single_byte_flip_changes_both_lanes() {
        let a = fingerprint(b"class P { field x; }");
        let b = fingerprint(b"class P { field y; }");
        assert_ne!(a.0, b.0);
        assert_ne!(a.1, b.1);
    }

    #[test]
    fn length_extension_of_zeros_does_not_alias() {
        // Padding the tail chunk with zeros must not collide with actual
        // zero bytes: the absorbed length separates them.
        assert_ne!(fingerprint(b"a"), fingerprint(b"a\0"));
        assert_ne!(fingerprint(b""), fingerprint(b"\0"));
        assert_ne!(
            fingerprint(b"\0\0\0\0\0\0\0"),
            fingerprint(b"\0\0\0\0\0\0\0\0")
        );
    }

    #[test]
    fn str_fields_are_boundary_unambiguous() {
        let mut h1 = Hasher::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = Hasher::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn fingerprints_survive_hex_round_trip_shape() {
        let fp = fingerprint(b"x");
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(format!("{fp}"), hex);
    }

    #[test]
    fn scoped_fingerprints_differ_per_scope_and_are_stable() {
        let fp = fingerprint(b"program");
        assert_eq!(fp.scoped("A.m"), fp.scoped("A.m"));
        assert_ne!(fp.scoped("A.m"), fp.scoped("A.n"));
        assert_ne!(fp.scoped("A.m"), fp);
    }

    #[test]
    fn no_collisions_over_a_small_corpus() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..10_000u32 {
            let fp = fingerprint(format!("source-{i}").as_bytes());
            assert!(seen.insert((fp.0, fp.1)), "collision at {i}");
        }
    }
}
