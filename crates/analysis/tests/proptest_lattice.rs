//! Property tests: the abstract-value domain is a join-semilattice and the
//! tag machinery respects its laws (the analysis's termination and
//! soundness rest on these).

use oi_analysis::{AbstractVal, OCtxId, PathSeg, Tag, TagId, TypeElem};
use proptest::prelude::*;

fn type_elem() -> impl Strategy<Value = TypeElem> {
    prop_oneof![
        Just(TypeElem::Int),
        Just(TypeElem::Float),
        Just(TypeElem::Bool),
        Just(TypeElem::Str),
        Just(TypeElem::Nil),
        (0usize..8).prop_map(|i| TypeElem::Obj(OCtxId::new(i))),
        (0usize..8).prop_map(|i| TypeElem::Arr(OCtxId::new(i))),
    ]
}

fn abstract_val() -> impl Strategy<Value = AbstractVal> {
    (
        proptest::collection::btree_set(type_elem(), 0..6),
        proptest::collection::btree_set((0usize..16).prop_map(TagId::new), 0..5),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(types, tags, untagged, tag_top)| AbstractVal {
            types,
            tags,
            untagged,
            tag_top,
        })
}

fn join(a: &AbstractVal, b: &AbstractVal) -> AbstractVal {
    let mut r = a.clone();
    r.join(b);
    r
}

proptest! {
    #[test]
    fn join_is_commutative(a in abstract_val(), b in abstract_val()) {
        prop_assert_eq!(join(&a, &b), join(&b, &a));
    }

    #[test]
    fn join_is_associative(a in abstract_val(), b in abstract_val(), c in abstract_val()) {
        prop_assert_eq!(join(&join(&a, &b), &c), join(&a, &join(&b, &c)));
    }

    #[test]
    fn join_is_idempotent_and_reports_change_correctly(a in abstract_val(), b in abstract_val()) {
        let mut x = a.clone();
        let changed = x.join(&b);
        // Fixpoint: joining again changes nothing.
        let mut y = x.clone();
        prop_assert!(!y.join(&b));
        prop_assert_eq!(&x, &y);
        // `changed` is accurate.
        prop_assert_eq!(changed, x != a);
    }

    #[test]
    fn join_is_an_upper_bound(a in abstract_val(), b in abstract_val()) {
        let j = join(&a, &b);
        for t in a.types.iter().chain(b.types.iter()) {
            prop_assert!(j.types.contains(t));
        }
        for t in a.tags.iter().chain(b.tags.iter()) {
            prop_assert!(j.tags.contains(t));
        }
        prop_assert_eq!(j.untagged, a.untagged || b.untagged);
        prop_assert_eq!(j.tag_top, a.tag_top || b.tag_top);
    }

    #[test]
    fn bottom_is_identity(a in abstract_val()) {
        prop_assert_eq!(join(&AbstractVal::bottom(), &a), a.clone());
        prop_assert_eq!(join(&a, &AbstractVal::bottom()), a);
    }

    #[test]
    fn keys_agree_with_equality(a in abstract_val(), b in abstract_val()) {
        prop_assert_eq!(a == b, a.key() == b.key());
    }

    #[test]
    fn tag_extension_grows_path_and_keeps_origin(
        origin in (0usize..8).prop_map(OCtxId::new),
        segs in proptest::collection::vec(
            prop_oneof![
                Just(PathSeg::Elem),
            ],
            1..4
        ),
    ) {
        let mut tag = Tag { origin, path: vec![PathSeg::Elem] };
        for &s in &segs {
            let next = tag.extend(s);
            prop_assert_eq!(next.origin, tag.origin);
            prop_assert_eq!(next.path.len(), tag.path.len() + 1);
            prop_assert_eq!(next.head(), s);
            tag = next;
        }
    }
}
