//! Property tests: the abstract-value domain is a join-semilattice and the
//! tag machinery respects its laws (the analysis's termination and
//! soundness rest on these).
//!
//! Random values come from the in-repo seeded PRNG, so every failure
//! reproduces from the seed printed in its message.

use oi_analysis::{AbstractVal, OCtxId, PathSeg, Tag, TagId, TypeElem};
use oi_support::rng::XorShift64;

fn type_elem(rng: &mut XorShift64) -> TypeElem {
    match rng.below(7) {
        0 => TypeElem::Int,
        1 => TypeElem::Float,
        2 => TypeElem::Bool,
        3 => TypeElem::Str,
        4 => TypeElem::Nil,
        5 => TypeElem::Obj(OCtxId::new(rng.below(8))),
        _ => TypeElem::Arr(OCtxId::new(rng.below(8))),
    }
}

fn abstract_val(rng: &mut XorShift64) -> AbstractVal {
    let types = (0..rng.below(6)).map(|_| type_elem(rng)).collect();
    let tags = (0..rng.below(5))
        .map(|_| TagId::new(rng.below(16)))
        .collect();
    AbstractVal {
        types,
        tags,
        untagged: rng.chance(1, 2),
        tag_top: rng.chance(1, 2),
    }
}

fn join(a: &AbstractVal, b: &AbstractVal) -> AbstractVal {
    let mut r = a.clone();
    r.join(b);
    r
}

const CASES: u64 = 128;

#[test]
fn join_is_commutative() {
    for seed in 0..CASES {
        let mut rng = XorShift64::new(seed);
        let (a, b) = (abstract_val(&mut rng), abstract_val(&mut rng));
        assert_eq!(join(&a, &b), join(&b, &a), "seed {seed}");
    }
}

#[test]
fn join_is_associative() {
    for seed in 0..CASES {
        let mut rng = XorShift64::new(seed);
        let (a, b, c) = (
            abstract_val(&mut rng),
            abstract_val(&mut rng),
            abstract_val(&mut rng),
        );
        assert_eq!(
            join(&join(&a, &b), &c),
            join(&a, &join(&b, &c)),
            "seed {seed}"
        );
    }
}

#[test]
fn join_is_idempotent_and_reports_change_correctly() {
    for seed in 0..CASES {
        let mut rng = XorShift64::new(seed);
        let (a, b) = (abstract_val(&mut rng), abstract_val(&mut rng));
        let mut x = a.clone();
        let changed = x.join(&b);
        // Fixpoint: joining again changes nothing.
        let mut y = x.clone();
        assert!(!y.join(&b), "seed {seed}");
        assert_eq!(&x, &y, "seed {seed}");
        // `changed` is accurate.
        assert_eq!(changed, x != a, "seed {seed}");
    }
}

#[test]
fn join_is_an_upper_bound() {
    for seed in 0..CASES {
        let mut rng = XorShift64::new(seed);
        let (a, b) = (abstract_val(&mut rng), abstract_val(&mut rng));
        let j = join(&a, &b);
        for t in a.types.iter().chain(b.types.iter()) {
            assert!(j.types.contains(t), "seed {seed}");
        }
        for t in a.tags.iter().chain(b.tags.iter()) {
            assert!(j.tags.contains(t), "seed {seed}");
        }
        assert_eq!(j.untagged, a.untagged || b.untagged, "seed {seed}");
        assert_eq!(j.tag_top, a.tag_top || b.tag_top, "seed {seed}");
    }
}

#[test]
fn bottom_is_identity() {
    for seed in 0..CASES {
        let mut rng = XorShift64::new(seed);
        let a = abstract_val(&mut rng);
        assert_eq!(join(&AbstractVal::bottom(), &a), a.clone(), "seed {seed}");
        assert_eq!(join(&a, &AbstractVal::bottom()), a, "seed {seed}");
    }
}

#[test]
fn keys_agree_with_equality() {
    for seed in 0..CASES {
        let mut rng = XorShift64::new(seed);
        let (a, b) = (abstract_val(&mut rng), abstract_val(&mut rng));
        assert_eq!(a == b, a.key() == b.key(), "seed {seed}");
    }
}

#[test]
fn tag_extension_grows_path_and_keeps_origin() {
    for seed in 0..CASES {
        let mut rng = XorShift64::new(seed);
        let origin = OCtxId::new(rng.below(8));
        let mut tag = Tag {
            origin,
            path: vec![PathSeg::Elem],
        };
        for _ in 0..1 + rng.below(3) {
            let s = PathSeg::Elem;
            let next = tag.extend(s);
            assert_eq!(next.origin, tag.origin, "seed {seed}");
            assert_eq!(next.path.len(), tag.path.len() + 1, "seed {seed}");
            assert_eq!(next.head(), s, "seed {seed}");
            tag = next;
        }
    }
}
