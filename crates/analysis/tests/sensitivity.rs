//! Tests of the analysis's demand-driven sensitivity and its widening
//! behavior under the configured caps (the paper's framework creates
//! contours "on demand"; ours additionally bounds them).

use oi_analysis::{analyze, AnalysisConfig, PathSeg};
use oi_ir::lower::compile;

#[test]
fn contour_cap_widens_instead_of_diverging() {
    // A method called with many distinct object types.
    let mut src = String::new();
    for i in 0..12 {
        src.push_str(&format!(
            "class C{i} {{ field f; method init(v) {{ self.f = v; }} }}\n"
        ));
    }
    src.push_str("fn id(x) { return x; }\nfn main() {\n");
    for i in 0..12 {
        src.push_str(&format!("  print id(new C{i}({i})).f;\n"));
    }
    src.push_str("}\n");
    let p = compile(&src).unwrap();
    let config = AnalysisConfig {
        max_contours_per_method: 4,
        ..Default::default()
    };
    let r = analyze(&p, &config);
    let id = p.method_by_name("$Main", "id").unwrap();
    let contours = &r.contours_of_method[&id];
    assert!(
        contours.len() <= 5,
        "cap+widened contour: got {}",
        contours.len()
    );
    // The widened contour absorbs everything; the analysis still sees all
    // classes flowing through `id`.
    let mut total_types = 0;
    for &c in contours {
        total_types += r.mcontours[c].frame[1].types.len();
    }
    assert!(
        total_types >= 12,
        "all argument types must be covered: {total_types}"
    );
}

#[test]
fn object_contour_cap_widens_per_site() {
    // One allocation site reached from many method contours.
    let mut src = String::from(
        "class Box { field v; method init(a) { self.v = a; } }
         fn mk(a) { return new Box(a); }
         fn main() {\n",
    );
    for i in 0..10 {
        if i % 2 == 0 {
            src.push_str(&format!("  print mk({i}).v;\n"));
        } else {
            src.push_str(&format!("  print mk({i}.0).v;\n"));
        }
    }
    src.push_str("}\n");
    let p = compile(&src).unwrap();
    let config = AnalysisConfig {
        max_ocontours_per_site: 1,
        ..Default::default()
    };
    let r = analyze(&p, &config);
    // With the cap at 1, the site gets one precise contour plus one
    // widened catch-all; together they cover both stored types and the
    // total stays bounded.
    let box_class = p.class_by_name("Box").unwrap();
    let v = p.interner.get("v").unwrap();
    let contours: Vec<_> = r
        .ocontours
        .iter()
        .filter(|o| o.class == Some(box_class))
        .collect();
    assert!(
        contours.len() <= 2,
        "cap 1 + widened = at most 2, got {}",
        contours.len()
    );
    let mut covered = std::collections::BTreeSet::new();
    for o in &contours {
        if let Some(s) = o.field(v) {
            covered.extend(s.types.iter().cloned());
        }
    }
    assert!(covered.contains(&oi_analysis::TypeElem::Int));
    assert!(covered.contains(&oi_analysis::TypeElem::Float));
}

#[test]
fn tag_path_cap_sets_tag_top() {
    // A five-deep field chain with max_tag_path 2 must overflow into
    // tag_top rather than growing unbounded paths.
    let p = compile(
        "class A { field n; method init(x) { self.n = x; } }
         fn main() {
           var leaf = new A(1);
           var l2 = new A(leaf);
           var l3 = new A(l2);
           var l4 = new A(l3);
           var l5 = new A(l4);
           print l5.n.n.n.n.n;
         }",
    )
    .unwrap();
    let config = AnalysisConfig {
        max_tag_path: 2,
        ..Default::default()
    };
    let r = analyze(&p, &config);
    let main_ctx = r.contours_of_method[&p.entry][0];
    let overflowed = r.mcontours[main_ctx].frame.iter().any(|v| v.tag_top);
    assert!(overflowed, "deep chains must hit the tag-path cap");
    // And no interned tag exceeds the cap.
    for i in 0..r.tags.len() {
        assert!(r.tags.resolve(oi_analysis::TagId::new(i)).path.len() <= 2);
    }
}

#[test]
fn tags_disambiguate_two_fields_of_one_class() {
    // The do_rectangle shape: two fields of the same class; the loaded
    // values carry distinct direct tags.
    let p = compile(
        "class Pt { field v; method init(a) { self.v = a; } }
         class Rect { field ll; field ur;
           method init(a, b) { self.ll = new Pt(a); self.ur = new Pt(b); }
         }
         fn main() {
           var r = new Rect(1, 2);
           var x = r.ll;
           var y = r.ur;
           print x.v + y.v;
         }",
    )
    .unwrap();
    let r = analyze(&p, &AnalysisConfig::default());
    let main_ctx = r.contours_of_method[&p.entry][0];
    let ll = p.interner.get("ll").unwrap();
    let ur = p.interner.get("ur").unwrap();
    let has_tag = |field| {
        r.mcontours[main_ctx].frame.iter().any(|v| {
            v.tags.iter().any(|&t| {
                matches!(r.tags.resolve(t).path.as_slice(), [PathSeg::Field(f)] if *f == field)
            })
        })
    };
    assert!(has_tag(ll));
    assert!(has_tag(ur));
    // No value carries both direct tags: the contours kept them separate.
    let confused = r.mcontours[main_ctx].frame.iter().any(|v| {
        let mut found_ll = false;
        let mut found_ur = false;
        for &t in &v.tags {
            if let [PathSeg::Field(f)] = r.tags.resolve(t).path.as_slice() {
                found_ll |= *f == ll;
                found_ur |= *f == ur;
            }
        }
        found_ll && found_ur
    });
    assert!(
        !confused,
        "ll and ur tags must not merge in straight-line code"
    );
}

#[test]
fn analysis_of_transformed_programs_reconverges() {
    // Re-analyzing an already-inlined program (as the iterative pipeline
    // does) must terminate and produce contours for the interior accesses.
    let p = compile(
        "class Pt { field x; method init(a) { self.x = a; } }
         class Box { field p; method init(a) { self.p = new Pt(a); } }
         fn main() {
           var b = new Box(5);
           print b.p.x;
         }",
    )
    .unwrap();
    let opt = oi_core::pipeline::optimize(&p, &Default::default());
    let r = analyze(&opt.program, &AnalysisConfig::default());
    assert!(!r.mcontours.is_empty());
}

#[test]
fn clone_groups_split_on_divergent_dispatch() {
    // do_rectangle's shape: one method whose contours resolve a send to
    // different targets → two clone groups (the paper's Figure 10).
    let p = compile(
        "class A { method m() { return 1; } }
         class B : A { method m() { return 2; } }
         fn call_it(x) { return x.m(); }
         fn main() { print call_it(new A()); print call_it(new B()); }",
    )
    .unwrap();
    let r = analyze(&p, &AnalysisConfig::default());
    let groups = oi_analysis::report::clone_groups_by_method(&p, &r);
    assert_eq!(groups["$Main::call_it"], 2, "{groups:?}");
    assert_eq!(groups["$Main::main"], 1);
    assert!(oi_analysis::report::clone_groups(&p, &r) >= 4);
}

#[test]
fn monomorphic_programs_need_one_group_per_method() {
    let p = compile(
        "class A { method m() { return 1; } }
         fn main() { var a = new A(); print a.m(); print a.m(); }",
    )
    .unwrap();
    let r = analyze(&p, &AnalysisConfig::default());
    for (name, n) in oi_analysis::report::clone_groups_by_method(&p, &r) {
        assert_eq!(n, 1, "{name} should not split");
    }
}
