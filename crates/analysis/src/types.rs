//! The abstract value domain: concrete type sets and field tags.

use crate::contour::OCtxId;
use oi_support::{define_idx, Symbol};
use std::collections::BTreeSet;

define_idx!(
    /// Identifies an interned [`Tag`].
    pub struct TagId, "tag"
);

/// One step of a tag path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PathSeg {
    /// A named field access.
    Field(Symbol),
    /// An array element access.
    Elem,
}

/// A field tag (paper §4.1): "this value may have come from
/// `origin.path[0].path[1]...`". `MakeTag` corresponds to extending the
/// path; a value with no tags at all is the paper's `NoField`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag {
    /// Object contour the access chain started from.
    pub origin: OCtxId,
    /// The chain of accesses (length ≥ 1).
    pub path: Vec<PathSeg>,
}

impl Tag {
    /// The outermost accessed member, `Head(tag)` in the paper.
    pub fn head(&self) -> PathSeg {
        *self.path.last().expect("tag paths are non-empty")
    }

    /// `MakeTag(seg, self)`: the tag for a member access on a value carrying
    /// this tag.
    pub fn extend(&self, seg: PathSeg) -> Tag {
        let mut path = self.path.clone();
        path.push(seg);
        Tag {
            origin: self.origin,
            path,
        }
    }

    /// Returns `true` for direct (length-1) tags of `origin.field`.
    pub fn is_direct(&self, origin: OCtxId, seg: PathSeg) -> bool {
        self.origin == origin && self.path.len() == 1 && self.path[0] == seg
    }
}

/// Interning table for tags.
#[derive(Debug, Default, Clone)]
pub struct TagTable {
    tags: Vec<Tag>,
    map: std::collections::HashMap<Tag, TagId>,
}

impl TagTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `tag`.
    pub fn intern(&mut self, tag: Tag) -> TagId {
        if let Some(&id) = self.map.get(&tag) {
            return id;
        }
        let id = TagId::new(self.tags.len());
        self.tags.push(tag.clone());
        self.map.insert(tag, id);
        id
    }

    /// Resolves a tag id.
    pub fn resolve(&self, id: TagId) -> &Tag {
        &self.tags[id.index()]
    }

    /// Number of distinct tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Returns `true` when no tags are interned.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

/// An element of the concrete type lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TypeElem {
    /// Integer.
    Int,
    /// Float.
    Float,
    /// Boolean.
    Bool,
    /// String constant.
    Str,
    /// The nil reference.
    Nil,
    /// An instance abstracted by an object contour.
    Obj(OCtxId),
    /// A reference array abstracted by an object contour.
    Arr(OCtxId),
}

impl TypeElem {
    /// The object contour, for `Obj`/`Arr` elements.
    pub fn contour(self) -> Option<OCtxId> {
        match self {
            TypeElem::Obj(o) | TypeElem::Arr(o) => Some(o),
            _ => None,
        }
    }
}

/// An abstract value: a set of concrete types plus provenance tags.
///
/// `untagged` is the paper's `NoField`: some value reaching here did *not*
/// come from a field access. `tag_top` means the tag set overflowed and the
/// value must be treated as coming from unknown fields (kills inlining of
/// anything it touches).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AbstractVal {
    /// Possible concrete types.
    pub types: BTreeSet<TypeElem>,
    /// Possible field provenances.
    pub tags: BTreeSet<TagId>,
    /// Whether a non-field-loaded value reaches here (`NoField`).
    pub untagged: bool,
    /// Tag-set overflow marker.
    pub tag_top: bool,
}

impl AbstractVal {
    /// The bottom value (empty).
    pub fn bottom() -> Self {
        Self::default()
    }

    /// A freshly produced (non-field) value of the given type.
    pub fn fresh(ty: TypeElem) -> Self {
        Self {
            types: std::iter::once(ty).collect(),
            tags: BTreeSet::new(),
            untagged: true,
            tag_top: false,
        }
    }

    /// Returns `true` if nothing flows here yet.
    pub fn is_bottom(&self) -> bool {
        self.types.is_empty() && self.tags.is_empty() && !self.untagged && !self.tag_top
    }

    /// Least-upper-bound join; returns `true` if `self` changed.
    pub fn join(&mut self, other: &AbstractVal) -> bool {
        let mut changed = false;
        for &t in &other.types {
            changed |= self.types.insert(t);
        }
        for &t in &other.tags {
            changed |= self.tags.insert(t);
        }
        if other.untagged && !self.untagged {
            self.untagged = true;
            changed = true;
        }
        if other.tag_top && !self.tag_top {
            self.tag_top = true;
            changed = true;
        }
        changed
    }

    /// Joins only the type portion of `other` while marking the result as
    /// freshly produced — used for results of operations that strip
    /// provenance (arithmetic etc. never produce objects, so this is mostly
    /// a convenience for builtins).
    pub fn join_fresh(&mut self, ty: TypeElem) -> bool {
        let mut changed = self.types.insert(ty);
        if !self.untagged {
            self.untagged = true;
            changed = true;
        }
        changed
    }

    /// Object contours among the types.
    pub fn object_contours(&self) -> impl Iterator<Item = OCtxId> + '_ {
        self.types.iter().filter_map(|t| match t {
            TypeElem::Obj(o) => Some(*o),
            _ => None,
        })
    }

    /// Array contours among the types.
    pub fn array_contours(&self) -> impl Iterator<Item = OCtxId> + '_ {
        self.types.iter().filter_map(|t| match t {
            TypeElem::Arr(o) => Some(*o),
            _ => None,
        })
    }

    /// Returns `true` if any object or array type is present.
    pub fn has_reference_type(&self) -> bool {
        self.types.iter().any(|t| t.contour().is_some())
    }

    /// Canonical form used in contour keys.
    pub fn key(&self) -> ValKey {
        ValKey {
            types: self.types.iter().copied().collect(),
            tags: self.tags.iter().copied().collect(),
            untagged: self.untagged,
            tag_top: self.tag_top,
        }
    }
}

/// Canonicalized [`AbstractVal`] used to key method contours. Two calls with
/// equal keys share a contour; the subset condition of §4.1 is satisfied
/// trivially (equal sets are mutual subsets).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValKey {
    /// Sorted types.
    pub types: Vec<TypeElem>,
    /// Sorted tags.
    pub tags: Vec<TagId>,
    /// NoField marker.
    pub untagged: bool,
    /// Overflow marker.
    pub tag_top: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        let mut i = oi_support::Interner::new();
        i.intern(s)
    }

    #[test]
    fn tag_extension_and_head() {
        let t = Tag {
            origin: OCtxId::new(0),
            path: vec![PathSeg::Field(sym("ll"))],
        };
        let t2 = t.extend(PathSeg::Field(sym("x")));
        assert_eq!(t2.path.len(), 2);
        assert_eq!(t2.head(), PathSeg::Field(sym("x")));
        assert!(t.is_direct(OCtxId::new(0), PathSeg::Field(sym("ll"))));
        assert!(!t2.is_direct(OCtxId::new(0), PathSeg::Field(sym("ll"))));
    }

    #[test]
    fn tag_table_interns() {
        let mut tt = TagTable::new();
        let a = tt.intern(Tag {
            origin: OCtxId::new(0),
            path: vec![PathSeg::Elem],
        });
        let b = tt.intern(Tag {
            origin: OCtxId::new(0),
            path: vec![PathSeg::Elem],
        });
        let c = tt.intern(Tag {
            origin: OCtxId::new(1),
            path: vec![PathSeg::Elem],
        });
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(tt.len(), 2);
    }

    #[test]
    fn join_is_monotone_and_idempotent() {
        let mut a = AbstractVal::fresh(TypeElem::Int);
        let b = AbstractVal::fresh(TypeElem::Obj(OCtxId::new(1)));
        assert!(a.join(&b));
        assert!(!a.join(&b), "second join is a no-op");
        assert_eq!(a.types.len(), 2);
        assert!(a.untagged);
    }

    #[test]
    fn bottom_identity() {
        let mut a = AbstractVal::bottom();
        assert!(a.is_bottom());
        let b = AbstractVal::fresh(TypeElem::Float);
        a.join(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn keys_equal_iff_same_abstraction() {
        let a = AbstractVal::fresh(TypeElem::Int);
        let mut b = AbstractVal::fresh(TypeElem::Int);
        assert_eq!(a.key(), b.key());
        b.tags.insert(TagId::new(0));
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn contour_iterators_filter() {
        let mut v = AbstractVal::bottom();
        v.types.insert(TypeElem::Obj(OCtxId::new(1)));
        v.types.insert(TypeElem::Arr(OCtxId::new(2)));
        v.types.insert(TypeElem::Int);
        assert_eq!(
            v.object_contours().collect::<Vec<_>>(),
            vec![OCtxId::new(1)]
        );
        assert_eq!(v.array_contours().collect::<Vec<_>>(), vec![OCtxId::new(2)]);
        assert!(v.has_reference_type());
    }
}
