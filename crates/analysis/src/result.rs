//! Analysis results and queries.

use crate::contour::{MContour, MCtxId, OContour, OCtxId};
use crate::types::{AbstractVal, TagTable};
use oi_ir::{BlockId, Instr, MethodId, Program, Temp};
use oi_support::{BudgetDimension, IdxVec};
use std::collections::{BTreeSet, HashMap};

/// The output of [`crate::engine::analyze`].
#[derive(Debug)]
pub struct AnalysisResult {
    /// Whether tags were tracked (object-inlining sensitivity).
    pub track_tags: bool,
    /// `true` when a resource budget (or the round cap) ran out and the
    /// engine froze its contour set, completing the fixpoint over globally
    /// widened contours. The result is sound but coarser than an
    /// unbudgeted run.
    pub degraded: bool,
    /// The budget dimension that forced the freeze, when [`Self::degraded`].
    pub exhausted: Option<BudgetDimension>,
    /// Interned tag table.
    pub tags: TagTable,
    /// All method contours; index 0 is the entry contour.
    pub mcontours: IdxVec<MCtxId, MContour>,
    /// All object contours.
    pub ocontours: IdxVec<OCtxId, OContour>,
    /// Contours grouped by method.
    pub contours_of_method: HashMap<MethodId, Vec<MCtxId>>,
    /// Callee contours per call-shaped instruction `(contour, block, index)`.
    pub call_edges: HashMap<(MCtxId, BlockId, usize), Vec<MCtxId>>,
    /// Global variable summaries.
    pub globals: Vec<AbstractVal>,
}

impl AnalysisResult {
    /// The abstract value of `temp` in `contour`.
    pub fn temp_val(&self, contour: MCtxId, temp: Temp) -> &AbstractVal {
        &self.mcontours[contour].frame[temp.index()]
    }

    /// The abstract value of `temp` joined over *all* contours of `method`.
    pub fn temp_val_joined(&self, method: MethodId, temp: Temp) -> AbstractVal {
        let mut out = AbstractVal::bottom();
        if let Some(contours) = self.contours_of_method.get(&method) {
            for &c in contours {
                out.join(&self.mcontours[c].frame[temp.index()]);
            }
        }
        out
    }

    /// All possible callee *methods* of the `Send` at `(method, bb, idx)`,
    /// unioned across contours.
    pub fn send_targets(&self, method: MethodId, bb: BlockId, idx: usize) -> BTreeSet<MethodId> {
        let mut out = BTreeSet::new();
        if let Some(contours) = self.contours_of_method.get(&method) {
            for &c in contours {
                if let Some(callees) = self.call_edges.get(&(c, bb, idx)) {
                    for &callee in callees {
                        out.insert(self.mcontours[callee].method);
                    }
                }
            }
        }
        out
    }

    /// The unique devirtualization target of a send, if there is one.
    pub fn devirt_target(&self, method: MethodId, bb: BlockId, idx: usize) -> Option<MethodId> {
        let targets = self.send_targets(method, bb, idx);
        if targets.len() == 1 {
            targets.into_iter().next()
        } else {
            None
        }
    }

    /// Reverse call graph at method granularity: which `(method, bb, idx)`
    /// call instructions may invoke `callee`, and which argument temps they
    /// pass. Used by assignment specialization's `CallByValue`.
    pub fn callers_of(&self, program: &Program, callee: MethodId) -> Vec<CallerSite> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        for ((mctx, bb, idx), callees) in &self.call_edges {
            if !callees.iter().any(|&c| self.mcontours[c].method == callee) {
                continue;
            }
            let caller = self.mcontours[*mctx].method;
            if !seen.insert((caller, *bb, *idx)) {
                continue;
            }
            let instr = &program.methods[caller].blocks[*bb].instrs[*idx];
            let (recv, args) = match instr {
                Instr::Send { recv, args, .. } | Instr::CallStatic { recv, args, .. } => {
                    (Some(*recv), args.clone())
                }
                // Constructor call: `self` is the fresh object, no temp.
                Instr::New { args, .. } => (None, args.clone()),
                _ => continue,
            };
            out.push(CallerSite {
                method: caller,
                bb: *bb,
                idx: *idx,
                recv,
                args,
            });
        }
        out.sort_by_key(|s| (s.method.index(), s.bb.index(), s.idx));
        out
    }

    /// Total number of method contours.
    pub fn method_contour_count(&self) -> usize {
        self.mcontours.len()
    }

    /// Total number of object contours (synthetic interior contours
    /// excluded from the per-site statistics would be a refinement; they
    /// only exist when re-analyzing transformed programs).
    pub fn object_contour_count(&self) -> usize {
        self.ocontours.len()
    }
}

/// One call site that may invoke some callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallerSite {
    /// The calling method.
    pub method: MethodId,
    /// Block of the call instruction.
    pub bb: BlockId,
    /// Instruction index within the block.
    pub idx: usize,
    /// The receiver temp; `None` for constructor calls, whose `self` is the
    /// freshly allocated object.
    pub recv: Option<Temp>,
    /// The declared-argument temps.
    pub args: Vec<Temp>,
}

#[cfg(test)]
mod tests {
    use crate::engine::{analyze, AnalysisConfig};
    use oi_ir::lower::compile;

    #[test]
    fn devirt_finds_monomorphic_target() {
        let p = compile(
            "class A { method m() { return 1; } }
             class B { method m() { return 2; } }
             fn main() { var a = new A(); print a.m(); }",
        )
        .unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        let a_m = p.method_by_name("A", "m").unwrap();
        let mut found = false;
        for (bb, idx, instr) in p.methods[p.entry].instrs() {
            if matches!(instr, oi_ir::Instr::Send { .. }) {
                assert_eq!(r.devirt_target(p.entry, bb, idx), Some(a_m));
                found = true;
            }
        }
        assert!(found);
    }

    #[test]
    fn polymorphic_send_has_no_unique_target() {
        let p = compile(
            "class A { method m() { return 1; } }
             class B : A { method m() { return 2; } }
             fn pick(c) { return c.m(); }
             fn main() { print pick(new A()); print pick(new B()); }",
        )
        .unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        let pick = p.method_by_name("$Main", "pick").unwrap();
        for (bb, idx, instr) in p.methods[pick].instrs() {
            if matches!(instr, oi_ir::Instr::Send { .. }) {
                assert_eq!(r.devirt_target(pick, bb, idx), None);
                assert_eq!(r.send_targets(pick, bb, idx).len(), 2);
            }
        }
    }

    #[test]
    fn callers_of_finds_sites() {
        let p = compile(
            "fn callee(x) { return x; }
             fn main() { print callee(1); print callee(2); }",
        )
        .unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        let callee = p.method_by_name("$Main", "callee").unwrap();
        let sites = r.callers_of(&p, callee);
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().all(|s| s.method == p.entry));
        assert!(sites.iter().all(|s| s.recv.is_some() && s.args.len() == 1));
    }

    #[test]
    fn constructor_callers_are_recorded() {
        let p = compile(
            "class P { field x; method init(a) { self.x = a; } }
             fn main() { var p = new P(5); print p.x; }",
        )
        .unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        let init = p.method_by_name("P", "init").unwrap();
        let sites = r.callers_of(&p, init);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].method, p.entry);
    }
}
