//! Method and object contours (paper §3.2.1).

use crate::types::{AbstractVal, ValKey};
use oi_ir::{ClassId, MethodId, SiteId};
use oi_support::{define_idx, Symbol};
use std::collections::HashMap;

define_idx!(
    /// Identifies a method contour.
    pub struct MCtxId, "mctx"
);
define_idx!(
    /// Identifies an object contour.
    pub struct OCtxId, "octx"
);

/// The context key of a method contour: the canonicalized abstractions of
/// `self` and each argument at the calls it covers. The widened contour of a
/// method has an empty key and covers every remaining call.
pub type CtxKey = Vec<ValKey>;

/// A method contour: one execution context of a method.
///
/// Contours "can discriminate arbitrary dataflow properties of its caller
/// and creator" — here, concrete types and field tags of the inputs.
#[derive(Clone, Debug)]
pub struct MContour {
    /// The method this is a context of.
    pub method: MethodId,
    /// Canonical argument abstraction (empty when widened).
    pub key: CtxKey,
    /// Per-temp abstract values (the analysis frame).
    pub frame: Vec<AbstractVal>,
    /// Join of all returned values.
    pub ret: AbstractVal,
    /// Whether this is the widened catch-all contour for the method.
    pub widened: bool,
}

impl MContour {
    /// Creates an empty contour for `method` with `temp_count` frame slots.
    pub fn new(method: MethodId, key: CtxKey, temp_count: usize, widened: bool) -> Self {
        Self {
            method,
            key,
            frame: vec![AbstractVal::bottom(); temp_count],
            ret: AbstractVal::bottom(),
            widened,
        }
    }
}

/// An object contour: objects allocated at `site` by `creator` (creator
/// sensitivity; `None` when widened to per-site only).
#[derive(Clone, Debug)]
pub struct OContour {
    /// Allocation site.
    pub site: SiteId,
    /// Instance class (`None` for arrays).
    pub class: Option<ClassId>,
    /// Creating method contour, if tracked.
    pub creator: Option<MCtxId>,
    /// Per-field value summaries.
    pub fields: HashMap<Symbol, AbstractVal>,
    /// Array element summary (arrays only).
    pub elem: AbstractVal,
    /// Join of array length values (arrays only; used for reporting).
    pub len_known: bool,
}

impl OContour {
    /// Creates an empty instance contour.
    pub fn instance(site: SiteId, class: ClassId, creator: Option<MCtxId>) -> Self {
        Self {
            site,
            class: Some(class),
            creator,
            fields: HashMap::new(),
            elem: AbstractVal::bottom(),
            len_known: false,
        }
    }

    /// Creates an empty array contour.
    pub fn array(site: SiteId, creator: Option<MCtxId>) -> Self {
        Self {
            site,
            class: None,
            creator,
            fields: HashMap::new(),
            elem: AbstractVal::bottom(),
            len_known: false,
        }
    }

    /// Returns `true` for array contours.
    pub fn is_array(&self) -> bool {
        self.class.is_none()
    }

    /// The field summary, creating it on demand.
    pub fn field_mut(&mut self, field: Symbol) -> &mut AbstractVal {
        self.fields.entry(field).or_default()
    }

    /// The field summary, if any value was ever stored.
    pub fn field(&self, field: Symbol) -> Option<&AbstractVal> {
        self.fields.get(&field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeElem;

    #[test]
    fn fresh_contour_is_bottom() {
        let c = MContour::new(MethodId::new(0), vec![], 4, false);
        assert_eq!(c.frame.len(), 4);
        assert!(c.frame.iter().all(AbstractVal::is_bottom));
        assert!(c.ret.is_bottom());
    }

    #[test]
    fn field_summaries_grow_on_demand() {
        let mut i = oi_support::Interner::new();
        let f = i.intern("x");
        let mut o = OContour::instance(SiteId::new(0), ClassId::new(1), None);
        assert!(o.field(f).is_none());
        o.field_mut(f).join(&AbstractVal::fresh(TypeElem::Int));
        assert!(o.field(f).is_some());
        assert!(!o.is_array());
    }

    #[test]
    fn array_contours_have_no_class() {
        let o = OContour::array(SiteId::new(3), Some(MCtxId::new(0)));
        assert!(o.is_array());
        assert_eq!(o.creator, Some(MCtxId::new(0)));
    }
}
