//! Analysis-cost reporting (paper §6.2.2, Figure 16).
//!
//! The paper measures analysis cost as *method contours required per method*
//! with and without the object-inlining sensitivity, and notes that object
//! inlining required no additional object contours on their benchmarks.

use crate::contour::MCtxId;
use crate::result::AnalysisResult;
use oi_ir::{Instr, Program};
use std::collections::{BTreeMap, BTreeSet};

/// Contour statistics for one analysis run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContourStats {
    /// Methods that received at least one contour (analyzed methods).
    pub analyzed_methods: usize,
    /// Total method contours created.
    pub method_contours: usize,
    /// Total object contours created.
    pub object_contours: usize,
    /// Method contours per analyzed method (the Figure 16 metric).
    pub contours_per_method: f64,
}

impl ContourStats {
    /// Computes statistics from an analysis result.
    pub fn from_result(result: &AnalysisResult) -> Self {
        let analyzed_methods = result.contours_of_method.len().max(1);
        let method_contours = result.method_contour_count();
        Self {
            analyzed_methods,
            method_contours,
            object_contours: result.object_contour_count(),
            contours_per_method: method_contours as f64 / analyzed_methods as f64,
        }
    }
}

/// Counts the method clones the paper's cloning stage (§5.1, Figure 10)
/// would materialize: contours of one method are *compatible* when they
/// agree on the resolved target set of every call in the body; each
/// incompatible group becomes a clone. Our runtime realizes the same
/// specialization through layouts and devirtualization, but the grouping is
/// still the paper's code-expansion driver, so we report it.
pub fn clone_groups(program: &Program, result: &AnalysisResult) -> usize {
    let mut total = 0;
    for (&method, contours) in &result.contours_of_method {
        // Signature of a contour: for every call-shaped instruction, the
        // set of callee methods its recorded edges resolve to.
        let mut signatures: BTreeSet<Vec<BTreeSet<usize>>> = BTreeSet::new();
        for &mctx in contours {
            let mut sig: Vec<BTreeSet<usize>> = Vec::new();
            for (bb, idx, instr) in program.methods[method].instrs() {
                let is_call = matches!(
                    instr,
                    Instr::Send { .. } | Instr::CallStatic { .. } | Instr::New { .. }
                );
                if !is_call {
                    continue;
                }
                let targets: BTreeSet<usize> = resolve_targets(result, mctx, bb, idx);
                sig.push(targets);
            }
            signatures.insert(sig);
        }
        total += signatures.len().max(1);
    }
    total
}

fn resolve_targets(
    result: &AnalysisResult,
    mctx: MCtxId,
    bb: oi_ir::BlockId,
    idx: usize,
) -> BTreeSet<usize> {
    result
        .call_edges
        .get(&(mctx, bb, idx))
        .map(|callees| {
            callees
                .iter()
                .map(|&c| result.mcontours[c].method.index())
                .collect()
        })
        .unwrap_or_default()
}

/// Per-method clone-group counts, for diagnostics.
pub fn clone_groups_by_method(
    program: &Program,
    result: &AnalysisResult,
) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for (&method, contours) in &result.contours_of_method {
        let mut signatures: BTreeSet<Vec<BTreeSet<usize>>> = BTreeSet::new();
        for &mctx in contours {
            let mut sig: Vec<BTreeSet<usize>> = Vec::new();
            for (bb, idx, instr) in program.methods[method].instrs() {
                if matches!(
                    instr,
                    Instr::Send { .. } | Instr::CallStatic { .. } | Instr::New { .. }
                ) {
                    sig.push(resolve_targets(result, mctx, bb, idx));
                }
            }
            signatures.insert(sig);
        }
        out.insert(program.method_display(method), signatures.len().max(1));
    }
    out
}

/// Runs the analysis twice — with and without tag sensitivity — and returns
/// `(without_inlining, with_inlining)` statistics, the Figure 16 pair.
pub fn contour_comparison(program: &Program) -> (ContourStats, ContourStats) {
    let without = crate::engine::analyze(program, &crate::engine::AnalysisConfig::without_tags());
    let with = crate::engine::analyze(program, &crate::engine::AnalysisConfig::default());
    (
        ContourStats::from_result(&without),
        ContourStats::from_result(&with),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use oi_ir::lower::compile;

    #[test]
    fn stats_count_contours() {
        let p = compile(
            "fn id(x) { return x; }
             fn main() { print id(1); print id(2.0); }",
        )
        .unwrap();
        let r = crate::engine::analyze(&p, &crate::engine::AnalysisConfig::default());
        let s = ContourStats::from_result(&r);
        assert_eq!(s.analyzed_methods, 2);
        assert_eq!(s.method_contours, 3); // main + id(int) + id(float)
        assert!((s.contours_per_method - 1.5).abs() < 1e-9);
    }

    #[test]
    fn tag_sensitivity_never_reduces_contours() {
        let p = compile(
            "class C { field d; method init(a) { self.d = a; }
               method get() { return self.d; } }
             class P { field x; method init(a) { self.x = a; }
               method val() { return self.x; } }
             fn main() {
               var c1 = new C(new P(1));
               var c2 = new C(new P(2));
               print c1.get().val();
               print c2.get().val();
             }",
        )
        .unwrap();
        let (without, with) = contour_comparison(&p);
        assert!(with.method_contours >= without.method_contours);
        assert!(with.contours_per_method >= without.contours_per_method);
    }
}
