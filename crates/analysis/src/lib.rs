#![warn(missing_docs)]
//! Concert-style context-sensitive flow analysis (paper §3.2).
//!
//! This crate reproduces the analysis substrate the paper builds on — the
//! Illinois Concert compiler's global flow analysis (Plevyak & Chien) — in
//! the form object inlining needs:
//!
//! - **Method contours** ([`contour::MContour`]) are the unit of context
//!   sensitivity. A contour is created per distinct *argument abstraction*
//!   (concrete types **and field tags** of `self` and the arguments), which
//!   realizes the paper's demand-driven call-confluence splitting rule
//!   (§4.1): two calls share a contour only if their tags agree.
//! - **Object contours** ([`contour::OContour`]) abstract heap objects per
//!   (allocation site, creating method contour) — the paper's creator
//!   sensitivity, which disambiguates the two `List` objects in
//!   `do_rectangle` (Figure 9).
//! - **Field tags** ([`types::Tag`]) mark every value with the fields it may
//!   have been loaded from (`NoField` / `MakeTag` of §4.1), transitively
//!   through nested field accesses.
//!
//! The engine ([`engine::analyze`]) runs a whole-program abstract
//! interpretation to a fixpoint and returns an [`result::AnalysisResult`]
//! with per-contour frames, field summaries, a contour-level call graph, and
//! recorded field/array/identity uses — everything `oi-core` needs for use
//! specialization, assignment specialization and the transformation.
//!
//! # Examples
//!
//! ```
//! use oi_analysis::{analyze, AnalysisConfig};
//! let program = oi_ir::lower::compile(
//!     "class P { field v; method init(a) { self.v = a; } }
//!      fn main() { var p = new P(1); print p.v; }",
//! )?;
//! let result = analyze(&program, &AnalysisConfig::default());
//! assert!(result.mcontours.len() >= 2); // main + init
//! # Ok::<(), oi_support::Diagnostic>(())
//! ```

pub mod contour;
pub mod engine;
pub mod report;
pub mod result;
pub mod types;

pub use contour::{MCtxId, OCtxId};
pub use engine::{analyze, try_analyze, try_analyze_budgeted, AnalysisConfig};
pub use report::ContourStats;
pub use result::AnalysisResult;
pub use types::{AbstractVal, PathSeg, Tag, TagId, TypeElem};
