//! The whole-program abstract interpretation engine.

use crate::contour::{CtxKey, MContour, MCtxId, OContour, OCtxId};
use crate::result::AnalysisResult;
use crate::types::{AbstractVal, PathSeg, Tag, TagTable, TypeElem};
use oi_ir::{BinOp, Builtin, ConstValue, Instr, LayoutId, MethodId, Program, SiteId, Terminator};
use oi_support::trace::{self, kv};
use oi_support::{Budget, BudgetDimension, IdxVec, OiError, Symbol};
use std::collections::{BTreeSet, HashMap};

/// Rounds allowed to finish the fixpoint *after* the engine freezes its
/// contour set. With creation frozen the abstract domain is finite and
/// every transfer is a monotone join, so completion always converges;
/// exceeding this cap indicates a non-monotone transfer-function bug.
const COMPLETION_ROUNDS: usize = 10_000;

/// Knobs controlling analysis sensitivity.
///
/// `track_tags` toggles the object-inlining tag analysis of §4.1; Figure 16
/// compares contour counts with it on and off.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisConfig {
    /// Track field tags (required for object inlining).
    pub track_tags: bool,
    /// Maximum method contours per method before widening.
    pub max_contours_per_method: usize,
    /// Maximum object contours per allocation site before widening.
    pub max_ocontours_per_site: usize,
    /// Maximum tag-path length (`MakeTag` nesting).
    pub max_tag_path: usize,
    /// Maximum tags per abstract value before `tag_top`.
    pub max_tags_per_value: usize,
    /// Safety bound on fixpoint rounds.
    pub max_rounds: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            track_tags: true,
            max_contours_per_method: 24,
            max_ocontours_per_site: 12,
            max_tag_path: 3,
            max_tags_per_value: 8,
            max_rounds: 1_000,
        }
    }
}

impl AnalysisConfig {
    /// The baseline configuration: Concert-style type inference without the
    /// object-inlining tag sensitivity.
    pub fn without_tags() -> Self {
        Self {
            track_tags: false,
            ..Self::default()
        }
    }
}

/// Runs the analysis to a fixpoint.
///
/// Exhausting `config.max_rounds` no longer fails: the engine freezes its
/// contour set (globally widening every later contour request to the
/// catch-all) and completes the fixpoint over the now-finite domain, so the
/// result is sound but flagged [`AnalysisResult::degraded`].
///
/// # Panics
///
/// Panics only if the frozen fixpoint itself fails to complete, which
/// would indicate a non-monotone transfer-function bug, not a property of
/// the input program.
pub fn analyze(program: &Program, config: &AnalysisConfig) -> AnalysisResult {
    match try_analyze(program, config) {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

/// Runs the analysis to a fixpoint with an unlimited resource [`Budget`].
///
/// # Errors
///
/// Returns [`OiError::AnalysisDivergence`] only when the frozen fixpoint
/// fails to complete (a transfer-function bug); round exhaustion degrades
/// instead of failing — see [`try_analyze_budgeted`].
pub fn try_analyze(program: &Program, config: &AnalysisConfig) -> Result<AnalysisResult, OiError> {
    let budget = Budget::unlimited();
    try_analyze_budgeted(program, config, &budget)
}

/// Runs the analysis to a fixpoint under a resource [`Budget`].
///
/// The budget is charged per abstract-interpretation step, per fixpoint
/// round, and per contour creation; its deadline is polled alongside. When
/// any dimension runs out — or `config.max_rounds` passes — the engine
/// *freezes*: no new contours are created (every later request lands on
/// the per-method / per-site catch-all contour, the same widening the
/// per-method caps already trigger) and the fixpoint completes over the
/// frozen, finite contour set. The completed result over-approximates the
/// unbudgeted one, so every downstream consumer (decision rules, devirt,
/// the verifier) stays sound; it is flagged via
/// [`AnalysisResult::degraded`] with the exhausted dimension in
/// [`AnalysisResult::exhausted`] for provenance.
///
/// # Errors
///
/// Returns [`OiError::AnalysisDivergence`] only when the frozen fixpoint
/// fails to complete within an internal safety cap, which indicates a
/// non-monotone transfer-function bug rather than a hostile input.
pub fn try_analyze_budgeted(
    program: &Program,
    config: &AnalysisConfig,
    budget: &Budget,
) -> Result<AnalysisResult, OiError> {
    let mut engine = Engine::new(program, config, budget);
    engine.run()?;
    Ok(engine.into_result())
}

struct Engine<'p> {
    program: &'p Program,
    config: &'p AnalysisConfig,
    budget: &'p Budget,
    /// Once set, contour creation stops and every request widens; the
    /// fixpoint then completes over the frozen, finite domain.
    frozen: bool,
    /// The budget dimension (or round cap) that forced the freeze.
    exhausted_dim: Option<BudgetDimension>,
    tags: TagTable,
    mcontours: IdxVec<MCtxId, MContour>,
    mctx_memo: HashMap<(MethodId, CtxKey), MCtxId>,
    mctx_count: HashMap<MethodId, usize>,
    widened_mctx: HashMap<MethodId, MCtxId>,
    ocontours: IdxVec<OCtxId, OContour>,
    octx_memo: HashMap<(SiteId, Option<MCtxId>), OCtxId>,
    octx_count: HashMap<SiteId, usize>,
    widened_octx: HashMap<SiteId, OCtxId>,
    /// Synthetic contours for interior references formed by `MakeInterior*`
    /// in already-transformed programs (iterative inlining).
    interior_octx: HashMap<LayoutId, OCtxId>,
    globals: Vec<AbstractVal>,
    changed: bool,
    init_sym: Option<Symbol>,
}

impl<'p> Engine<'p> {
    fn new(program: &'p Program, config: &'p AnalysisConfig, budget: &'p Budget) -> Self {
        Self {
            program,
            config,
            budget,
            frozen: false,
            exhausted_dim: None,
            tags: TagTable::new(),
            mcontours: IdxVec::new(),
            mctx_memo: HashMap::new(),
            mctx_count: HashMap::new(),
            widened_mctx: HashMap::new(),
            ocontours: IdxVec::new(),
            octx_memo: HashMap::new(),
            octx_count: HashMap::new(),
            widened_octx: HashMap::new(),
            interior_octx: HashMap::new(),
            globals: vec![AbstractVal::bottom(); program.globals.len()],
            changed: false,
            init_sym: program.interner.get("init"),
        }
    }

    fn run(&mut self) -> Result<(), OiError> {
        // Seed the entry contour; `self` of a free function is nil.
        let entry = self.mcontour_for(self.program.entry, vec![AbstractVal::fresh(TypeElem::Nil)]);
        debug_assert_eq!(entry.index(), 0);

        let mut round = 0usize;
        let mut frozen_rounds = 0usize;
        loop {
            if !self.frozen {
                if round >= self.config.max_rounds {
                    self.freeze(BudgetDimension::Rounds);
                } else if !self.budget.charge_round() {
                    self.freeze(
                        self.budget
                            .exhausted_dimension()
                            .unwrap_or(BudgetDimension::Rounds),
                    );
                }
            }
            if self.frozen {
                frozen_rounds += 1;
                if frozen_rounds > COMPLETION_ROUNDS {
                    return Err(OiError::AnalysisDivergence { rounds: round });
                }
            }
            self.changed = false;
            let mut i = 0;
            // The contour list can grow while we iterate; newly created
            // contours are picked up in the same round.
            while i < self.mcontours.len() {
                self.transfer(MCtxId::new(i));
                i += 1;
            }
            trace::counter("analysis.rounds", 1);
            if trace::is_enabled() {
                trace::event(
                    "analysis.round",
                    vec![
                        kv("round", round),
                        kv("mcontours", self.mcontours.len()),
                        kv("ocontours", self.ocontours.len()),
                        kv("changed", self.changed),
                    ],
                );
            }
            if !self.changed {
                break;
            }
            round += 1;
        }
        Ok(())
    }

    /// Freezes the contour set: every later contour request widens to the
    /// catch-all, and the fixpoint completes over the frozen domain.
    fn freeze(&mut self, dim: BudgetDimension) {
        if self.frozen {
            return;
        }
        self.frozen = true;
        self.exhausted_dim = Some(dim);
        trace::counter("analysis.global_widenings", 1);
        if trace::is_enabled() {
            trace::event(
                "analysis.global_widen",
                vec![
                    kv("exhausted", dim.name()),
                    kv("mcontours", self.mcontours.len()),
                    kv("ocontours", self.ocontours.len()),
                ],
            );
        }
    }

    /// Charges one contour creation against the budget; on exhaustion,
    /// freezes and reports `false` so the caller widens instead.
    fn charge_contour_or_freeze(&mut self) -> bool {
        if self.budget.charge_contour() {
            return true;
        }
        self.freeze(
            self.budget
                .exhausted_dimension()
                .unwrap_or(BudgetDimension::Contours),
        );
        false
    }

    /// `Class.selector` display name for trace events.
    fn method_label(&self, method: MethodId) -> String {
        let m = &self.program.methods[method];
        let class = self
            .program
            .interner
            .resolve(self.program.classes[m.class].name);
        format!("{}.{}", class, self.program.interner.resolve(m.name))
    }

    /// Emits the contour-creation/split event for the `nth` method contour.
    fn trace_method_contour(&self, method: MethodId, nth: usize) {
        if !trace::is_enabled() {
            return;
        }
        let label = self.method_label(method);
        if nth > 1 {
            // A second contour for the same method means distinct call
            // abstractions reached it: a call-confluence split.
            trace::event(
                "contour.split",
                vec![
                    kv("kind", "method"),
                    kv("cause", "call-confluence"),
                    kv("method", label),
                    kv("contours", nth),
                ],
            );
        } else {
            trace::event(
                "contour.new",
                vec![kv("kind", "method"), kv("method", label)],
            );
        }
    }

    /// Emits the contour-creation/split event for the `nth` object contour
    /// of an allocation site (`nth == 0` marks the widened catch-all).
    fn trace_object_contour(&self, site: SiteId, class: Option<oi_ir::ClassId>, nth: usize) {
        if !trace::is_enabled() {
            return;
        }
        let class_name = match class {
            Some(c) => self
                .program
                .interner
                .resolve(self.program.classes[c].name)
                .to_string(),
            None => "<array>".to_string(),
        };
        if nth == 0 {
            trace::event(
                "contour.widen",
                vec![
                    kv("kind", "object"),
                    kv("site", site.index()),
                    kv("class", class_name),
                ],
            );
        } else if nth > 1 {
            trace::event(
                "contour.split",
                vec![
                    kv("kind", "object"),
                    kv("cause", "creator-sensitivity"),
                    kv("site", site.index()),
                    kv("class", class_name),
                    kv("contours", nth),
                ],
            );
        } else {
            trace::event(
                "contour.new",
                vec![
                    kv("kind", "object"),
                    kv("site", site.index()),
                    kv("class", class_name),
                ],
            );
        }
    }

    fn into_result(mut self) -> AnalysisResult {
        // Record the contour-level call graph with the final state.
        let mut call_edges: HashMap<(MCtxId, oi_ir::BlockId, usize), Vec<MCtxId>> = HashMap::new();
        for mctx in self.mcontours.ids().collect::<Vec<_>>() {
            let method = self.mcontours[mctx].method;
            let body = &self.program.methods[method];
            for (bb, idx, instr) in body.instrs() {
                let targets = self.callee_contours(mctx, instr);
                if !targets.is_empty() {
                    call_edges.insert((mctx, bb, idx), targets);
                }
            }
        }
        let mut contours_of_method: HashMap<MethodId, Vec<MCtxId>> = HashMap::new();
        for (id, c) in self.mcontours.iter_enumerated() {
            contours_of_method.entry(c.method).or_default().push(id);
        }
        AnalysisResult {
            track_tags: self.config.track_tags,
            degraded: self.frozen,
            exhausted: self.exhausted_dim,
            tags: self.tags,
            mcontours: self.mcontours,
            ocontours: self.ocontours,
            contours_of_method,
            call_edges,
            globals: self.globals,
        }
    }

    /// Callee contours of a call-shaped instruction, using the memo tables
    /// (no new contours are created; at fixpoint they all exist).
    fn callee_contours(&mut self, mctx: MCtxId, instr: &Instr) -> Vec<MCtxId> {
        match instr {
            Instr::Send {
                recv,
                selector,
                args,
                ..
            } => {
                let recv_val = self.mcontours[mctx].frame[recv.index()].clone();
                let mut out = BTreeSet::new();
                for oc in recv_val.object_contours().collect::<Vec<_>>() {
                    let Some(class) = self.ocontours[oc].class else {
                        continue;
                    };
                    let Some(target) = self.program.lookup_method(class, *selector) else {
                        continue;
                    };
                    let argv = self.call_key(mctx, Some(oc), &recv_val, args);
                    if let Some(id) = self.lookup_mcontour(target, &argv) {
                        out.insert(id);
                    }
                }
                out.into_iter().collect()
            }
            Instr::CallStatic {
                method, recv, args, ..
            } => {
                let recv_val = self.mcontours[mctx].frame[recv.index()].clone();
                let argv = self.call_key(mctx, None, &recv_val, args);
                self.lookup_mcontour(*method, &argv).into_iter().collect()
            }
            Instr::New {
                class, args, site, ..
            } => {
                let Some(init) = self
                    .init_sym
                    .and_then(|s| self.program.lookup_method(*class, s))
                else {
                    return vec![];
                };
                if self.program.methods[init].param_count as usize != args.len() {
                    return vec![]; // raw allocation form
                }
                let Some(&oc) = self
                    .octx_memo
                    .get(&(*site, Some(mctx)))
                    .or_else(|| self.widened_octx.get(site))
                else {
                    return vec![];
                };
                let self_val = AbstractVal::fresh(TypeElem::Obj(oc));
                let argv = self.call_key(mctx, None, &self_val, args);
                self.lookup_mcontour(init, &argv).into_iter().collect()
            }
            _ => vec![],
        }
    }

    fn lookup_mcontour(&self, method: MethodId, argv: &[AbstractVal]) -> Option<MCtxId> {
        let key: CtxKey = argv.iter().map(AbstractVal::key).collect();
        self.mctx_memo
            .get(&(method, key))
            .copied()
            .or_else(|| self.widened_mctx.get(&method).copied())
    }

    /// Assembles the (self, args) abstract vector for a call. When `recv_oc`
    /// is given, the receiver's types are restricted to that contour (each
    /// receiver contour gets its own callee contour — the framework's
    /// receiver splitting).
    fn call_key(
        &self,
        mctx: MCtxId,
        recv_oc: Option<OCtxId>,
        recv_val: &AbstractVal,
        args: &[oi_ir::Temp],
    ) -> Vec<AbstractVal> {
        let frame = &self.mcontours[mctx].frame;
        let self_val = match recv_oc {
            Some(oc) => AbstractVal {
                types: std::iter::once(TypeElem::Obj(oc)).collect(),
                tags: recv_val.tags.clone(),
                untagged: recv_val.untagged,
                tag_top: recv_val.tag_top,
            },
            None => recv_val.clone(),
        };
        let mut out = vec![self_val];
        out.extend(args.iter().map(|a| frame[a.index()].clone()));
        out
    }

    /// Finds or creates the contour of `method` for the given (self, args)
    /// abstraction, joining the abstraction into its frame.
    fn mcontour_for(&mut self, method: MethodId, argv: Vec<AbstractVal>) -> MCtxId {
        let key: CtxKey = argv.iter().map(AbstractVal::key).collect();
        let id = if let Some(&id) = self.mctx_memo.get(&(method, key.clone())) {
            id
        } else if let Some(&w) = self.widened_mctx.get(&method) {
            w
        } else {
            let count = *self.mctx_count.get(&method).unwrap_or(&0);
            let temp_count = self.program.methods[method].temp_count as usize;
            if !self.frozen
                && count < self.config.max_contours_per_method
                && self.charge_contour_or_freeze()
            {
                let nth = count + 1;
                self.mctx_count.insert(method, nth);
                let id = self
                    .mcontours
                    .push(MContour::new(method, key.clone(), temp_count, false));
                self.mctx_memo.insert((method, key), id);
                self.changed = true;
                trace::counter("analysis.mcontours", 1);
                if nth > 1 {
                    trace::counter("analysis.mcontour_splits", 1);
                }
                self.trace_method_contour(method, nth);
                id
            } else {
                // Widen: one catch-all contour absorbs everything else.
                let id = self
                    .mcontours
                    .push(MContour::new(method, vec![], temp_count, true));
                self.widened_mctx.insert(method, id);
                self.changed = true;
                trace::counter("analysis.mcontour_widenings", 1);
                if trace::is_enabled() {
                    trace::event(
                        "contour.widen",
                        vec![
                            kv("kind", "method"),
                            kv("method", self.method_label(method)),
                        ],
                    );
                }
                id
            }
        };
        // Bind the abstraction into the callee frame (idempotent on re-calls
        // with the same key, monotone for the widened contour).
        for (i, v) in argv.iter().enumerate() {
            if i < self.mcontours[id].frame.len() {
                let changed = self.mcontours[id].frame[i].join(v);
                self.changed |= changed;
            }
        }
        id
    }

    /// Finds or creates the object contour for an allocation.
    fn ocontour_for(
        &mut self,
        site: SiteId,
        class: Option<oi_ir::ClassId>,
        creator: MCtxId,
    ) -> OCtxId {
        if let Some(&id) = self.octx_memo.get(&(site, Some(creator))) {
            return id;
        }
        if let Some(&w) = self.widened_octx.get(&site) {
            return w;
        }
        let count = *self.octx_count.get(&site).unwrap_or(&0);
        if !self.frozen
            && count < self.config.max_ocontours_per_site
            && self.charge_contour_or_freeze()
        {
            let nth = count + 1;
            self.octx_count.insert(site, nth);
            let contour = match class {
                Some(c) => OContour::instance(site, c, Some(creator)),
                None => OContour::array(site, Some(creator)),
            };
            let id = self.ocontours.push(contour);
            self.octx_memo.insert((site, Some(creator)), id);
            self.changed = true;
            trace::counter("analysis.ocontours", 1);
            if nth > 1 {
                trace::counter("analysis.ocontour_splits", 1);
            }
            self.trace_object_contour(site, class, nth);
            id
        } else {
            let contour = match class {
                Some(c) => OContour::instance(site, c, None),
                None => OContour::array(site, None),
            };
            let id = self.ocontours.push(contour);
            self.widened_octx.insert(site, id);
            self.changed = true;
            trace::counter("analysis.ocontour_widenings", 1);
            self.trace_object_contour(site, class, 0);
            id
        }
    }

    /// Synthetic object contour standing for interior references of a
    /// layout (needed when re-analyzing an already-transformed program).
    fn interior_contour(&mut self, layout: LayoutId) -> OCtxId {
        if let Some(&id) = self.interior_octx.get(&layout) {
            return id;
        }
        let child = self.program.layouts[layout].child_class;
        // Synthetic site: interior children were never allocated.
        let id = self.ocontours.push(OContour::instance(
            SiteId::new(u32::MAX as usize),
            child,
            None,
        ));
        self.interior_octx.insert(layout, id);
        self.changed = true;
        id
    }

    // -- transfer -------------------------------------------------------------

    fn transfer(&mut self, mctx: MCtxId) {
        let method = self.mcontours[mctx].method;
        let body = &self.program.methods[method];
        for (bb, block) in body.blocks.iter_enumerated() {
            let _ = bb;
            for instr in &block.instrs {
                self.exec(mctx, instr);
            }
            if let Terminator::Return(t) = block.term {
                let v = self.mcontours[mctx].frame[t.index()].clone();
                let changed = self.mcontours[mctx].ret.join(&v);
                self.changed |= changed;
            }
        }
    }

    fn frame_val(&self, mctx: MCtxId, t: oi_ir::Temp) -> AbstractVal {
        self.mcontours[mctx].frame[t.index()].clone()
    }

    fn join_temp(&mut self, mctx: MCtxId, t: oi_ir::Temp, v: &AbstractVal) {
        let changed = self.mcontours[mctx].frame[t.index()].join(v);
        self.changed |= changed;
    }

    fn join_temp_fresh(&mut self, mctx: MCtxId, t: oi_ir::Temp, ty: TypeElem) {
        let changed = self.mcontours[mctx].frame[t.index()].join_fresh(ty);
        self.changed |= changed;
    }

    fn exec(&mut self, mctx: MCtxId, instr: &Instr) {
        // One budget step per abstract instruction; exhaustion (or a passed
        // deadline, polled inside) freezes the contour set mid-round. Joins
        // keep flowing afterwards, so the frozen fixpoint still completes.
        if !self.frozen && !self.budget.charge_step() {
            self.freeze(
                self.budget
                    .exhausted_dimension()
                    .unwrap_or(BudgetDimension::Steps),
            );
        }
        match instr {
            Instr::Const { dst, value } => {
                let ty = match value {
                    ConstValue::Int(_) => TypeElem::Int,
                    ConstValue::Float(_) => TypeElem::Float,
                    ConstValue::Bool(_) => TypeElem::Bool,
                    ConstValue::Nil => TypeElem::Nil,
                    ConstValue::Str(_) => TypeElem::Str,
                };
                self.join_temp_fresh(mctx, *dst, ty);
            }
            Instr::Move { dst, src } => {
                let v = self.frame_val(mctx, *src);
                self.join_temp(mctx, *dst, &v);
            }
            Instr::Unary { dst, op, src } => {
                let v = self.frame_val(mctx, *src);
                match op {
                    oi_ir::UnOp::Not => self.join_temp_fresh(mctx, *dst, TypeElem::Bool),
                    oi_ir::UnOp::Neg => {
                        if v.types.contains(&TypeElem::Int) {
                            self.join_temp_fresh(mctx, *dst, TypeElem::Int);
                        }
                        if v.types.contains(&TypeElem::Float) {
                            self.join_temp_fresh(mctx, *dst, TypeElem::Float);
                        }
                        if v.types.is_empty() {
                            // Nothing known yet; stay bottom.
                        }
                    }
                }
            }
            Instr::Binary { dst, op, lhs, rhs } => {
                if op.is_comparison() {
                    self.join_temp_fresh(mctx, *dst, TypeElem::Bool);
                } else {
                    let l = self.frame_val(mctx, *lhs);
                    let r = self.frame_val(mctx, *rhs);
                    let has_float =
                        l.types.contains(&TypeElem::Float) || r.types.contains(&TypeElem::Float);
                    let has_int =
                        l.types.contains(&TypeElem::Int) && r.types.contains(&TypeElem::Int);
                    if has_float {
                        self.join_temp_fresh(mctx, *dst, TypeElem::Float);
                    }
                    if has_int {
                        self.join_temp_fresh(mctx, *dst, TypeElem::Int);
                    }
                    if *op == BinOp::Rem || *op == BinOp::Div {
                        // Same typing as other arithmetic; nothing extra.
                    }
                }
            }
            Instr::New {
                dst,
                class,
                args,
                site,
            } => {
                let oc = self.ocontour_for(*site, Some(*class), mctx);
                self.join_temp_fresh(mctx, *dst, TypeElem::Obj(oc));
                if let Some(init) = self
                    .init_sym
                    .and_then(|s| self.program.lookup_method(*class, s))
                {
                    // The raw-allocation form (empty args, constructor
                    // invoked explicitly) has no implicit init call.
                    if self.program.methods[init].param_count as usize == args.len() {
                        let self_val = AbstractVal::fresh(TypeElem::Obj(oc));
                        let argv = self.call_key(mctx, None, &self_val, args);
                        self.mcontour_for(init, argv);
                    }
                }
            }
            Instr::NewArray { dst, site, .. } => {
                let oc = self.ocontour_for(*site, None, mctx);
                self.join_temp_fresh(mctx, *dst, TypeElem::Arr(oc));
            }
            Instr::NewArrayInline { dst, site, .. } => {
                let oc = self.ocontour_for(*site, None, mctx);
                self.join_temp_fresh(mctx, *dst, TypeElem::Arr(oc));
            }
            Instr::GetField { dst, obj, field } => {
                let objv = self.frame_val(mctx, *obj);
                let mut result = AbstractVal::bottom();
                for oc in objv.object_contours() {
                    if let Some(sum) = self.ocontours[oc].field(*field) {
                        // The loaded value's *types* come from the summary;
                        // its provenance is the field itself.
                        for &t in &sum.types {
                            result.types.insert(t);
                        }
                    }
                    if self.config.track_tags {
                        let tag = self.tags.intern(Tag {
                            origin: oc,
                            path: vec![PathSeg::Field(*field)],
                        });
                        result.tags.insert(tag);
                    }
                }
                if self.config.track_tags {
                    // MakeTag transitivity: loads through tagged bases get
                    // extended tags (bounded by max_tag_path).
                    for &t in &objv.tags {
                        let tag = self.tags.resolve(t).clone();
                        if tag.path.len() < self.config.max_tag_path {
                            let ext = self.tags.intern(tag.extend(PathSeg::Field(*field)));
                            result.tags.insert(ext);
                        } else {
                            result.tag_top = true;
                        }
                    }
                    if objv.tag_top {
                        result.tag_top = true;
                    }
                    if result.tags.len() > self.config.max_tags_per_value {
                        result.tags.clear();
                        result.tag_top = true;
                        trace::counter("analysis.tag_overflows", 1);
                        if trace::is_enabled() {
                            let name = self.program.interner.resolve(*field);
                            trace::event(
                                "tag.overflow",
                                vec![kv("cause", "field-confluence"), kv("field", name)],
                            );
                        }
                    }
                }
                self.join_temp(mctx, *dst, &result);
            }
            Instr::SetField { obj, field, src } => {
                let objv = self.frame_val(mctx, *obj);
                let srcv = self.frame_val(mctx, *src);
                for oc in objv.object_contours().collect::<Vec<_>>() {
                    let changed = self.ocontours[oc].field_mut(*field).join(&srcv);
                    self.changed |= changed;
                }
            }
            Instr::ArrayGet { dst, arr, .. } => {
                let arrv = self.frame_val(mctx, *arr);
                let mut result = AbstractVal::bottom();
                for oc in arrv.array_contours() {
                    for &t in &self.ocontours[oc].elem.types {
                        result.types.insert(t);
                    }
                    if self.config.track_tags {
                        let tag = self.tags.intern(Tag {
                            origin: oc,
                            path: vec![PathSeg::Elem],
                        });
                        result.tags.insert(tag);
                    }
                }
                if self.config.track_tags {
                    for &t in &arrv.tags {
                        let tag = self.tags.resolve(t).clone();
                        if tag.path.len() < self.config.max_tag_path {
                            let ext = self.tags.intern(tag.extend(PathSeg::Elem));
                            result.tags.insert(ext);
                        } else {
                            result.tag_top = true;
                        }
                    }
                    if arrv.tag_top {
                        result.tag_top = true;
                    }
                    if result.tags.len() > self.config.max_tags_per_value {
                        result.tags.clear();
                        result.tag_top = true;
                        trace::counter("analysis.tag_overflows", 1);
                        if trace::is_enabled() {
                            trace::event(
                                "tag.overflow",
                                vec![kv("cause", "field-confluence"), kv("at", "array-element")],
                            );
                        }
                    }
                }
                self.join_temp(mctx, *dst, &result);
            }
            Instr::ArraySet { arr, src, .. } => {
                let arrv = self.frame_val(mctx, *arr);
                let srcv = self.frame_val(mctx, *src);
                for oc in arrv.array_contours().collect::<Vec<_>>() {
                    let changed = self.ocontours[oc].elem.join(&srcv);
                    self.changed |= changed;
                }
            }
            Instr::GetGlobal { dst, global } => {
                // Values loaded from globals are NoField (globals are not
                // object fields) — this deliberately makes global-roundtrips
                // ambiguous at uses, which is what rejects the Silo event
                // list (§6.1).
                let mut v = self.globals[global.index()].clone();
                v.tags.clear();
                v.tag_top = false;
                v.untagged = true;
                self.join_temp(mctx, *dst, &v);
            }
            Instr::SetGlobal { global, src } => {
                let srcv = self.frame_val(mctx, *src);
                let changed = self.globals[global.index()].join(&srcv);
                self.changed |= changed;
            }
            Instr::Send {
                dst,
                recv,
                selector,
                args,
            } => {
                let recv_val = self.frame_val(mctx, *recv);
                for oc in recv_val.object_contours().collect::<Vec<_>>() {
                    let Some(class) = self.ocontours[oc].class else {
                        continue;
                    };
                    let Some(target) = self.program.lookup_method(class, *selector) else {
                        continue;
                    };
                    if self.program.methods[target].param_count as usize != args.len() {
                        continue; // would trap at runtime
                    }
                    let argv = self.call_key(mctx, Some(oc), &recv_val, args);
                    let callee = self.mcontour_for(target, argv);
                    let ret = self.mcontours[callee].ret.clone();
                    self.join_temp(mctx, *dst, &ret);
                }
            }
            Instr::CallStatic {
                dst,
                method,
                recv,
                args,
            } => {
                let recv_val = self.frame_val(mctx, *recv);
                let argv = self.call_key(mctx, None, &recv_val, args);
                let callee = self.mcontour_for(*method, argv);
                let ret = self.mcontours[callee].ret.clone();
                self.join_temp(mctx, *dst, &ret);
            }
            Instr::CallBuiltin { dst, builtin, .. } => {
                let ty = match builtin {
                    Builtin::Sqrt | Builtin::ToFloat => TypeElem::Float,
                    Builtin::Len | Builtin::ToInt => TypeElem::Int,
                };
                self.join_temp_fresh(mctx, *dst, ty);
            }
            Instr::MakeInterior { dst, layout, .. } => {
                let oc = self.interior_contour(*layout);
                self.join_temp_fresh(mctx, *dst, TypeElem::Obj(oc));
            }
            Instr::MakeInteriorElem { dst, layout, .. } => {
                let oc = self.interior_contour(*layout);
                self.join_temp_fresh(mctx, *dst, TypeElem::Obj(oc));
            }
            Instr::Print { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oi_ir::lower::compile;

    fn analyze_src(src: &str) -> (Program, AnalysisResult) {
        let p = compile(src).unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        (p, r)
    }

    #[test]
    fn infers_concrete_types_through_calls() {
        let (p, r) = analyze_src(
            "fn id(x) { return x; }
             fn main() { print id(1); print id(2.0); }",
        );
        let id = p.method_by_name("$Main", "id").unwrap();
        // Two argument abstractions (int vs float) → two contours.
        assert_eq!(r.contours_of_method[&id].len(), 2);
        for &c in &r.contours_of_method[&id] {
            // Each contour is monomorphic in its argument.
            let v = &r.mcontours[c].frame[1];
            assert_eq!(v.types.len(), 1, "contour should be monomorphic: {v:?}");
        }
    }

    #[test]
    fn object_contours_per_site() {
        let (p, r) = analyze_src(
            "class P { field v; method init(a) { self.v = a; } }
             fn main() { var a = new P(1); var b = new P(2.0); print a.v; print b.v; }",
        );
        let _ = p;
        // Two allocation sites → two object contours.
        let instance_contours = r.ocontours.iter().filter(|o| !o.is_array()).count();
        assert_eq!(instance_contours, 2);
        // Each has a precise field type.
        for o in r.ocontours.iter() {
            if let Some(v) = o.fields.values().next() {
                assert_eq!(v.types.len(), 1);
            }
        }
    }

    #[test]
    fn field_loads_carry_tags() {
        let (p, r) = analyze_src(
            "class R { field ll; method init(a) { self.ll = a; } }
             class P { field x; method init(a) { self.x = a; } }
             fn main() { var r = new R(new P(1)); print r.ll.x; }",
        );
        let main = p.entry;
        let c = r.contours_of_method[&main][0];
        // Some temp in main carries a direct `ll` tag.
        let ll = p.interner.get("ll").unwrap();
        let has_ll_tag = r.mcontours[c].frame.iter().any(|v| {
            v.tags.iter().any(
                |&t| matches!(r.tags.resolve(t).path.as_slice(), [PathSeg::Field(f)] if *f == ll),
            )
        });
        assert!(has_ll_tag, "a value loaded from `ll` must carry its tag");
    }

    #[test]
    fn tags_disabled_in_baseline_config() {
        let p = compile(
            "class R { field ll; method init(a) { self.ll = a; } }
             class P { field x; method init(a) { self.x = a; } }
             fn main() { var r = new R(new P(1)); print r.ll.x; }",
        )
        .unwrap();
        let r = analyze(&p, &AnalysisConfig::without_tags());
        assert!(r.tags.is_empty());
    }

    #[test]
    fn polymorphic_container_splits_by_creator() {
        // The paper's do_rectangle situation: one call with Point, one with
        // Point3D. Creator sensitivity must keep the two Rectangle contours'
        // field types distinct.
        let (p, r) = analyze_src(
            "class Point { field x; method init(a) { self.x = a; } }
             class Point3D : Point { field z; method init3(a, b) { self.x = a; self.z = b; } }
             class Rect { field ll; method init(a) { self.ll = a; } }
             fn mk(p) { return new Rect(p); }
             fn main() {
               var p1 = new Point(1.0);
               var p3 = new Point3D(2.0);
               var r1 = mk(p1);
               var r2 = mk(p3);
               print r1.ll.x; print r2.ll.x;
             }",
        );
        let rect = p.class_by_name("Rect").unwrap();
        let rect_contours: Vec<_> = r
            .ocontours
            .iter()
            .filter(|o| o.class == Some(rect))
            .collect();
        assert_eq!(
            rect_contours.len(),
            2,
            "mk's two contours give two Rect contours"
        );
        let ll = p.interner.get("ll").unwrap();
        for o in rect_contours {
            let v = o.field(ll).unwrap();
            assert_eq!(
                v.types.len(),
                1,
                "each Rect contour has a precise ll type: {v:?}"
            );
        }
    }

    #[test]
    fn global_roundtrip_strips_tags() {
        let (p, r) = analyze_src(
            "global G;
             class C { field d; method init(a) { self.d = a; } }
             fn main() { var c = new C(1); G = c.d; print G; }",
        );
        let main = p.entry;
        let c = r.contours_of_method[&main][0];
        // The temp loaded from G must be untagged.
        let body = &p.methods[main];
        for (_, _, instr) in body.instrs() {
            if let Instr::GetGlobal { dst, .. } = instr {
                let v = &r.mcontours[c].frame[dst.index()];
                assert!(v.untagged);
                assert!(v.tags.is_empty());
            }
        }
    }

    #[test]
    fn recursion_converges() {
        let (_, r) = analyze_src(
            "class Cons { field head; field tail;
               method init(h, t) { self.head = h; self.tail = t; }
             }
             fn build(n) { if (n == 0) { return nil; } return new Cons(n, build(n - 1)); }
             fn main() { var l = build(10); print 1; }",
        );
        assert!(r.mcontours.len() < 50);
    }

    #[test]
    fn widening_caps_contours() {
        // 30 differently-typed call patterns can't exceed the cap.
        let mut src = String::from("fn id(x) { return x; } fn main() {\n");
        for i in 0..30 {
            // alternate arg types via fresh classes
            src.push_str(&format!("print id({i});\n"));
        }
        src.push('}');
        let p = compile(&src).unwrap();
        let cfg = AnalysisConfig {
            max_contours_per_method: 4,
            ..Default::default()
        };
        let r = analyze(&p, &cfg);
        let id = p.method_by_name("$Main", "id").unwrap();
        // All int calls share one contour anyway, but the cap must hold in
        // general.
        assert!(r.contours_of_method[&id].len() <= 5);
    }

    #[test]
    fn exhausted_round_cap_degrades_instead_of_failing() {
        let p = compile("fn main() { print 1; }").unwrap();
        let cfg = AnalysisConfig {
            max_rounds: 0,
            ..Default::default()
        };
        let r = try_analyze(&p, &cfg).expect("round exhaustion freezes, not fails");
        assert!(r.degraded);
        assert_eq!(r.exhausted, Some(BudgetDimension::Rounds));
        // A sane budget converges cleanly and matches the panicking wrapper.
        let ok = try_analyze(&p, &AnalysisConfig::default()).unwrap();
        assert!(!ok.degraded);
        assert_eq!(ok.exhausted, None);
        assert_eq!(
            ok.mcontours.len(),
            analyze(&p, &Default::default()).mcontours.len()
        );
    }

    const POLY_SRC: &str = "class A { method m() { return 1; } }
         class B { method m() { return 2.0; } }
         fn id(x) { return x; }
         fn main() {
           var a = new A(); var b = new B();
           print id(a).m(); print id(b).m();
           print id(1); print id(2.0);
         }";

    /// A degraded result must still over-approximate the precise one: every
    /// call target the precise analysis sees must survive global widening.
    fn assert_overapproximates(p: &Program, coarse: &AnalysisResult) {
        let precise = analyze(p, &AnalysisConfig::default());
        let precise_targets: BTreeSet<MethodId> = precise
            .call_edges
            .values()
            .flatten()
            .map(|&c| precise.mcontours[c].method)
            .collect();
        let coarse_targets: BTreeSet<MethodId> = coarse
            .call_edges
            .values()
            .flatten()
            .map(|&c| coarse.mcontours[c].method)
            .collect();
        assert!(
            precise_targets.is_subset(&coarse_targets),
            "widened analysis lost call targets: {precise_targets:?} vs {coarse_targets:?}"
        );
    }

    #[test]
    fn zero_contour_budget_widens_everything_soundly() {
        let p = compile(POLY_SRC).unwrap();
        let budget = Budget::unlimited().with_contours(0);
        let r = try_analyze_budgeted(&p, &AnalysisConfig::default(), &budget).unwrap();
        assert!(r.degraded);
        assert_eq!(r.exhausted, Some(BudgetDimension::Contours));
        // Every method contour is the widened catch-all; at most one per
        // method.
        assert!(r.mcontours.iter().all(|c| c.widened));
        let methods: Vec<_> = r.mcontours.iter().map(|c| c.method).collect();
        let distinct: BTreeSet<_> = methods.iter().copied().collect();
        assert_eq!(methods.len(), distinct.len());
        assert_overapproximates(&p, &r);
    }

    #[test]
    fn tiny_step_budget_degrades_but_completes() {
        let p = compile(POLY_SRC).unwrap();
        let budget = Budget::unlimited().with_steps(5);
        let r = try_analyze_budgeted(&p, &AnalysisConfig::default(), &budget).unwrap();
        assert!(r.degraded);
        assert_eq!(r.exhausted, Some(BudgetDimension::Steps));
        assert_overapproximates(&p, &r);
    }

    #[test]
    fn expired_deadline_degrades_but_completes() {
        let p = compile(POLY_SRC).unwrap();
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        let r = try_analyze_budgeted(&p, &AnalysisConfig::default(), &budget).unwrap();
        assert!(r.degraded);
        assert_eq!(r.exhausted, Some(BudgetDimension::Deadline));
        assert_overapproximates(&p, &r);
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_analysis() {
        let p = compile(POLY_SRC).unwrap();
        let budget = Budget::unlimited();
        let r = try_analyze_budgeted(&p, &AnalysisConfig::default(), &budget).unwrap();
        let plain = analyze(&p, &AnalysisConfig::default());
        assert!(!r.degraded);
        assert_eq!(r.mcontours.len(), plain.mcontours.len());
        assert_eq!(r.ocontours.len(), plain.ocontours.len());
    }

    #[test]
    fn call_edges_are_recorded() {
        let (p, r) = analyze_src(
            "class A { method m() { return 1; } }
             fn main() { var a = new A(); print a.m(); }",
        );
        let main_contour = r.contours_of_method[&p.entry][0];
        let has_send_edge = r
            .call_edges
            .iter()
            .any(|((c, _, _), targets)| *c == main_contour && !targets.is_empty());
        assert!(has_send_edge);
    }
}
