//! Property tests for the cache simulator — the component whose behavior
//! the Figure 17 locality claims rest on.

use oi_vm::{CacheConfig, CacheSim};
use proptest::prelude::*;

fn config() -> impl Strategy<Value = CacheConfig> {
    (1usize..=4, 3u32..=7, 1usize..=4).prop_map(|(sets_log, line_log, ways)| {
        let line_bytes = 1usize << line_log;
        let sets = 1usize << sets_log;
        CacheConfig { size_bytes: sets * ways * line_bytes, line_bytes, ways }
    })
}

proptest! {
    #[test]
    fn accesses_are_conserved(cfg in config(), addrs in proptest::collection::vec(0u64..65536, 0..512)) {
        let mut c = CacheSim::new(cfg);
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
        let rate = c.hit_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn immediate_reaccess_hits(cfg in config(), addr in 0u64..65536) {
        let mut c = CacheSim::new(cfg);
        c.access(addr);
        prop_assert!(c.access(addr), "just-touched line must be resident");
        // Any address on the same line also hits.
        let line = cfg.line_bytes as u64;
        prop_assert!(c.access(addr / line * line));
    }

    #[test]
    fn simulation_is_deterministic(cfg in config(), addrs in proptest::collection::vec(0u64..65536, 0..256)) {
        let mut a = CacheSim::new(cfg);
        let mut b = CacheSim::new(cfg);
        for &x in &addrs {
            prop_assert_eq!(a.access(x), b.access(x));
        }
        prop_assert_eq!(a.hits(), b.hits());
        prop_assert_eq!(a.misses(), b.misses());
    }

    #[test]
    fn working_set_within_one_set_never_evicts(cfg in config(), reps in 1usize..8) {
        // Touch exactly `ways` distinct lines mapping to the same set,
        // then loop over them: after the cold pass everything hits.
        let mut c = CacheSim::new(cfg);
        let stride = (cfg.sets() * cfg.line_bytes) as u64; // same set, new tag
        let lines: Vec<u64> = (0..cfg.ways as u64).map(|i| i * stride).collect();
        for &l in &lines {
            c.access(l);
        }
        let cold_misses = c.misses();
        prop_assert_eq!(cold_misses, cfg.ways as u64);
        for _ in 0..reps {
            for &l in &lines {
                prop_assert!(c.access(l), "resident working set must hit");
            }
        }
    }

    #[test]
    fn thrashing_set_always_misses(cfg in config(), rounds in 1usize..6) {
        // ways+1 lines in one set under LRU: every access misses.
        let mut c = CacheSim::new(cfg);
        let stride = (cfg.sets() * cfg.line_bytes) as u64;
        let lines: Vec<u64> = (0..=cfg.ways as u64).map(|i| i * stride).collect();
        for _ in 0..rounds {
            for &l in &lines {
                prop_assert!(!c.access(l), "LRU thrash pattern must miss");
            }
        }
    }
}
