//! Property tests for the cache simulator — the component whose behavior
//! the Figure 17 locality claims rest on.
//!
//! Random configurations and access streams come from the in-repo seeded
//! PRNG, so every failure reproduces from its printed seed.

use oi_support::rng::XorShift64;
use oi_vm::{CacheConfig, CacheSim};

fn config(rng: &mut XorShift64) -> CacheConfig {
    let sets = 1usize << (1 + rng.below(4));
    let line_bytes = 1usize << (3 + rng.below(5));
    let ways = 1 + rng.below(4);
    CacheConfig {
        size_bytes: sets * ways * line_bytes,
        line_bytes,
        ways,
    }
}

fn addrs(rng: &mut XorShift64, max: usize) -> Vec<u64> {
    (0..rng.below(max))
        .map(|_| rng.next_u64() % 65536)
        .collect()
}

#[test]
fn accesses_are_conserved() {
    for seed in 0..64u64 {
        let mut rng = XorShift64::new(seed);
        let cfg = config(&mut rng);
        let addrs = addrs(&mut rng, 512);
        let mut c = CacheSim::new(cfg);
        for &a in &addrs {
            c.access(a);
        }
        assert_eq!(c.hits() + c.misses(), addrs.len() as u64, "seed {seed}");
        let rate = c.hit_rate();
        assert!((0.0..=1.0).contains(&rate), "seed {seed}");
    }
}

#[test]
fn immediate_reaccess_hits() {
    for seed in 0..64u64 {
        let mut rng = XorShift64::new(seed);
        let cfg = config(&mut rng);
        let addr = rng.next_u64() % 65536;
        let mut c = CacheSim::new(cfg);
        c.access(addr);
        assert!(
            c.access(addr),
            "seed {seed}: just-touched line must be resident"
        );
        // Any address on the same line also hits.
        let line = cfg.line_bytes as u64;
        assert!(c.access(addr / line * line), "seed {seed}");
    }
}

#[test]
fn simulation_is_deterministic() {
    for seed in 0..64u64 {
        let mut rng = XorShift64::new(seed);
        let cfg = config(&mut rng);
        let addrs = addrs(&mut rng, 256);
        let mut a = CacheSim::new(cfg);
        let mut b = CacheSim::new(cfg);
        for &x in &addrs {
            assert_eq!(a.access(x), b.access(x), "seed {seed}");
        }
        assert_eq!(a.hits(), b.hits(), "seed {seed}");
        assert_eq!(a.misses(), b.misses(), "seed {seed}");
    }
}

#[test]
fn working_set_within_one_set_never_evicts() {
    for seed in 0..64u64 {
        let mut rng = XorShift64::new(seed);
        let cfg = config(&mut rng);
        let reps = 1 + rng.below(7);
        // Touch exactly `ways` distinct lines mapping to the same set,
        // then loop over them: after the cold pass everything hits.
        let mut c = CacheSim::new(cfg);
        let stride = (cfg.sets() * cfg.line_bytes) as u64; // same set, new tag
        let lines: Vec<u64> = (0..cfg.ways as u64).map(|i| i * stride).collect();
        for &l in &lines {
            c.access(l);
        }
        let cold_misses = c.misses();
        assert_eq!(cold_misses, cfg.ways as u64, "seed {seed}");
        for _ in 0..reps {
            for &l in &lines {
                assert!(c.access(l), "seed {seed}: resident working set must hit");
            }
        }
    }
}

#[test]
fn thrashing_set_always_misses() {
    for seed in 0..64u64 {
        let mut rng = XorShift64::new(seed);
        let cfg = config(&mut rng);
        let rounds = 1 + rng.below(5);
        // ways+1 lines in one set under LRU: every access misses.
        let mut c = CacheSim::new(cfg);
        let stride = (cfg.sets() * cfg.line_bytes) as u64;
        let lines: Vec<u64> = (0..=cfg.ways as u64).map(|i| i * stride).collect();
        for _ in 0..rounds {
            for &l in &lines {
                assert!(!c.access(l), "seed {seed}: LRU thrash pattern must miss");
            }
        }
    }
}
