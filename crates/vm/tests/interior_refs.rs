//! Direct tests of the interior-reference machinery: hand-built programs
//! with explicit layouts exercising object-in-object composition,
//! interleaved and parallel array addressing, and error paths — without
//! going through the optimizer.

use oi_ir::builder::FunctionBuilder;
use oi_ir::{
    ArrayLayoutKind, Class, ClassId, ConstValue, Field, InlineLayout, Instr, Method, Program,
    Terminator,
};
use oi_support::{IdxVec, Interner};
use oi_vm::{run, VmConfig, VmError};
use std::collections::HashMap;

/// Builds a program skeleton: `$Main` plus a `Flat` class whose layout is
/// `[a, b, c, d]` (standing for a container with two inlined two-field
/// children), plus layouts describing the children.
struct Fixture {
    interner: Interner,
    classes: IdxVec<ClassId, Class>,
    fields: IdxVec<oi_ir::FieldId, Field>,
    layouts: IdxVec<oi_ir::LayoutId, InlineLayout>,
}

impl Fixture {
    fn new() -> Self {
        let mut interner = Interner::new();
        let main_name = interner.intern("$Main");
        let mut classes = IdxVec::new();
        classes.push(Class {
            name: main_name,
            parent: None,
            own_fields: vec![],
            methods: HashMap::new(),
        });
        Self {
            interner,
            classes,
            fields: IdxVec::new(),
            layouts: IdxVec::new(),
        }
    }

    fn add_class(&mut self, name: &str, field_names: &[&str]) -> ClassId {
        let cname = self.interner.intern(name);
        let id = self.classes.push(Class {
            name: cname,
            parent: None,
            own_fields: vec![],
            methods: HashMap::new(),
        });
        for f in field_names {
            let fname = self.interner.intern(f);
            let fid = self.fields.push(Field {
                name: fname,
                owner: id,
                annotations: vec![],
            });
            self.classes[id].own_fields.push(fid);
        }
        id
    }

    fn finish(self, entry_body: Method, site_count: u32) -> Program {
        let mut methods = IdxVec::new();
        let entry = methods.push(entry_body);
        Program {
            interner: self.interner,
            classes: self.classes,
            methods,
            fields: self.fields,
            globals: IdxVec::new(),
            layouts: self.layouts,
            site_count,
            entry,
        }
    }
}

#[test]
fn object_layout_reads_and_writes_container_slots() {
    let mut fx = Fixture::new();
    // Container with 3 raw slots; child Pt(x, y) mapped to slots [0, 2]
    // (the paper's replace-first/append-rest shape).
    let container = fx.add_class("Container", &["s0", "s1", "s2"]);
    let pt = fx.add_class("Pt", &["x", "y"]);
    let x = fx.interner.intern("x");
    let y = fx.interner.intern("y");
    let layout = fx.layouts.push(InlineLayout {
        child_class: pt,
        child_fields: vec![x, y],
        slots: vec![0, 2],
        array_kind: None,
    });

    let mname = fx.interner.intern("main");
    let mut b = FunctionBuilder::new(mname, ClassId::new(0), 0);
    let obj = b.new_temp();
    b.push(Instr::New {
        dst: obj,
        class: container,
        args: vec![],
        site: oi_ir::SiteId::new(0),
    });
    let interior = b.new_temp();
    b.push(Instr::MakeInterior {
        dst: interior,
        obj,
        layout,
    });
    let v1 = b.push_const(ConstValue::Int(41));
    b.push(Instr::SetField {
        obj: interior,
        field: x,
        src: v1,
    });
    let v2 = b.push_const(ConstValue::Int(1));
    b.push(Instr::SetField {
        obj: interior,
        field: y,
        src: v2,
    });
    let rx = b.new_temp();
    b.push(Instr::GetField {
        dst: rx,
        obj: interior,
        field: x,
    });
    let ry = b.new_temp();
    b.push(Instr::GetField {
        dst: ry,
        obj: interior,
        field: y,
    });
    let sum = b.new_temp();
    b.push(Instr::Binary {
        dst: sum,
        op: oi_ir::BinOp::Add,
        lhs: rx,
        rhs: ry,
    });
    b.push(Instr::Print { src: sum });
    // Also read slot s2 through the container's own field name: it must be
    // the child's y.
    let s2 = fx.interner.intern("s2");
    let raw = b.new_temp();
    b.push(Instr::GetField {
        dst: raw,
        obj,
        field: s2,
    });
    b.push(Instr::Print { src: raw });
    let r = b.push_const(ConstValue::Nil);
    b.terminate(Terminator::Return(r));

    let program = fx.finish(b.finish(), 1);
    oi_ir::verify::verify(&program).unwrap();
    let out = run(&program, &VmConfig::default()).unwrap();
    assert_eq!(out.output, "42\n1\n");
}

#[test]
fn interleaved_and_parallel_arrays_address_identically() {
    for kind in [ArrayLayoutKind::Interleaved, ArrayLayoutKind::Parallel] {
        let mut fx = Fixture::new();
        let pt = fx.add_class("Pt", &["x", "y"]);
        let x = fx.interner.intern("x");
        let y = fx.interner.intern("y");
        let layout = fx.layouts.push(InlineLayout {
            child_class: pt,
            child_fields: vec![x, y],
            slots: vec![],
            array_kind: Some(kind),
        });

        let mname = fx.interner.intern("main");
        let mut b = FunctionBuilder::new(mname, ClassId::new(0), 0);
        let len = b.push_const(ConstValue::Int(4));
        let arr = b.new_temp();
        b.push(Instr::NewArrayInline {
            dst: arr,
            len,
            layout,
            site: oi_ir::SiteId::new(0),
        });
        // Write (i, 10i) into each element, then sum x + y over all.
        for i in 0..4 {
            let idx = b.push_const(ConstValue::Int(i));
            let elem = b.new_temp();
            b.push(Instr::MakeInteriorElem {
                dst: elem,
                arr,
                idx,
                layout,
            });
            let vx = b.push_const(ConstValue::Int(i));
            b.push(Instr::SetField {
                obj: elem,
                field: x,
                src: vx,
            });
            let vy = b.push_const(ConstValue::Int(10 * i));
            b.push(Instr::SetField {
                obj: elem,
                field: y,
                src: vy,
            });
        }
        let mut acc = b.push_const(ConstValue::Int(0));
        for i in 0..4 {
            let idx = b.push_const(ConstValue::Int(i));
            let elem = b.new_temp();
            b.push(Instr::MakeInteriorElem {
                dst: elem,
                arr,
                idx,
                layout,
            });
            let vx = b.new_temp();
            b.push(Instr::GetField {
                dst: vx,
                obj: elem,
                field: x,
            });
            let vy = b.new_temp();
            b.push(Instr::GetField {
                dst: vy,
                obj: elem,
                field: y,
            });
            let t = b.new_temp();
            b.push(Instr::Binary {
                dst: t,
                op: oi_ir::BinOp::Add,
                lhs: vx,
                rhs: vy,
            });
            let t2 = b.new_temp();
            b.push(Instr::Binary {
                dst: t2,
                op: oi_ir::BinOp::Add,
                lhs: acc,
                rhs: t,
            });
            acc = t2;
        }
        b.push(Instr::Print { src: acc });
        let r = b.push_const(ConstValue::Nil);
        b.terminate(Terminator::Return(r));

        let program = fx.finish(b.finish(), 1);
        oi_ir::verify::verify(&program).unwrap();
        let out = run(&program, &VmConfig::default()).unwrap();
        // sum of i + 10i for i in 0..4 = (0+1+2+3) * 11 = 66
        assert_eq!(out.output, "66\n", "{kind:?}");
    }
}

#[test]
fn interior_element_index_is_bounds_checked() {
    let mut fx = Fixture::new();
    let pt = fx.add_class("Pt", &["x"]);
    let x = fx.interner.intern("x");
    let layout = fx.layouts.push(InlineLayout {
        child_class: pt,
        child_fields: vec![x],
        slots: vec![],
        array_kind: Some(ArrayLayoutKind::Interleaved),
    });
    let mname = fx.interner.intern("main");
    let mut b = FunctionBuilder::new(mname, ClassId::new(0), 0);
    let len = b.push_const(ConstValue::Int(2));
    let arr = b.new_temp();
    b.push(Instr::NewArrayInline {
        dst: arr,
        len,
        layout,
        site: oi_ir::SiteId::new(0),
    });
    let idx = b.push_const(ConstValue::Int(5));
    let elem = b.new_temp();
    b.push(Instr::MakeInteriorElem {
        dst: elem,
        arr,
        idx,
        layout,
    });
    let r = b.push_const(ConstValue::Nil);
    b.terminate(Terminator::Return(r));

    let program = fx.finish(b.finish(), 1);
    let err = run(&program, &VmConfig::default()).unwrap_err();
    assert_eq!(err, VmError::IndexOutOfBounds { index: 5, len: 2 });
}

#[test]
fn make_interior_on_nil_is_a_nil_dereference() {
    let mut fx = Fixture::new();
    let pt = fx.add_class("Pt", &["x"]);
    let x = fx.interner.intern("x");
    let layout = fx.layouts.push(InlineLayout {
        child_class: pt,
        child_fields: vec![x],
        slots: vec![0],
        array_kind: None,
    });
    let mname = fx.interner.intern("main");
    let mut b = FunctionBuilder::new(mname, ClassId::new(0), 0);
    let nil = b.push_const(ConstValue::Nil);
    let interior = b.new_temp();
    b.push(Instr::MakeInterior {
        dst: interior,
        obj: nil,
        layout,
    });
    let r = b.push_const(ConstValue::Nil);
    b.terminate(Terminator::Return(r));

    let program = fx.finish(b.finish(), 1);
    let err = run(&program, &VmConfig::default()).unwrap_err();
    assert!(matches!(err, VmError::NilDereference { .. }));
}

#[test]
fn composed_interiors_reach_the_outermost_container() {
    // Array of "Rect" state where each element's layout slots [0..4] and
    // a nested "Pt" object layout over Rect mapping [x, y] -> rect slots
    // [0, 3] (non-contiguous). Composition must address the array.
    let mut fx = Fixture::new();
    let rect = fx.add_class("Rect", &["r0", "r1", "r2", "r3"]);
    let pt = fx.add_class("Pt", &["x", "y"]);
    let x = fx.interner.intern("x");
    let y = fx.interner.intern("y");
    let arr_layout = fx.layouts.push(InlineLayout {
        child_class: rect,
        child_fields: vec![
            fx.interner.intern("r0"),
            fx.interner.intern("r1"),
            fx.interner.intern("r2"),
            fx.interner.intern("r3"),
        ],
        slots: vec![],
        array_kind: Some(ArrayLayoutKind::Parallel),
    });
    let pt_layout = fx.layouts.push(InlineLayout {
        child_class: pt,
        child_fields: vec![x, y],
        slots: vec![0, 3],
        array_kind: None,
    });

    let mname = fx.interner.intern("main");
    let mut b = FunctionBuilder::new(mname, ClassId::new(0), 0);
    let len = b.push_const(ConstValue::Int(3));
    let arr = b.new_temp();
    b.push(Instr::NewArrayInline {
        dst: arr,
        len,
        layout: arr_layout,
        site: oi_ir::SiteId::new(0),
    });
    // elem 2's nested point: write through the composed interior, read back
    // through the raw element fields.
    let idx = b.push_const(ConstValue::Int(2));
    let elem = b.new_temp();
    b.push(Instr::MakeInteriorElem {
        dst: elem,
        arr,
        idx,
        layout: arr_layout,
    });
    let nested = b.new_temp();
    b.push(Instr::MakeInterior {
        dst: nested,
        obj: elem,
        layout: pt_layout,
    });
    let vx = b.push_const(ConstValue::Int(7));
    b.push(Instr::SetField {
        obj: nested,
        field: x,
        src: vx,
    });
    let vy = b.push_const(ConstValue::Int(9));
    b.push(Instr::SetField {
        obj: nested,
        field: y,
        src: vy,
    });
    // Read back via the element's own field names r0 and r3.
    let r0 = fx.interner.intern("r0");
    let r3 = fx.interner.intern("r3");
    let a0 = b.new_temp();
    b.push(Instr::GetField {
        dst: a0,
        obj: elem,
        field: r0,
    });
    let a3 = b.new_temp();
    b.push(Instr::GetField {
        dst: a3,
        obj: elem,
        field: r3,
    });
    b.push(Instr::Print { src: a0 });
    b.push(Instr::Print { src: a3 });
    let r = b.push_const(ConstValue::Nil);
    b.terminate(Terminator::Return(r));

    let program = fx.finish(b.finish(), 1);
    oi_ir::verify::verify(&program).unwrap();
    let out = run(&program, &VmConfig::default()).unwrap();
    assert_eq!(out.output, "7\n9\n");
}
