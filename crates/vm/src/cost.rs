//! The cycle cost model.
//!
//! Costs are stated in abstract cycles, loosely calibrated so that the
//! relative magnitudes match the overheads the paper targets: dynamic
//! dispatch ≫ static call, heap access ≫ arithmetic, allocation is
//! expensive per object *and* per word, and forming an interior reference is
//! address arithmetic (cheapest of all).

/// Per-operation cycle costs charged by the interpreter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Integer/boolean ALU operation.
    pub arith: u64,
    /// Floating-point operation.
    pub float_arith: u64,
    /// `sqrt` intrinsic.
    pub sqrt: u64,
    /// Register-to-register move / constant materialization. Defaults to
    /// zero: the IR is not register-allocated, so moves that a real
    /// compiler's register allocator coalesces away would otherwise be
    /// charged to both configurations and dilute every ratio.
    pub mov: u64,
    /// Heap read issued to the memory system (before cache penalty).
    pub heap_read: u64,
    /// Heap write issued to the memory system (before cache penalty).
    pub heap_write: u64,
    /// Additional penalty on a data-cache miss.
    pub cache_miss: u64,
    /// Fixed per-allocation cost (header setup, allocator bump).
    pub alloc_base: u64,
    /// Additional cost per allocated word (zeroing).
    pub alloc_word: u64,
    /// Dynamic dispatch overhead (class load, table walk, indirect call).
    pub dyn_dispatch: u64,
    /// Statically bound call overhead.
    pub static_call: u64,
    /// Per-argument cost of any call.
    pub call_arg: u64,
    /// Conditional or unconditional branch.
    pub branch: u64,
    /// Interior-reference formation (address arithmetic, "lea").
    pub lea: u64,
    /// Cost of a `print` (formatting excluded from the model's interest).
    pub print: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            arith: 1,
            float_arith: 2,
            sqrt: 12,
            mov: 0,
            heap_read: 3,
            heap_write: 3,
            cache_miss: 25,
            alloc_base: 30,
            alloc_word: 2,
            dyn_dispatch: 8,
            static_call: 2,
            call_arg: 1,
            branch: 1,
            lea: 1,
            print: 4,
        }
    }
}

impl CostModel {
    /// A model with all costs zero except heap traffic — useful for isolating
    /// memory behavior in ablations.
    pub fn memory_only() -> Self {
        Self {
            arith: 0,
            float_arith: 0,
            sqrt: 0,
            mov: 0,
            heap_read: 2,
            heap_write: 2,
            cache_miss: 20,
            alloc_base: 20,
            alloc_word: 1,
            dyn_dispatch: 0,
            static_call: 0,
            call_arg: 0,
            branch: 0,
            lea: 0,
            print: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_orders_overheads_as_the_paper_expects() {
        let c = CostModel::default();
        assert!(c.dyn_dispatch > c.static_call);
        assert!(
            c.heap_read > c.lea,
            "a dereference must cost more than address arithmetic"
        );
        assert!(c.alloc_base > c.heap_write);
        assert!(c.cache_miss > c.heap_read);
    }

    #[test]
    fn memory_only_zeroes_compute() {
        let c = CostModel::memory_only();
        assert_eq!(c.arith, 0);
        assert!(c.heap_read > 0);
    }
}
