//! Runtime errors.

use std::error::Error;
use std::fmt;

/// A runtime failure. Programs that verify can still fail dynamically (nil
/// dereference, bad index, type confusion, resource limits).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// Dereference of `nil`.
    NilDereference {
        /// What was attempted (e.g. "field access `x`").
        context: String,
    },
    /// Message sent to an object with no matching method.
    NoSuchMethod {
        /// Receiver class name.
        class: String,
        /// Selector name.
        selector: String,
    },
    /// Field not present on the receiver.
    NoSuchField {
        /// Receiver class name.
        class: String,
        /// Field name.
        field: String,
    },
    /// Array index out of range.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// Operation applied to a value of the wrong type.
    TypeError {
        /// Description of the expectation.
        expected: String,
        /// What was found.
        found: String,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// The configured instruction budget was exhausted.
    InstructionLimit,
    /// The configured call-depth limit was exceeded.
    StackOverflow,
    /// The configured heap limit was exceeded.
    OutOfMemory,
    /// An interpreter invariant was violated — running IR that was never
    /// verified (or a verifier gap). Reported as an error rather than a
    /// panic so hostile inputs cannot take down the host process.
    Internal {
        /// What was violated.
        context: String,
    },
    /// Checked execution caught an interior access resolving outside its
    /// container's slot array — the one sanitizer condition the unchecked
    /// interpreter could not survive either (it would be an index panic),
    /// so the run halts with a typed error instead of continuing. Not a
    /// resource limit: the oracle must treat it as a hard rejection.
    CheckedAccessViolation {
        /// The resolved (out-of-range) container slot.
        slot: usize,
        /// The container's slot count.
        len: usize,
    },
}

impl VmError {
    /// `true` for errors that only say a resource budget ran out
    /// (instructions, stack, heap). These do not indicate a wrong program
    /// — a differential oracle must treat runs ending in them as
    /// indeterminate, because a legal transformation may shift resource
    /// use across the budget line.
    pub fn is_resource_limit(&self) -> bool {
        matches!(
            self,
            VmError::InstructionLimit | VmError::StackOverflow | VmError::OutOfMemory
        )
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NilDereference { context } => write!(f, "nil dereference in {context}"),
            VmError::NoSuchMethod { class, selector } => {
                write!(f, "no method `{selector}` on class `{class}`")
            }
            VmError::NoSuchField { class, field } => {
                write!(f, "no field `{field}` on class `{class}`")
            }
            VmError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for array of length {len}")
            }
            VmError::TypeError { expected, found } => {
                write!(f, "type error: expected {expected}, found {found}")
            }
            VmError::DivisionByZero => f.write_str("division by zero"),
            VmError::InstructionLimit => f.write_str("instruction limit exceeded"),
            VmError::StackOverflow => f.write_str("call depth limit exceeded"),
            VmError::OutOfMemory => f.write_str("heap limit exceeded"),
            VmError::Internal { context } => write!(f, "internal interpreter error: {context}"),
            VmError::CheckedAccessViolation { slot, len } => write!(
                f,
                "checked execution: interior access resolved to slot {slot} \
                 outside container of {len} slot(s)"
            ),
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = VmError::NoSuchMethod {
            class: "Point".into(),
            selector: "area".into(),
        };
        assert_eq!(e.to_string(), "no method `area` on class `Point`");
        let e = VmError::IndexOutOfBounds { index: 7, len: 3 };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn resource_limits_are_classified() {
        assert!(VmError::InstructionLimit.is_resource_limit());
        assert!(VmError::StackOverflow.is_resource_limit());
        assert!(VmError::OutOfMemory.is_resource_limit());
        assert!(!VmError::DivisionByZero.is_resource_limit());
        assert!(!VmError::Internal {
            context: "x".into()
        }
        .is_resource_limit());
        assert!(!VmError::CheckedAccessViolation { slot: 5, len: 2 }.is_resource_limit());
    }
}
