//! A small set-associative data-cache simulator.
//!
//! The paper attributes part of object inlining's win (notably OOPACK's,
//! via parallel array layout) to cache behavior; the VM routes every heap
//! read and write through this model so colocated container/child state
//! actually pays fewer misses.

/// Cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl Default for CacheConfig {
    /// 32 KiB, 32-byte lines, 2-way — a 90s-workstation-flavored L1.
    fn default() -> Self {
        Self {
            size_bytes: 32 * 1024,
            line_bytes: 32,
            ways: 2,
        }
    }
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-dividing).
    pub fn sets(&self) -> usize {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways > 0, "cache must have at least one way");
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines >= self.ways && lines.is_multiple_of(self.ways),
            "invalid cache geometry"
        );
        lines / self.ways
    }
}

/// An LRU set-associative cache over 64-bit byte addresses.
#[derive(Clone, Debug)]
pub struct CacheSim {
    config: CacheConfig,
    /// `sets[s]` holds up to `ways` tags, most recently used last.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Creates an empty (all-cold) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![Vec::with_capacity(config.ways); config.sets()];
        Self {
            config,
            sets,
            hits: 0,
            misses: 0,
        }
    }

    /// Simulates an access to `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes as u64;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // Refresh LRU position.
            let tag = set.remove(pos);
            set.push(tag);
            self.hits += 1;
            true
        } else {
            if set.len() == self.config.ways {
                set.remove(0);
            }
            set.push(line);
            self.misses += 1;
            false
        }
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit fraction in `[0, 1]`; zero when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The geometry this simulator was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 4 lines of 32 bytes, 2-way => 2 sets.
        CacheSim::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 32,
            ways: 2,
        })
    }

    #[test]
    fn geometry_computes_sets() {
        assert_eq!(CacheConfig::default().sets(), 512);
        assert_eq!(
            CacheConfig {
                size_bytes: 128,
                line_bytes: 32,
                ways: 2
            }
            .sets(),
            2
        );
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(8)); // same line
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Set 0 holds lines with even line number (2 sets).
        c.access(0); // line 0 -> set 0
        c.access(64); // line 2 -> set 0
        c.access(128); // line 4 -> set 0, evicts line 0
        assert!(!c.access(0), "line 0 should have been evicted");
        // Re-inserting line 0 evicted line 2 in turn; line 4 survives.
        assert!(c.access(128), "line 4 should still be resident");
    }

    #[test]
    fn lru_refresh_on_hit() {
        let mut c = tiny();
        c.access(0); // line 0
        c.access(64); // line 2
        c.access(0); // refresh line 0
        c.access(128); // evicts line 2 (now LRU)
        assert!(c.access(0));
        assert!(!c.access(64));
    }

    #[test]
    fn sequential_locality_beats_strided() {
        let mut seq = CacheSim::new(CacheConfig::default());
        for i in 0..4096u64 {
            seq.access(i * 8);
        }
        let mut strided = CacheSim::new(CacheConfig::default());
        for i in 0..4096u64 {
            strided.access(i * 8 * 64); // one access per line, huge footprint
        }
        assert!(seq.hit_rate() > strided.hit_rate());
    }

    #[test]
    #[should_panic(expected = "invalid cache geometry")]
    fn degenerate_geometry_panics() {
        let _ = CacheSim::new(CacheConfig {
            size_bytes: 32,
            line_bytes: 32,
            ways: 2,
        });
    }
}
