//! The instrumented interpreter.

use crate::cache::{CacheConfig, CacheSim};
use crate::cost::CostModel;
use crate::error::VmError;
use crate::heap::{Heap, HeapCensus, ObjKind};
use crate::metrics::Metrics;
use crate::sanitizer::{CheckLevel, Sanitizer, SanitizerReport};
use crate::value::{ObjId, Value};
use oi_ir::{
    ArrayLayoutKind, BinOp, BlockId, Builtin, ClassId, ConstValue, Instr, LayoutId, MethodId,
    Program, SiteId, Temp, Terminator, UnOp,
};
use oi_support::Symbol;
use std::collections::HashMap;

/// Interpreter configuration: cost model, cache geometry and resource
/// limits.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Cycle costs.
    pub cost: CostModel,
    /// Data-cache geometry.
    pub cache: CacheConfig,
    /// Abort after this many executed IR instructions.
    pub max_instructions: u64,
    /// Abort beyond this interpreter call depth.
    pub max_depth: usize,
    /// Heap budget in words.
    pub max_heap_words: u64,
    /// Per-object allocator overhead in words (header + padding).
    pub alloc_header_words: u64,
    /// Collect a per-method / per-allocation-site execution profile
    /// ([`RunResult::profile`]). Off by default: attribution adds a check
    /// to every cycle charge.
    pub profile: bool,
    /// Checked execution: validate inline-object invariants against a
    /// shadow heap map ([`RunResult::sanitizer`]). Off by default; checking
    /// never perturbs [`Metrics`] — a clean checked run reports the same
    /// counters as an unchecked one.
    pub checked: CheckLevel,
    /// Test-only wall-clock slowdown: busy-spin this many iterations per
    /// executed instruction. Exists so the benchmark observatory's gated
    /// wall-clock can prove it flags a genuinely slower interpreter;
    /// never perturbs modeled [`Metrics`]. Zero (off) by default.
    pub test_spin_per_instr: u64,
}

impl Default for VmConfig {
    fn default() -> Self {
        Self {
            cost: CostModel::default(),
            cache: CacheConfig::default(),
            max_instructions: 2_000_000_000,
            max_depth: 4_096,
            max_heap_words: 1 << 28,
            alloc_header_words: 2,
            profile: false,
            checked: CheckLevel::Off,
            test_spin_per_instr: 0,
        }
    }
}

/// The outcome of a successful run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Everything the program printed.
    pub output: String,
    /// Execution counters.
    pub metrics: Metrics,
    /// Per-class allocation counts (class name → objects allocated),
    /// sorted by descending count. Arrays appear as `<array>` /
    /// `<array-inline>`.
    pub allocation_census: Vec<(String, u64)>,
    /// End-of-run heap census with class names resolved: object and word
    /// footprints per class, header overhead, embedded inline elements.
    pub heap_census: HeapCensusReport,
    /// Per-method / per-site profile (`Some` iff [`VmConfig::profile`]).
    pub profile: Option<crate::profile::Profile>,
    /// Sanitizer report (`Some` iff [`VmConfig::checked`] is not `Off`).
    pub sanitizer: Option<SanitizerReport>,
}

impl RunResult {
    /// Allocation count for a class by name (0 when absent).
    pub fn allocations_of(&self, class: &str) -> u64 {
        self.allocation_census
            .iter()
            .find(|(name, _)| name == class)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }
}

/// One row of the name-resolved heap census.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeapCensusEntry {
    /// Class name, or `<array>` / `<array-inline>` for array groups.
    pub class: String,
    /// Objects in the group.
    pub count: u64,
    /// Words the group occupies, headers included.
    pub words: u64,
}

/// The end-of-run heap census with class ids resolved to names — the
/// observable "why" behind Figure 17: how many objects existed, how much
/// of the heap was allocator overhead, and how much child state was folded
/// into containers instead of being separately allocated.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeapCensusReport {
    /// Per-group rows, sorted by descending word footprint then name.
    pub classes: Vec<HeapCensusEntry>,
    /// Every object on the heap.
    pub total_objects: u64,
    /// Every word handed out, headers included. Always equals
    /// `Metrics::words_allocated` for the same run.
    pub total_words: u64,
    /// Total header/padding words paid across every object.
    pub header_words: u64,
    /// Elements embedded in inline arrays (children that never paid for
    /// their own allocation).
    pub inline_elements: u64,
}

impl HeapCensusReport {
    /// Resolves a raw [`HeapCensus`] against the program's class names.
    fn resolve(census: &HeapCensus, program: &Program) -> Self {
        let mut classes: Vec<HeapCensusEntry> = census
            .instances
            .iter()
            .map(|(c, b)| HeapCensusEntry {
                class: program
                    .interner
                    .resolve(program.classes[*c].name)
                    .to_owned(),
                count: b.count,
                words: b.words,
            })
            .collect();
        if census.arrays.count > 0 {
            classes.push(HeapCensusEntry {
                class: "<array>".to_owned(),
                count: census.arrays.count,
                words: census.arrays.words,
            });
        }
        if census.inline_arrays.count > 0 {
            classes.push(HeapCensusEntry {
                class: "<array-inline>".to_owned(),
                count: census.inline_arrays.count,
                words: census.inline_arrays.words,
            });
        }
        classes.sort_by(|a, b| b.words.cmp(&a.words).then_with(|| a.class.cmp(&b.class)));
        HeapCensusReport {
            classes,
            total_objects: census.total_objects,
            total_words: census.total_words,
            header_words: census.header_words,
            inline_elements: census.inline_elements,
        }
    }

    /// The census as schema-stable JSON.
    pub fn to_json(&self) -> oi_support::Json {
        use oi_support::Json;
        Json::obj(vec![
            (
                "classes",
                Json::Arr(
                    self.classes
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("class", e.class.clone().into()),
                                ("count", e.count.into()),
                                ("words", e.words.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("total_objects", self.total_objects.into()),
            ("total_words", self.total_words.into()),
            ("header_words", self.header_words.into()),
            ("inline_elements", self.inline_elements.into()),
        ])
    }
}

/// Runs `program` from its entry point.
///
/// # Errors
///
/// Returns a [`VmError`] on dynamic failures (nil dereference, missing
/// method/field, bad index, type confusion) or when a configured limit is
/// exceeded.
pub fn run(program: &Program, config: &VmConfig) -> Result<RunResult, VmError> {
    let mut session = VmSession::new(program, config)?;
    match session.run_fuel(program, u64::MAX) {
        FuelOutcome::Done { result, .. } => Ok(*result),
        FuelOutcome::Trapped { error, .. } => Err(error),
        // `run_fuel(u64::MAX)` meters against the remaining instruction
        // budget only, so the slice cannot end before the program does.
        FuelOutcome::Yielded { .. } => Err(VmError::Internal {
            context: "unbounded fuel slice yielded".to_owned(),
        }),
    }
}

/// Progress of one fuel slice (see [`VmSession::run_fuel`]).
#[derive(Debug)]
pub enum FuelOutcome {
    /// The fuel slice was exhausted with work remaining; resume with
    /// another [`VmSession::run_fuel`] call.
    Yielded {
        /// Instructions executed during this slice.
        fuel_spent: u64,
    },
    /// The program ran to completion during this slice.
    Done {
        /// Instructions executed during this slice.
        fuel_spent: u64,
        /// The completed run, identical to what [`run`] returns.
        result: Box<RunResult>,
    },
    /// The program failed during this slice; the session is finished.
    /// Resource-limit errors ([`VmError::is_resource_limit`]) are the
    /// typed quota-exceeded terminations a scheduler acts on.
    Trapped {
        /// Instructions executed during this slice.
        fuel_spent: u64,
        /// The failure, identical to what [`run`] returns.
        error: VmError,
    },
}

/// A resumable, fuel-metered interpreter session.
///
/// Owns every piece of interpreter state — the explicit frame stack, heap,
/// cache simulation and counters — so execution can suspend between any
/// two instructions and resume later: the substrate for preemptive
/// multi-tenant scheduling. The program is passed back in on every slice
/// (the session holds no borrows while suspended); it must be the same
/// object the session was created over, enforced by address.
///
/// Metering costs nothing beyond the interpreter's pre-existing
/// instruction-budget checkpoint: each dispatch decrements one fused
/// counter seeded with `min(slice, remaining max_instructions)`, so an
/// unmetered [`run`] — a single `u64::MAX` slice — performs identical
/// per-instruction work.
pub struct VmSession {
    /// Owned interpreter state; `None` once finished (done or trapped).
    state: Option<VmState>,
    config: VmConfig,
    /// Address of the program this session was created over.
    program_tag: usize,
    /// Instructions executed across all slices so far.
    executed: u64,
}

impl VmSession {
    /// Creates a suspended session positioned at `program`'s entry point.
    ///
    /// # Errors
    ///
    /// Fails when the entry frame itself violates a limit (a `max_depth`
    /// of zero) or the entry method's frame shape is malformed.
    pub fn new(program: &Program, config: &VmConfig) -> Result<Self, VmError> {
        let mut vm = Vm::new(program, config);
        vm.push_frame(program.entry, Value::Nil, &[], None)?;
        Ok(VmSession {
            state: Some(vm.into_state()),
            config: *config,
            program_tag: program as *const Program as usize,
            executed: 0,
        })
    }

    /// Runs at most `fuel` instructions, suspending the session when the
    /// slice is exhausted. Never panics on misuse: resuming a finished
    /// session or passing a different program traps with
    /// [`VmError::Internal`].
    pub fn run_fuel(&mut self, program: &Program, fuel: u64) -> FuelOutcome {
        if program as *const Program as usize != self.program_tag {
            return FuelOutcome::Trapped {
                fuel_spent: 0,
                error: VmError::Internal {
                    context: "session resumed against a different program".to_owned(),
                },
            };
        }
        let Some(state) = self.state.take() else {
            return FuelOutcome::Trapped {
                fuel_spent: 0,
                error: VmError::Internal {
                    context: "fuel slice on a finished session".to_owned(),
                },
            };
        };
        let budget = state.instr_budget;
        let mut quota = fuel.min(budget);
        let granted = quota;
        let mut vm = Vm::from_state(program, &self.config, state);
        let end = vm.drive(&mut quota);
        // Fuel is the quota delta, not `metrics.instructions`: the drive
        // loop meters block terminators too (an empty-loop cycle must not
        // spin for free), while the instructions metric stays a pure
        // instruction count.
        let fuel_spent = granted - quota;
        vm.instr_budget = budget - fuel_spent;
        self.executed += fuel_spent;
        match end {
            Ok(StepEnd::Done) => FuelOutcome::Done {
                fuel_spent,
                result: Box::new(vm.finish()),
            },
            Ok(StepEnd::OutOfFuel) => {
                if vm.instr_budget == 0 {
                    FuelOutcome::Trapped {
                        fuel_spent,
                        error: VmError::InstructionLimit,
                    }
                } else {
                    self.state = Some(vm.into_state());
                    FuelOutcome::Yielded { fuel_spent }
                }
            }
            Err(error) => FuelOutcome::Trapped { fuel_spent, error },
        }
    }

    /// Total fuel spent across every slice so far — dispatches, i.e.
    /// instructions plus block terminators — the VM-side half of a
    /// scheduler's fuel reconciliation. Valid in every state, including
    /// after a trap.
    pub fn instructions_executed(&self) -> u64 {
        self.executed
    }

    /// Whether the session has finished (done or trapped).
    pub fn is_finished(&self) -> bool {
        self.state.is_none()
    }
}

/// Folds raw per-index counters into a hottest-first [`crate::profile::Profile`],
/// resolving sites to their containing method and allocated class.
fn build_profile(program: &Program, state: &ProfileState) -> crate::profile::Profile {
    use crate::profile::{AccessSiteProfile, MethodProfile, OpcodeProfile, Profile, SiteProfile};
    // Static site → (containing method, allocated class) map.
    let mut site_info: HashMap<usize, (String, String)> = HashMap::new();
    for (mid, m) in program.methods.iter_enumerated() {
        for block in m.blocks.iter() {
            for instr in &block.instrs {
                let (site, class) = match instr {
                    Instr::New { class, site, .. } => (
                        *site,
                        program
                            .interner
                            .resolve(program.classes[*class].name)
                            .to_owned(),
                    ),
                    Instr::NewArray { site, .. } => (*site, "<array>".to_owned()),
                    Instr::NewArrayInline { site, .. } => (*site, "<array-inline>".to_owned()),
                    _ => continue,
                };
                site_info.insert(site.index(), (program.method_display(mid), class));
            }
        }
    }
    let mut methods: Vec<MethodProfile> = program
        .methods
        .ids()
        .filter(|m| state.method_calls[m.index()] > 0)
        .map(|m| MethodProfile {
            name: program.method_display(m),
            calls: state.method_calls[m.index()],
            cycles: state.method_cycles[m.index()],
            cache_misses: state.method_misses[m.index()],
        })
        .collect();
    methods.sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| a.name.cmp(&b.name)));
    let mut sites: Vec<SiteProfile> = state
        .site_allocs
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(site, &n)| {
            let (method, class) = site_info
                .get(&site)
                .cloned()
                .unwrap_or_else(|| ("<unknown>".to_owned(), "<unknown>".to_owned()));
            SiteProfile {
                site,
                method,
                class,
                allocations: n,
                words: state.site_words[site],
            }
        })
        .collect();
    sites.sort_by(|a, b| {
        b.allocations
            .cmp(&a.allocations)
            .then_with(|| a.site.cmp(&b.site))
    });
    let mut opcodes: Vec<OpcodeProfile> = OPCODE_NAMES
        .iter()
        .enumerate()
        .filter(|&(i, _)| state.opcode_counts[i] > 0 || state.opcode_cycles[i] > 0)
        .map(|(i, &name)| OpcodeProfile {
            name: name.to_owned(),
            count: state.opcode_counts[i],
            cycles: state.opcode_cycles[i],
        })
        .collect();
    opcodes.sort_by(|a, b| {
        b.cycles
            .cmp(&a.cycles)
            .then_with(|| b.count.cmp(&a.count))
            .then_with(|| a.name.cmp(&b.name))
    });
    let mut accesses: Vec<AccessSiteProfile> = state
        .accesses
        .iter()
        .map(|(&(class, field, interior), counters)| AccessSiteProfile {
            class: program
                .interner
                .resolve(program.classes[class].name)
                .to_owned(),
            field: program.interner.resolve(field).to_owned(),
            interior,
            reads: counters.reads,
            writes: counters.writes,
            cycles: counters.cycles,
        })
        .collect();
    accesses.sort_by(|a, b| {
        b.cycles
            .cmp(&a.cycles)
            .then_with(|| (b.reads + b.writes).cmp(&(a.reads + a.writes)))
            .then_with(|| a.class.cmp(&b.class))
            .then_with(|| a.field.cmp(&b.field))
            .then_with(|| a.interior.cmp(&b.interior))
    });
    Profile {
        methods,
        sites,
        opcodes,
        accesses,
    }
}

/// Names for the per-opcode dispatch histogram, indexed by
/// [`opcode_index`]. The last two are pseudo-opcodes: `branch` receives
/// block-terminator charges, `other` any charge issued outside an
/// instruction dispatch (e.g. frame entry before the first opcode).
const OPCODE_NAMES: [&str; 21] = [
    "const",
    "move",
    "unary",
    "binary",
    "new",
    "new_array",
    "new_array_inline",
    "get_field",
    "set_field",
    "array_get",
    "array_set",
    "get_global",
    "set_global",
    "send",
    "call_static",
    "call_builtin",
    "make_interior",
    "make_interior_elem",
    "print",
    "branch",
    "other",
];
/// Pseudo-opcode index for block-terminator (branch) charges.
const OP_BRANCH: usize = 19;
/// Pseudo-opcode index for charges outside any dispatch.
const OP_OTHER: usize = 20;

/// The histogram slot for an instruction (see [`OPCODE_NAMES`]).
fn opcode_index(instr: &Instr) -> usize {
    match instr {
        Instr::Const { .. } => 0,
        Instr::Move { .. } => 1,
        Instr::Unary { .. } => 2,
        Instr::Binary { .. } => 3,
        Instr::New { .. } => 4,
        Instr::NewArray { .. } => 5,
        Instr::NewArrayInline { .. } => 6,
        Instr::GetField { .. } => 7,
        Instr::SetField { .. } => 8,
        Instr::ArrayGet { .. } => 9,
        Instr::ArraySet { .. } => 10,
        Instr::GetGlobal { .. } => 11,
        Instr::SetGlobal { .. } => 12,
        Instr::Send { .. } => 13,
        Instr::CallStatic { .. } => 14,
        Instr::CallBuiltin { .. } => 15,
        Instr::MakeInterior { .. } => 16,
        Instr::MakeInteriorElem { .. } => 17,
        Instr::Print { .. } => 18,
    }
}

/// Per-access-site raw counters (see
/// [`crate::profile::AccessSiteProfile`]).
#[derive(Default)]
struct AccessCounters {
    reads: u64,
    writes: u64,
    cycles: u64,
}

/// Raw profiling counters, indexed by method / site id.
struct ProfileState {
    method_calls: Vec<u64>,
    method_cycles: Vec<u64>,
    method_misses: Vec<u64>,
    site_allocs: Vec<u64>,
    site_words: Vec<u64>,
    /// Dispatch counts per [`OPCODE_NAMES`] slot.
    opcode_counts: Vec<u64>,
    /// Self cycles per [`OPCODE_NAMES`] slot (a call opcode's callee
    /// attributes to the callee's own opcodes).
    opcode_cycles: Vec<u64>,
    /// Field-access counters keyed by `(class, field, interior?)`.
    accesses: HashMap<(ClassId, Symbol, bool), AccessCounters>,
}

/// How an inline child's fields map to container slots (VM-resolved form,
/// closed under composition for nested inlining).
#[derive(Clone, Debug)]
pub(crate) enum Repr {
    /// Object container: child field `j` lives at container slot `slots[j]`.
    Object { slots: Vec<usize> },
    /// Array container: child field `j` of element `i` lives at
    /// `i*width + map[j]` (interleaved) or `map[j]*len + i` (parallel).
    Array {
        kind: ArrayLayoutKind,
        width: usize,
        map: Vec<usize>,
    },
}

#[derive(Clone, Debug)]
pub(crate) struct ResolvedLayout {
    pub(crate) child_class: ClassId,
    pub(crate) child_fields: Vec<Symbol>,
    pub(crate) repr: Repr,
}

/// One activation record on the explicit call stack. Frames replace host
/// recursion so the interpreter can suspend mid-call-stack: a parked frame
/// holds plain ids and owned values, never borrows.
struct Frame {
    method: MethodId,
    /// Block the frame is executing.
    bb: BlockId,
    /// Index of the next instruction to dispatch within `bb`.
    ip: usize,
    locals: Vec<Value>,
    /// Caller temp receiving the return value (`None` discards it — the
    /// implicit constructor call from `New`, and the entry frame).
    ret: Option<Temp>,
}

/// What a dispatched instruction asked the drive loop to do next.
enum Flow {
    /// Fall through to the next instruction.
    Continue,
    /// Push a callee frame; the current frame resumes after it returns.
    Call {
        method: MethodId,
        recv: Value,
        argv: Vec<Value>,
        ret: Option<Temp>,
    },
}

/// Why [`Vm::drive`] stopped without an error.
enum StepEnd {
    /// Frame stack drained: the program completed.
    Done,
    /// Quota hit zero with frames still live.
    OutOfFuel,
}

/// The owned half of the interpreter — everything except the borrowed
/// program and config — parked between fuel slices. Field-for-field the
/// owned fields of [`Vm`]; conversion is a move in each direction.
struct VmState {
    heap: Heap,
    cache: CacheSim,
    metrics: Metrics,
    output: String,
    globals: Vec<Value>,
    field_slots: Vec<HashMap<Symbol, usize>>,
    class_sizes: Vec<usize>,
    layouts: Vec<ResolvedLayout>,
    compose_cache: HashMap<(u32, u32), u32>,
    frames: Vec<Frame>,
    instr_budget: u64,
    init_sym: Option<Symbol>,
    alloc_census: Vec<u64>,
    array_census: u64,
    inline_array_census: u64,
    profile: Option<ProfileState>,
    sanitizer: Option<Sanitizer>,
    mstack: Vec<MethodId>,
    cur_op: usize,
}

struct Vm<'p> {
    program: &'p Program,
    config: &'p VmConfig,
    heap: Heap,
    cache: CacheSim,
    metrics: Metrics,
    output: String,
    globals: Vec<Value>,
    /// Per-class field-name → slot tables.
    field_slots: Vec<HashMap<Symbol, usize>>,
    /// Per-class instance sizes.
    class_sizes: Vec<usize>,
    /// Resolved layouts; indices < `program.layouts.len()` mirror the
    /// program table, later entries are runtime-composed.
    layouts: Vec<ResolvedLayout>,
    compose_cache: HashMap<(u32, u32), u32>,
    /// Explicit call stack; its length is the interpreter call depth.
    frames: Vec<Frame>,
    instr_budget: u64,
    init_sym: Option<Symbol>,
    alloc_census: Vec<u64>,
    array_census: u64,
    inline_array_census: u64,
    /// Raw profiling counters (`Some` iff `config.profile`).
    profile: Option<ProfileState>,
    /// Shadow-heap sanitizer (`Some` iff `config.checked` is not `Off`).
    sanitizer: Option<Sanitizer>,
    /// Call stack of active methods, maintained while profiling or
    /// checking (the sanitizer attributes findings to the active method).
    mstack: Vec<MethodId>,
    /// Histogram slot of the opcode currently dispatching, maintained
    /// only while profiling ([`OP_OTHER`] outside any dispatch).
    cur_op: usize,
}

impl<'p> Vm<'p> {
    fn new(program: &'p Program, config: &'p VmConfig) -> Self {
        let field_slots = program
            .classes
            .ids()
            .map(|c| {
                program
                    .layout_of(c)
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| (program.fields[f].name, i))
                    .collect()
            })
            .collect();
        let class_sizes = program
            .classes
            .ids()
            .map(|c| program.layout_of(c).len())
            .collect();
        let layouts = program
            .layouts
            .iter()
            .map(|l| ResolvedLayout {
                child_class: l.child_class,
                child_fields: l.child_fields.clone(),
                repr: match l.array_kind {
                    None => Repr::Object {
                        slots: l.slots.clone(),
                    },
                    Some(kind) => Repr::Array {
                        kind,
                        width: l.child_fields.len(),
                        map: (0..l.child_fields.len()).collect(),
                    },
                },
            })
            .collect();
        Self {
            program,
            config,
            heap: Heap::new(config.max_heap_words, config.alloc_header_words),
            cache: CacheSim::new(config.cache),
            metrics: Metrics::default(),
            output: String::new(),
            globals: vec![Value::Nil; program.globals.len()],
            field_slots,
            class_sizes,
            layouts,
            compose_cache: HashMap::new(),
            frames: Vec::new(),
            instr_budget: config.max_instructions,
            init_sym: program.interner.get("init"),
            alloc_census: vec![0; program.classes.len()],
            array_census: 0,
            inline_array_census: 0,
            profile: config.profile.then(|| ProfileState {
                method_calls: vec![0; program.methods.len()],
                method_cycles: vec![0; program.methods.len()],
                method_misses: vec![0; program.methods.len()],
                site_allocs: vec![0; program.site_count as usize],
                site_words: vec![0; program.site_count as usize],
                opcode_counts: vec![0; OPCODE_NAMES.len()],
                opcode_cycles: vec![0; OPCODE_NAMES.len()],
                accesses: HashMap::new(),
            }),
            sanitizer: Sanitizer::new(config.checked),
            mstack: Vec::new(),
            cur_op: OP_OTHER,
        }
    }

    // -- suspend / resume ---------------------------------------------------

    /// Rehydrates an interpreter over parked state. Every field move is a
    /// pointer-sized copy, so a resume costs nothing proportional to heap
    /// or stack size.
    fn from_state(program: &'p Program, config: &'p VmConfig, st: VmState) -> Self {
        Vm {
            program,
            config,
            heap: st.heap,
            cache: st.cache,
            metrics: st.metrics,
            output: st.output,
            globals: st.globals,
            field_slots: st.field_slots,
            class_sizes: st.class_sizes,
            layouts: st.layouts,
            compose_cache: st.compose_cache,
            frames: st.frames,
            instr_budget: st.instr_budget,
            init_sym: st.init_sym,
            alloc_census: st.alloc_census,
            array_census: st.array_census,
            inline_array_census: st.inline_array_census,
            profile: st.profile,
            sanitizer: st.sanitizer,
            mstack: st.mstack,
            cur_op: st.cur_op,
        }
    }

    /// Parks the interpreter's owned state, dropping the program borrow.
    fn into_state(self) -> VmState {
        VmState {
            heap: self.heap,
            cache: self.cache,
            metrics: self.metrics,
            output: self.output,
            globals: self.globals,
            field_slots: self.field_slots,
            class_sizes: self.class_sizes,
            layouts: self.layouts,
            compose_cache: self.compose_cache,
            frames: self.frames,
            instr_budget: self.instr_budget,
            init_sym: self.init_sym,
            alloc_census: self.alloc_census,
            array_census: self.array_census,
            inline_array_census: self.inline_array_census,
            profile: self.profile,
            sanitizer: self.sanitizer,
            mstack: self.mstack,
            cur_op: self.cur_op,
        }
    }

    /// Consumes a completed interpreter into its [`RunResult`].
    fn finish(mut self) -> RunResult {
        let program = self.program;
        let mut census: Vec<(String, u64)> = Vec::new();
        for (c, &n) in self.alloc_census.iter().enumerate() {
            if n > 0 {
                let name = program
                    .interner
                    .resolve(program.classes[oi_ir::ClassId::new(c)].name)
                    .to_owned();
                census.push((name, n));
            }
        }
        if self.array_census > 0 {
            census.push(("<array>".to_owned(), self.array_census));
        }
        if self.inline_array_census > 0 {
            census.push(("<array-inline>".to_owned(), self.inline_array_census));
        }
        census.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let profile = self
            .profile
            .take()
            .map(|state| build_profile(program, &state));
        let heap_census = HeapCensusReport::resolve(&self.heap.census(), program);
        let sanitizer = self.sanitizer.take().map(Sanitizer::into_report);
        RunResult {
            output: self.output,
            metrics: self.metrics,
            allocation_census: census,
            heap_census,
            profile,
            sanitizer,
        }
    }

    // -- cost helpers -------------------------------------------------------

    fn charge(&mut self, cycles: u64) {
        self.metrics.cycles += cycles;
        if let Some(p) = &mut self.profile {
            if let Some(&m) = self.mstack.last() {
                p.method_cycles[m.index()] += cycles;
            }
            p.opcode_cycles[self.cur_op] += cycles;
        }
    }

    /// Attributes one cache miss to the active method (profiling only).
    fn profile_miss(&mut self) {
        if let Some(p) = &mut self.profile {
            if let Some(&m) = self.mstack.last() {
                p.method_misses[m.index()] += 1;
            }
        }
    }

    /// A heap read at `addr`: base cost + cache penalty. Returns whether
    /// the access hit the cache.
    fn mem_read(&mut self, addr: u64) -> bool {
        self.metrics.heap_reads += 1;
        self.charge(self.config.cost.heap_read);
        if self.cache.access(addr) {
            self.metrics.cache_hits += 1;
            true
        } else {
            self.metrics.cache_misses += 1;
            self.profile_miss();
            self.charge(self.config.cost.cache_miss);
            false
        }
    }

    /// A heap write at `addr`: base cost + cache penalty (allocate-on-write).
    /// Returns whether the access hit the cache.
    fn mem_write(&mut self, addr: u64) -> bool {
        self.metrics.heap_writes += 1;
        self.charge(self.config.cost.heap_write);
        if self.cache.access(addr) {
            self.metrics.cache_hits += 1;
            true
        } else {
            self.metrics.cache_misses += 1;
            self.profile_miss();
            self.charge(self.config.cost.cache_miss);
            false
        }
    }

    /// Records an access to inline child state (through an interior
    /// reference) and whether it was served by the cache — the per-run
    /// locality evidence that colocated state shares lines with its
    /// container.
    fn note_inline_access(&mut self, hit: bool) {
        self.metrics.inline_child_accesses += 1;
        if hit {
            self.metrics.inline_child_hits += 1;
        }
    }

    // -- layout machinery ---------------------------------------------------

    /// Composes `inner` (an object-container layout over `outer`'s child
    /// class) with an existing resolved layout, yielding a layout that maps
    /// the inner child's fields directly onto the outermost container.
    fn compose(&mut self, outer: u32, inner: LayoutId) -> u32 {
        if let Some(&cached) = self.compose_cache.get(&(outer, inner.index() as u32)) {
            return cached;
        }
        let inner_l = &self.program.layouts[inner];
        debug_assert!(
            inner_l.array_kind.is_none(),
            "inner layout must be an object layout"
        );
        let outer_l = &self.layouts[outer as usize];
        let repr = match &outer_l.repr {
            Repr::Object { slots } => Repr::Object {
                slots: inner_l.slots.iter().map(|&s| slots[s]).collect(),
            },
            Repr::Array { kind, width, map } => Repr::Array {
                kind: *kind,
                width: *width,
                map: inner_l.slots.iter().map(|&s| map[s]).collect(),
            },
        };
        let resolved = ResolvedLayout {
            child_class: inner_l.child_class,
            child_fields: inner_l.child_fields.clone(),
            repr,
        };
        let id = self.layouts.len() as u32;
        self.layouts.push(resolved);
        self.compose_cache.insert((outer, inner.index() as u32), id);
        id
    }

    /// Container slot index for child field `j` of the interior reference.
    fn interior_slot(&self, layout: u32, index: u32, j: usize, container_len: usize) -> usize {
        match &self.layouts[layout as usize].repr {
            Repr::Object { slots } => slots[j],
            Repr::Array { kind, width, map } => match kind {
                ArrayLayoutKind::Interleaved => index as usize * *width + map[j],
                ArrayLayoutKind::Parallel => map[j] * container_len + index as usize,
            },
        }
    }

    // -- checked execution --------------------------------------------------

    /// Validates the establishment of an interior reference (checked mode).
    fn sanitize_interior(
        &mut self,
        obj: ObjId,
        index: u32,
        layout: u32,
        instruction: &'static str,
    ) {
        let method = self.mstack.last().copied();
        if let Some(san) = &mut self.sanitizer {
            san.on_interior(
                self.program,
                &self.heap,
                &self.layouts,
                method,
                instruction,
                obj,
                index,
                layout,
            );
        }
    }

    /// Validates one resolved interior access (checked mode). Errors when
    /// the access resolves outside the container — the one condition the
    /// unchecked interpreter could not survive either.
    #[allow(clippy::too_many_arguments)]
    fn checked_access(
        &mut self,
        obj: ObjId,
        index: u32,
        layout: u32,
        j: usize,
        slot: usize,
        is_read: bool,
        instruction: &'static str,
    ) -> Result<(), VmError> {
        let method = self.mstack.last().copied();
        if let Some(san) = &mut self.sanitizer {
            san.on_access(
                self.program,
                &self.heap,
                &self.layouts,
                method,
                instruction,
                obj,
                index,
                layout,
                j,
                slot,
                is_read,
            )?;
        }
        Ok(())
    }

    /// Cross-checks identity when `l === r` (or `==` on references) was
    /// false: two interior references into the same container designating
    /// the same region must compare identical (checked mode).
    fn sanitize_identity(&mut self, l: Value, r: Value) {
        if self.sanitizer.is_none() {
            return;
        }
        if let (
            Value::Interior {
                obj: lo,
                index: li,
                layout: ll,
            },
            Value::Interior {
                obj: ro,
                index: ri,
                layout: rl,
            },
        ) = (l, r)
        {
            if lo == ro {
                let method = self.mstack.last().copied();
                if let Some(san) = &mut self.sanitizer {
                    san.on_identity(
                        self.program,
                        &self.heap,
                        &self.layouts,
                        method,
                        lo,
                        (ll.index() as u32, li),
                        (rl.index() as u32, ri),
                    );
                }
            }
        }
    }

    // -- dynamic typing helpers ---------------------------------------------

    fn class_name(&self, c: ClassId) -> String {
        self.program
            .interner
            .resolve(self.program.classes[c].name)
            .to_owned()
    }

    fn class_of(&self, v: Value) -> Option<ClassId> {
        match v {
            Value::Obj(o) => match self.heap.get(o).kind {
                ObjKind::Instance(c) => Some(c),
                _ => None,
            },
            Value::Interior { layout, .. } => Some(self.layouts[layout.index()].child_class),
            _ => None,
        }
    }

    fn expect_int(&self, v: Value, what: &str) -> Result<i64, VmError> {
        match v {
            Value::Int(n) => Ok(n),
            other => Err(VmError::TypeError {
                expected: format!("int for {what}"),
                found: other.type_name().to_owned(),
            }),
        }
    }

    fn expect_bool(&self, v: Value, what: &str) -> Result<bool, VmError> {
        match v {
            Value::Bool(b) => Ok(b),
            other => Err(VmError::TypeError {
                expected: format!("bool for {what}"),
                found: other.type_name().to_owned(),
            }),
        }
    }

    // -- field access --------------------------------------------------------

    fn get_field(&mut self, recv: Value, field: Symbol) -> Result<Value, VmError> {
        match recv {
            Value::Obj(o) => {
                let kind = self.heap.get(o).kind;
                let ObjKind::Instance(c) = kind else {
                    return Err(VmError::NoSuchField {
                        class: "array".to_owned(),
                        field: self.program.interner.resolve(field).to_owned(),
                    });
                };
                let slot = *self.field_slots[c.index()].get(&field).ok_or_else(|| {
                    VmError::NoSuchField {
                        class: self.class_name(c),
                        field: self.program.interner.resolve(field).to_owned(),
                    }
                })?;
                let addr = self.heap.get(o).slot_addr(slot);
                let hit = self.mem_read(addr);
                self.profile_access(c, field, false, false, hit);
                Ok(self.heap.get(o).slots[slot])
            }
            Value::Interior { obj, index, layout } => {
                let lid = layout.index() as u32;
                let resolved = &self.layouts[lid as usize];
                let child = resolved.child_class;
                let j = resolved
                    .child_fields
                    .iter()
                    .position(|&f| f == field)
                    .ok_or_else(|| VmError::NoSuchField {
                        class: self.class_name(child),
                        field: self.program.interner.resolve(field).to_owned(),
                    })?;
                let container_len = self.heap.get(obj).array_len().unwrap_or(0);
                let slot = self.interior_slot(lid, index, j, container_len);
                if self.sanitizer.is_some() {
                    self.checked_access(obj, index, lid, j, slot, true, "GetField")?;
                }
                let addr = self.heap.get(obj).slot_addr(slot);
                let hit = self.mem_read(addr);
                self.note_inline_access(hit);
                self.profile_access(child, field, true, false, hit);
                Ok(self.heap.get(obj).slots[slot])
            }
            Value::Nil => Err(VmError::NilDereference {
                context: format!("field access `{}`", self.program.interner.resolve(field)),
            }),
            other => Err(VmError::TypeError {
                expected: "object for field access".to_owned(),
                found: other.type_name().to_owned(),
            }),
        }
    }

    fn set_field(&mut self, recv: Value, field: Symbol, value: Value) -> Result<(), VmError> {
        match recv {
            Value::Obj(o) => {
                let kind = self.heap.get(o).kind;
                let ObjKind::Instance(c) = kind else {
                    return Err(VmError::NoSuchField {
                        class: "array".to_owned(),
                        field: self.program.interner.resolve(field).to_owned(),
                    });
                };
                let slot = *self.field_slots[c.index()].get(&field).ok_or_else(|| {
                    VmError::NoSuchField {
                        class: self.class_name(c),
                        field: self.program.interner.resolve(field).to_owned(),
                    }
                })?;
                let addr = self.heap.get(o).slot_addr(slot);
                let hit = self.mem_write(addr);
                self.profile_access(c, field, false, true, hit);
                self.heap.get_mut(o).slots[slot] = value;
                if let Some(san) = &mut self.sanitizer {
                    let len = self.heap.get(o).slots.len();
                    san.on_direct_write(o, slot, len);
                }
                Ok(())
            }
            Value::Interior { obj, index, layout } => {
                let lid = layout.index() as u32;
                let resolved = &self.layouts[lid as usize];
                let child = resolved.child_class;
                let j = resolved
                    .child_fields
                    .iter()
                    .position(|&f| f == field)
                    .ok_or_else(|| VmError::NoSuchField {
                        class: self.class_name(child),
                        field: self.program.interner.resolve(field).to_owned(),
                    })?;
                let container_len = self.heap.get(obj).array_len().unwrap_or(0);
                let slot = self.interior_slot(lid, index, j, container_len);
                if self.sanitizer.is_some() {
                    self.checked_access(obj, index, lid, j, slot, false, "SetField")?;
                }
                let addr = self.heap.get(obj).slot_addr(slot);
                let hit = self.mem_write(addr);
                self.note_inline_access(hit);
                self.profile_access(child, field, true, true, hit);
                self.heap.get_mut(obj).slots[slot] = value;
                Ok(())
            }
            Value::Nil => Err(VmError::NilDereference {
                context: format!("field store `{}`", self.program.interner.resolve(field)),
            }),
            other => Err(VmError::TypeError {
                expected: "object for field store".to_owned(),
                found: other.type_name().to_owned(),
            }),
        }
    }

    // -- allocation ----------------------------------------------------------

    fn alloc_instance(&mut self, class: ClassId, site: SiteId) -> Result<ObjId, VmError> {
        let size = self.class_sizes[class.index()];
        let id = self.heap.alloc(ObjKind::Instance(class), size)?;
        // Use the heap's effective (clamped) overhead so `words_allocated`
        // in the metrics agrees with the bump allocator's own accounting.
        let overhead = self.heap.header_words();
        self.alloc_census[class.index()] += 1;
        self.metrics.allocations += 1;
        self.metrics.words_allocated += size as u64 + overhead;
        self.profile_alloc(site, size as u64 + overhead);
        self.charge(
            self.config.cost.alloc_base + self.config.cost.alloc_word * (size as u64 + overhead),
        );
        // Zeroing warms the cache for the fresh object.
        let base = self.heap.get(id).addr;
        let line = self.cache.config().line_bytes as u64;
        let mut a = base;
        while a < base + (size as u64 + 1) * crate::heap::WORD {
            self.cache.access(a);
            a += line;
        }
        Ok(id)
    }

    /// Attributes one field access at `(class, field, interior?)` to its
    /// access site with its modeled cost — the base read/write charge
    /// plus the cache penalty it actually paid (profiling only).
    fn profile_access(
        &mut self,
        class: ClassId,
        field: Symbol,
        interior: bool,
        is_write: bool,
        hit: bool,
    ) {
        let cost = self.config.cost;
        if let Some(p) = &mut self.profile {
            let entry = p.accesses.entry((class, field, interior)).or_default();
            let base = if is_write {
                entry.writes += 1;
                cost.heap_write
            } else {
                entry.reads += 1;
                cost.heap_read
            };
            entry.cycles += base + if hit { 0 } else { cost.cache_miss };
        }
    }

    /// Attributes one allocation of `words` words to `site` (profiling
    /// only).
    fn profile_alloc(&mut self, site: SiteId, words: u64) {
        if let Some(p) = &mut self.profile {
            if site.index() < p.site_allocs.len() {
                p.site_allocs[site.index()] += 1;
                p.site_words[site.index()] += words;
            }
        }
    }

    fn alloc_array(&mut self, kind: ObjKind, slots: usize, site: SiteId) -> Result<ObjId, VmError> {
        let id = self.heap.alloc(kind, slots)?;
        match kind {
            ObjKind::ArrayInline { .. } => self.inline_array_census += 1,
            _ => self.array_census += 1,
        }
        let overhead = self.heap.header_words();
        self.metrics.allocations += 1;
        self.metrics.words_allocated += slots as u64 + overhead;
        self.profile_alloc(site, slots as u64 + overhead);
        self.charge(
            self.config.cost.alloc_base + self.config.cost.alloc_word * (slots as u64 + overhead),
        );
        Ok(id)
    }

    // -- calls ----------------------------------------------------------------

    /// Pushes a callee activation record: the limit check, profiling and
    /// sanitizer entry hooks formerly spread across the recursive
    /// `call`/`run_frame` pair. `max_depth` is enforced here — the single
    /// frame-push site — as a typed [`VmError::StackOverflow`], and the
    /// explicit stack means a hostile guest can never exhaust the host
    /// thread's stack.
    fn push_frame(
        &mut self,
        method: MethodId,
        recv: Value,
        args: &[Value],
        ret: Option<Temp>,
    ) -> Result<(), VmError> {
        if self.frames.len() >= self.config.max_depth {
            return Err(VmError::StackOverflow);
        }
        let m = &self.program.methods[method];
        debug_assert_eq!(args.len(), m.param_count as usize);
        let mut locals = vec![Value::Nil; m.temp_count as usize];
        // Verified IR guarantees `temp_count >= params + self`; unverified
        // IR must not be able to panic the host.
        if locals.len() < args.len() + 1 {
            return Err(VmError::Internal {
                context: format!(
                    "frame of {} temp(s) cannot hold self plus {} argument(s)",
                    locals.len(),
                    args.len()
                ),
            });
        }
        locals[0] = recv;
        locals[1..=args.len()].copy_from_slice(args);
        if let Some(p) = &mut self.profile {
            p.method_calls[method.index()] += 1;
        }
        if self.profile.is_some() || self.sanitizer.is_some() {
            self.mstack.push(method);
        }
        // A child constructor starting on an interior receiver marks its
        // region constructed: from this point the child object exists in
        // baseline semantics (`new` allocates before `init` runs), so its
        // unset fields read as legal nil, not poison.
        if self.sanitizer.is_some() {
            if let Value::Interior { obj, index, layout } = recv {
                let lid = layout.index() as u32;
                let child = self.layouts[lid as usize].child_class;
                if self
                    .init_sym
                    .and_then(|s| self.program.lookup_method(child, s))
                    == Some(method)
                {
                    if let Some(san) = &mut self.sanitizer {
                        san.on_ctor_enter(&self.layouts, &self.heap, obj, index, lid);
                    }
                }
            }
        }
        self.frames.push(Frame {
            method,
            bb: m.entry(),
            ip: 0,
            locals,
            ret,
        });
        Ok(())
    }

    /// Drives the frame stack until the program finishes, traps, or
    /// `quota` dispatches have been spent.
    ///
    /// This loop is the fuel/limit checkpoint: every dispatch — each
    /// instruction *and* each block terminator — decrements `quota`
    /// exactly once (the caller fuses the fuel slice with the remaining
    /// `max_instructions` budget), `max_depth` is enforced at the one
    /// frame-push site and `max_heap_words` at the one allocation site —
    /// there are no other limit branches. Terminators must be metered:
    /// a cycle of empty blocks (jump/branch only, zero instructions)
    /// would otherwise spin forever without ever touching the quota,
    /// escaping both `max_instructions` and fuel slicing.
    fn drive(&mut self, quota: &mut u64) -> Result<StepEnd, VmError> {
        'outer: while !self.frames.is_empty() {
            let top = self.frames.len() - 1;
            let (mid, mut bb, mut ip) = {
                let f = &self.frames[top];
                (f.method, f.bb, f.ip)
            };
            // Locals move out of the parked frame for the duration of the
            // activation so dispatch can borrow them alongside `self`.
            let mut locals = std::mem::take(&mut self.frames[top].locals);
            let method = &self.program.methods[mid];
            loop {
                let block = &method.blocks[bb];
                while ip < block.instrs.len() {
                    if *quota == 0 {
                        let f = &mut self.frames[top];
                        f.bb = bb;
                        f.ip = ip;
                        f.locals = locals;
                        return Ok(StepEnd::OutOfFuel);
                    }
                    *quota -= 1;
                    self.metrics.instructions += 1;
                    if self.config.test_spin_per_instr > 0 {
                        for i in 0..self.config.test_spin_per_instr {
                            std::hint::black_box(i);
                        }
                    }
                    let instr = &block.instrs[ip];
                    if let Some(p) = &mut self.profile {
                        let op = opcode_index(instr);
                        p.opcode_counts[op] += 1;
                        self.cur_op = op;
                    }
                    ip += 1;
                    match self.exec(instr, &mut locals)? {
                        Flow::Continue => {}
                        Flow::Call {
                            method,
                            recv,
                            argv,
                            ret,
                        } => {
                            let f = &mut self.frames[top];
                            f.bb = bb;
                            f.ip = ip;
                            f.locals = locals;
                            self.push_frame(method, recv, &argv, ret)?;
                            continue 'outer;
                        }
                    }
                }
                if *quota == 0 {
                    let f = &mut self.frames[top];
                    f.bb = bb;
                    f.ip = ip;
                    f.locals = locals;
                    return Ok(StepEnd::OutOfFuel);
                }
                *quota -= 1;
                if let Some(p) = &mut self.profile {
                    p.opcode_counts[OP_BRANCH] += 1;
                    self.cur_op = OP_BRANCH;
                }
                self.charge(self.config.cost.branch);
                match block.term {
                    Terminator::Jump(next) => {
                        bb = next;
                        ip = 0;
                    }
                    Terminator::Branch {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let c = self.expect_bool(locals[cond.index()], "branch condition")?;
                        bb = if c { then_bb } else { else_bb };
                        ip = 0;
                    }
                    Terminator::Return(t) => {
                        let v = locals[t.index()];
                        let ret = self.frames.pop().and_then(|f| f.ret);
                        if self.profile.is_some() || self.sanitizer.is_some() {
                            self.mstack.pop();
                        }
                        match self.frames.last_mut() {
                            Some(parent) => {
                                if let Some(dst) = ret {
                                    parent.locals[dst.index()] = v;
                                }
                            }
                            None => return Ok(StepEnd::Done),
                        }
                        continue 'outer;
                    }
                    Terminator::Unterminated => {
                        // The verifier rejects unterminated reachable
                        // blocks; reaching one means the program was never
                        // verified.
                        return Err(VmError::Internal {
                            context: "executed an unterminated block".to_owned(),
                        });
                    }
                }
            }
        }
        Ok(StepEnd::Done)
    }

    fn exec(&mut self, instr: &Instr, locals: &mut [Value]) -> Result<Flow, VmError> {
        let get = |t: Temp, locals: &[Value]| locals[t.index()];
        match instr {
            Instr::Const { dst, value } => {
                self.charge(self.config.cost.mov);
                locals[dst.index()] = match *value {
                    ConstValue::Int(n) => Value::Int(n),
                    ConstValue::Float(x) => Value::Float(x),
                    ConstValue::Bool(b) => Value::Bool(b),
                    ConstValue::Nil => Value::Nil,
                    ConstValue::Str(s) => Value::Str(s),
                };
            }
            Instr::Move { dst, src } => {
                self.charge(self.config.cost.mov);
                locals[dst.index()] = get(*src, locals);
            }
            Instr::Unary { dst, op, src } => {
                let v = get(*src, locals);
                locals[dst.index()] = self.eval_unary(*op, v)?;
            }
            Instr::Binary { dst, op, lhs, rhs } => {
                let l = get(*lhs, locals);
                let r = get(*rhs, locals);
                locals[dst.index()] = self.eval_binary(*op, l, r)?;
            }
            Instr::New {
                dst,
                class,
                args,
                site,
            } => {
                let id = self.alloc_instance(*class, *site)?;
                locals[dst.index()] = Value::Obj(id);
                if let Some(init) = self
                    .init_sym
                    .and_then(|s| self.program.lookup_method(*class, s))
                {
                    // Raw allocations (constructor explosion) call init
                    // explicitly; skip the implicit call.
                    if self.program.methods[init].param_count as usize != args.len() {
                        return Ok(Flow::Continue);
                    }
                    let argv: Vec<Value> = args.iter().map(|&a| get(a, locals)).collect();
                    self.metrics.static_calls += 1;
                    self.charge(
                        self.config.cost.static_call
                            + self.config.cost.call_arg * argv.len() as u64,
                    );
                    return Ok(Flow::Call {
                        method: init,
                        recv: Value::Obj(id),
                        argv,
                        ret: None,
                    });
                }
            }
            Instr::NewArray { dst, len, site } => {
                let n = self.expect_int(get(*len, locals), "array length")?;
                if n < 0 {
                    return Err(VmError::TypeError {
                        expected: "non-negative array length".to_owned(),
                        found: n.to_string(),
                    });
                }
                let id = self.alloc_array(ObjKind::Array, n as usize, *site)?;
                locals[dst.index()] = Value::Obj(id);
            }
            Instr::NewArrayInline {
                dst,
                len,
                layout,
                site,
            } => {
                let n = self.expect_int(get(*len, locals), "array length")?;
                if n < 0 {
                    return Err(VmError::TypeError {
                        expected: "non-negative array length".to_owned(),
                        found: n.to_string(),
                    });
                }
                let lid = layout.index() as u32;
                let width = self.layouts[lid as usize].child_fields.len();
                let id = self.alloc_array(
                    ObjKind::ArrayInline {
                        layout: lid,
                        len: n as usize,
                    },
                    n as usize * width,
                    *site,
                )?;
                locals[dst.index()] = Value::Obj(id);
            }
            Instr::GetField { dst, obj, field } => {
                locals[dst.index()] = self.get_field(get(*obj, locals), *field)?;
            }
            Instr::SetField { obj, field, src } => {
                self.set_field(get(*obj, locals), *field, get(*src, locals))?;
            }
            Instr::ArrayGet { dst, arr, idx } => {
                locals[dst.index()] = self.array_get(get(*arr, locals), get(*idx, locals))?;
            }
            Instr::ArraySet { arr, idx, src } => {
                self.array_set(get(*arr, locals), get(*idx, locals), get(*src, locals))?;
            }
            Instr::GetGlobal { dst, global } => {
                // Globals live in a dedicated segment; model the load.
                self.mem_read((1 << 40) + global.index() as u64 * crate::heap::WORD);
                locals[dst.index()] = self.globals[global.index()];
            }
            Instr::SetGlobal { global, src } => {
                self.mem_write((1 << 40) + global.index() as u64 * crate::heap::WORD);
                self.globals[global.index()] = get(*src, locals);
            }
            Instr::Send {
                dst,
                recv,
                selector,
                args,
            } => {
                let r = get(*recv, locals);
                let class = self.class_of(r).ok_or_else(|| match r {
                    Value::Nil => VmError::NilDereference {
                        context: format!("send of `{}`", self.program.interner.resolve(*selector)),
                    },
                    other => VmError::TypeError {
                        expected: "object receiver".to_owned(),
                        found: other.type_name().to_owned(),
                    },
                })?;
                let target = self
                    .program
                    .lookup_method(class, *selector)
                    .ok_or_else(|| VmError::NoSuchMethod {
                        class: self.class_name(class),
                        selector: self.program.interner.resolve(*selector).to_owned(),
                    })?;
                let argv: Vec<Value> = args.iter().map(|&a| get(a, locals)).collect();
                self.metrics.dyn_dispatches += 1;
                self.charge(
                    self.config.cost.dyn_dispatch + self.config.cost.call_arg * argv.len() as u64,
                );
                return Ok(Flow::Call {
                    method: target,
                    recv: r,
                    argv,
                    ret: Some(*dst),
                });
            }
            Instr::CallStatic {
                dst,
                method,
                recv,
                args,
            } => {
                let r = get(*recv, locals);
                let argv: Vec<Value> = args.iter().map(|&a| get(a, locals)).collect();
                self.metrics.static_calls += 1;
                self.charge(
                    self.config.cost.static_call + self.config.cost.call_arg * argv.len() as u64,
                );
                return Ok(Flow::Call {
                    method: *method,
                    recv: r,
                    argv,
                    ret: Some(*dst),
                });
            }
            Instr::CallBuiltin { dst, builtin, args } => {
                let argv: Vec<Value> = args.iter().map(|&a| get(a, locals)).collect();
                locals[dst.index()] = self.eval_builtin(*builtin, &argv)?;
            }
            Instr::MakeInterior { dst, obj, layout } => {
                self.metrics.interior_refs += 1;
                self.charge(self.config.cost.lea);
                let v = match get(*obj, locals) {
                    Value::Obj(o) => Value::Interior {
                        obj: o,
                        index: 0,
                        layout: *layout,
                    },
                    Value::Interior {
                        obj,
                        index,
                        layout: outer,
                    } => {
                        let composed = self.compose(outer.index() as u32, *layout);
                        Value::Interior {
                            obj,
                            index,
                            layout: LayoutId::new(composed as usize),
                        }
                    }
                    Value::Nil => {
                        return Err(VmError::NilDereference {
                            context: "interior reference".to_owned(),
                        });
                    }
                    other => {
                        return Err(VmError::TypeError {
                            expected: "object container".to_owned(),
                            found: other.type_name().to_owned(),
                        });
                    }
                };
                locals[dst.index()] = v;
                if self.sanitizer.is_some() {
                    if let Value::Interior { obj, index, layout } = v {
                        self.sanitize_interior(obj, index, layout.index() as u32, "MakeInterior");
                    }
                }
            }
            Instr::MakeInteriorElem {
                dst,
                arr,
                idx,
                layout,
            } => {
                self.metrics.interior_refs += 1;
                self.charge(self.config.cost.lea);
                let a = get(*arr, locals);
                let i = self.expect_int(get(*idx, locals), "inline element index")?;
                let Value::Obj(o) = a else {
                    return Err(match a {
                        Value::Nil => VmError::NilDereference {
                            context: "interior array reference".to_owned(),
                        },
                        other => VmError::TypeError {
                            expected: "array container".to_owned(),
                            found: other.type_name().to_owned(),
                        },
                    });
                };
                let len = self.heap.get(o).array_len().unwrap_or(0);
                if i < 0 || i as usize >= len {
                    return Err(VmError::IndexOutOfBounds { index: i, len });
                }
                locals[dst.index()] = Value::Interior {
                    obj: o,
                    index: i as u32,
                    layout: *layout,
                };
                if self.sanitizer.is_some() {
                    self.sanitize_interior(o, i as u32, layout.index() as u32, "MakeInteriorElem");
                }
            }
            Instr::Print { src } => {
                self.charge(self.config.cost.print);
                let text = self.format_value(get(*src, locals));
                self.output.push_str(&text);
                self.output.push('\n');
            }
        }
        Ok(Flow::Continue)
    }

    // -- arrays ---------------------------------------------------------------

    fn array_get(&mut self, arr: Value, idx: Value) -> Result<Value, VmError> {
        let i = self.expect_int(idx, "array index")?;
        let Value::Obj(o) = arr else {
            return Err(match arr {
                Value::Nil => VmError::NilDereference {
                    context: "array indexing".to_owned(),
                },
                other => VmError::TypeError {
                    expected: "array".to_owned(),
                    found: other.type_name().to_owned(),
                },
            });
        };
        match self.heap.get(o).kind {
            ObjKind::Array => {
                let len = self.heap.get(o).slots.len();
                if i < 0 || i as usize >= len {
                    return Err(VmError::IndexOutOfBounds { index: i, len });
                }
                let addr = self.heap.get(o).slot_addr(i as usize);
                self.mem_read(addr);
                Ok(self.heap.get(o).slots[i as usize])
            }
            ObjKind::ArrayInline { layout, len } => {
                if i < 0 || i as usize >= len {
                    return Err(VmError::IndexOutOfBounds { index: i, len });
                }
                // Whole-element read of an inline array degrades gracefully
                // to an interior reference (address arithmetic).
                self.metrics.interior_refs += 1;
                self.charge(self.config.cost.lea);
                if self.sanitizer.is_some() {
                    self.sanitize_interior(o, i as u32, layout, "ArrayGet");
                }
                Ok(Value::Interior {
                    obj: o,
                    index: i as u32,
                    layout: LayoutId::new(layout as usize),
                })
            }
            ObjKind::Instance(c) => Err(VmError::TypeError {
                expected: "array".to_owned(),
                found: format!("instance of {}", self.class_name(c)),
            }),
        }
    }

    fn array_set(&mut self, arr: Value, idx: Value, value: Value) -> Result<(), VmError> {
        let i = self.expect_int(idx, "array index")?;
        let Value::Obj(o) = arr else {
            return Err(match arr {
                Value::Nil => VmError::NilDereference {
                    context: "array store".to_owned(),
                },
                other => VmError::TypeError {
                    expected: "array".to_owned(),
                    found: other.type_name().to_owned(),
                },
            });
        };
        match self.heap.get(o).kind {
            ObjKind::Array => {
                let len = self.heap.get(o).slots.len();
                if i < 0 || i as usize >= len {
                    return Err(VmError::IndexOutOfBounds { index: i, len });
                }
                let addr = self.heap.get(o).slot_addr(i as usize);
                self.mem_write(addr);
                self.heap.get_mut(o).slots[i as usize] = value;
                Ok(())
            }
            ObjKind::ArrayInline { layout, len } => {
                if i < 0 || i as usize >= len {
                    return Err(VmError::IndexOutOfBounds { index: i, len });
                }
                // Whole-element store: copy the child's fields into the
                // element's inline state (assignment specialization's
                // runtime meaning — paper §5.4).
                if self.sanitizer.is_some() {
                    self.sanitize_interior(o, i as u32, layout, "ArraySet");
                }
                let fields = self.layouts[layout as usize].child_fields.clone();
                for (j, f) in fields.iter().enumerate() {
                    let v = self.get_field(value, *f)?;
                    let slot = self.interior_slot(layout, i as u32, j, len);
                    if self.sanitizer.is_some() {
                        self.checked_access(o, i as u32, layout, j, slot, false, "ArraySet")?;
                    }
                    let addr = self.heap.get(o).slot_addr(slot);
                    let hit = self.mem_write(addr);
                    self.note_inline_access(hit);
                    self.heap.get_mut(o).slots[slot] = v;
                }
                Ok(())
            }
            ObjKind::Instance(c) => Err(VmError::TypeError {
                expected: "array".to_owned(),
                found: format!("instance of {}", self.class_name(c)),
            }),
        }
    }

    // -- operators --------------------------------------------------------------

    fn eval_unary(&mut self, op: UnOp, v: Value) -> Result<Value, VmError> {
        match op {
            UnOp::Neg => match v {
                Value::Int(n) => {
                    self.charge(self.config.cost.arith);
                    Ok(Value::Int(-n))
                }
                Value::Float(x) => {
                    self.charge(self.config.cost.float_arith);
                    Ok(Value::Float(-x))
                }
                other => Err(VmError::TypeError {
                    expected: "number for negation".to_owned(),
                    found: other.type_name().to_owned(),
                }),
            },
            UnOp::Not => {
                self.charge(self.config.cost.arith);
                let b = self.expect_bool(v, "logical not")?;
                Ok(Value::Bool(!b))
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, VmError> {
        use BinOp::*;
        match op {
            Add | Sub | Mul | Div | Rem => self.eval_arith(op, l, r),
            Lt | Le | Gt | Ge => self.eval_compare(op, l, r),
            Eq | Ne => {
                self.charge(self.config.cost.arith);
                let same = match (l, r) {
                    (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                        a as f64 == b
                    }
                    _ => l.identical(r),
                };
                if !same && self.sanitizer.is_some() {
                    self.sanitize_identity(l, r);
                }
                Ok(Value::Bool(if op == Eq { same } else { !same }))
            }
            RefEq => {
                self.charge(self.config.cost.arith);
                let same = l.identical(r);
                if !same && self.sanitizer.is_some() {
                    self.sanitize_identity(l, r);
                }
                Ok(Value::Bool(same))
            }
        }
    }

    fn eval_arith(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, VmError> {
        use BinOp::*;
        match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                self.charge(self.config.cost.arith);
                Ok(Value::Int(match op {
                    Add => a.wrapping_add(b),
                    Sub => a.wrapping_sub(b),
                    Mul => a.wrapping_mul(b),
                    Div => {
                        if b == 0 {
                            return Err(VmError::DivisionByZero);
                        }
                        a.wrapping_div(b)
                    }
                    Rem => {
                        if b == 0 {
                            return Err(VmError::DivisionByZero);
                        }
                        a.wrapping_rem(b)
                    }
                    op => {
                        return Err(VmError::Internal {
                            context: format!("{op:?} dispatched to integer arithmetic"),
                        })
                    }
                }))
            }
            (Value::Float(_), _) | (_, Value::Float(_)) => {
                let a = self.as_float(l)?;
                let b = self.as_float(r)?;
                self.charge(self.config.cost.float_arith);
                Ok(Value::Float(match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Rem => a % b,
                    op => {
                        return Err(VmError::Internal {
                            context: format!("{op:?} dispatched to float arithmetic"),
                        })
                    }
                }))
            }
            _ => Err(VmError::TypeError {
                expected: "numbers for arithmetic".to_owned(),
                found: format!("{} and {}", l.type_name(), r.type_name()),
            }),
        }
    }

    fn eval_compare(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, VmError> {
        use BinOp::*;
        let ord = match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                self.charge(self.config.cost.arith);
                a.partial_cmp(&b)
            }
            _ => {
                let a = self.as_float(l)?;
                let b = self.as_float(r)?;
                self.charge(self.config.cost.float_arith);
                a.partial_cmp(&b)
            }
        };
        let Some(ord) = ord else {
            // NaN comparisons are false.
            return Ok(Value::Bool(false));
        };
        Ok(Value::Bool(match op {
            Lt => ord.is_lt(),
            Le => ord.is_le(),
            Gt => ord.is_gt(),
            Ge => ord.is_ge(),
            op => {
                return Err(VmError::Internal {
                    context: format!("{op:?} dispatched to comparison"),
                })
            }
        }))
    }

    fn as_float(&self, v: Value) -> Result<f64, VmError> {
        match v {
            Value::Int(n) => Ok(n as f64),
            Value::Float(x) => Ok(x),
            other => Err(VmError::TypeError {
                expected: "number".to_owned(),
                found: other.type_name().to_owned(),
            }),
        }
    }

    fn eval_builtin(&mut self, builtin: Builtin, args: &[Value]) -> Result<Value, VmError> {
        // Every builtin is unary; lowering guarantees the arity, but
        // hand-mutated IR must degrade to an error, not an index panic.
        let [arg] = args else {
            return Err(VmError::Internal {
                context: format!("builtin called with {} argument(s)", args.len()),
            });
        };
        let arg = *arg;
        match builtin {
            Builtin::Sqrt => {
                self.charge(self.config.cost.sqrt);
                Ok(Value::Float(self.as_float(arg)?.sqrt()))
            }
            Builtin::Len => {
                let Value::Obj(o) = arg else {
                    return Err(VmError::TypeError {
                        expected: "array for len".to_owned(),
                        found: arg.type_name().to_owned(),
                    });
                };
                let len = self
                    .heap
                    .get(o)
                    .array_len()
                    .ok_or_else(|| VmError::TypeError {
                        expected: "array for len".to_owned(),
                        found: "object".to_owned(),
                    })?;
                // Length lives in the header word.
                let addr = self.heap.get(o).addr;
                self.mem_read(addr);
                Ok(Value::Int(len as i64))
            }
            Builtin::ToFloat => {
                self.charge(self.config.cost.arith);
                Ok(Value::Float(self.as_float(arg)?))
            }
            Builtin::ToInt => {
                self.charge(self.config.cost.arith);
                match arg {
                    Value::Int(n) => Ok(Value::Int(n)),
                    Value::Float(x) => Ok(Value::Int(x as i64)),
                    other => Err(VmError::TypeError {
                        expected: "number for int()".to_owned(),
                        found: other.type_name().to_owned(),
                    }),
                }
            }
        }
    }

    /// Deterministic, identity-free value formatting so baseline and
    /// transformed programs print byte-identical output.
    fn format_value(&self, v: Value) -> String {
        match v {
            Value::Int(n) => n.to_string(),
            Value::Float(x) => format!("{x:?}"),
            Value::Bool(b) => b.to_string(),
            Value::Nil => "nil".to_owned(),
            Value::Str(s) => self.program.interner.resolve(s).to_owned(),
            Value::Obj(o) => match self.heap.get(o).kind {
                ObjKind::Instance(c) => format!("<{}>", self.class_name(c)),
                ObjKind::Array => format!("<array[{}]>", self.heap.get(o).slots.len()),
                ObjKind::ArrayInline { len, .. } => format!("<array[{len}]>"),
            },
            Value::Interior { layout, .. } => {
                format!(
                    "<{}>",
                    self.class_name(self.layouts[layout.index()].child_class)
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oi_ir::lower::compile;

    fn run_src(src: &str) -> RunResult {
        let p = compile(src).unwrap();
        oi_ir::verify::verify(&p).unwrap();
        run(&p, &VmConfig::default()).unwrap()
    }

    #[test]
    fn arithmetic_and_print() {
        assert_eq!(run_src("fn main() { print 2 + 3 * 4; }").output, "14\n");
        assert_eq!(run_src("fn main() { print 7 / 2; }").output, "3\n");
        assert_eq!(run_src("fn main() { print 7.0 / 2.0; }").output, "3.5\n");
        assert_eq!(run_src("fn main() { print 7 % 3; }").output, "1\n");
        assert_eq!(run_src("fn main() { print -5; }").output, "-5\n");
    }

    #[test]
    fn float_formatting_is_debug_style() {
        assert_eq!(run_src("fn main() { print 2.0; }").output, "2.0\n");
        assert_eq!(run_src("fn main() { print 2.5; }").output, "2.5\n");
    }

    #[test]
    fn comparisons_and_booleans() {
        assert_eq!(run_src("fn main() { print 1 < 2; }").output, "true\n");
        assert_eq!(run_src("fn main() { print 1 == 1.0; }").output, "true\n");
        assert_eq!(run_src("fn main() { print !(1 >= 2); }").output, "true\n");
    }

    #[test]
    fn control_flow_loops() {
        let out = run_src(
            "fn main() { var i = 0; var sum = 0;
               while (i < 5) { sum = sum + i; i = i + 1; }
               print sum; }",
        );
        assert_eq!(out.output, "10\n");
    }

    #[test]
    fn objects_fields_and_methods() {
        let out = run_src(
            "class Point { field x; field y;
               method init(a, b) { self.x = a; self.y = b; }
               method abs() { return sqrt(self.x * self.x + self.y * self.y); }
             }
             fn main() { var p = new Point(3.0, 4.0); print p.abs(); }",
        );
        assert_eq!(out.output, "5.0\n");
        assert!(out.metrics.allocations >= 1);
        assert!(out.metrics.dyn_dispatches >= 1);
    }

    #[test]
    fn inheritance_and_override() {
        let out = run_src(
            "class A { method tag() { return 1; } method describe() { return self.tag() * 10; } }
             class B : A { method tag() { return 2; } }
             fn main() { var a = new A(); var b = new B(); print a.describe(); print b.describe(); }",
        );
        assert_eq!(out.output, "10\n20\n");
    }

    #[test]
    fn arrays_work() {
        let out = run_src(
            "fn main() {
               var a = array(3);
               a[0] = 5; a[1] = 6; a[2] = 7;
               print a[0] + a[1] + a[2];
               print len(a);
             }",
        );
        assert_eq!(out.output, "18\n3\n");
    }

    #[test]
    fn globals_persist_across_calls() {
        let out = run_src(
            "global G;
             fn bump() { G = G + 1; return G; }
             fn main() { G = 0; bump(); bump(); print bump(); }",
        );
        assert_eq!(out.output, "3\n");
    }

    #[test]
    fn identity_semantics() {
        let out = run_src(
            "class P { field x; }
             fn main() {
               var a = new P(); var b = new P(); var c = a;
               print a === b; print a === c; print a === nil;
             }",
        );
        assert_eq!(out.output, "false\ntrue\nfalse\n");
    }

    #[test]
    fn nil_dereference_is_reported() {
        let p = compile("fn main() { var x = nil; print x.f; }").unwrap();
        let err = run(&p, &VmConfig::default()).unwrap_err();
        assert!(matches!(err, VmError::NilDereference { .. }));
    }

    #[test]
    fn missing_method_is_reported() {
        let p = compile("class A { } fn main() { var a = new A(); a.nope(); }").unwrap();
        let err = run(&p, &VmConfig::default()).unwrap_err();
        assert_eq!(
            err,
            VmError::NoSuchMethod {
                class: "A".into(),
                selector: "nope".into()
            }
        );
    }

    #[test]
    fn index_bounds_checked() {
        let p = compile("fn main() { var a = array(2); print a[5]; }").unwrap();
        let err = run(&p, &VmConfig::default()).unwrap_err();
        assert_eq!(err, VmError::IndexOutOfBounds { index: 5, len: 2 });
    }

    #[test]
    fn division_by_zero_reported() {
        let p = compile("fn main() { print 1 / 0; }").unwrap();
        assert_eq!(
            run(&p, &VmConfig::default()).unwrap_err(),
            VmError::DivisionByZero
        );
    }

    #[test]
    fn instruction_limit_enforced() {
        let p = compile("fn main() { while (true) { } }").unwrap();
        let config = VmConfig {
            max_instructions: 10_000,
            ..Default::default()
        };
        assert_eq!(run(&p, &config).unwrap_err(), VmError::InstructionLimit);
    }

    #[test]
    fn recursion_depth_limited() {
        let p = compile("fn f(n) { return f(n + 1); } fn main() { print f(0); }").unwrap();
        let config = VmConfig {
            max_depth: 64,
            ..Default::default()
        };
        assert_eq!(run(&p, &config).unwrap_err(), VmError::StackOverflow);
    }

    #[test]
    fn heap_word_limit_enforced() {
        let p = compile(
            "class C { field a; field b; }
             fn main() { var i = 0; while (i < 100) { var c = new C(); i = i + 1; } print i; }",
        )
        .unwrap();
        let config = VmConfig {
            max_heap_words: 64,
            ..Default::default()
        };
        assert_eq!(run(&p, &config).unwrap_err(), VmError::OutOfMemory);
    }

    #[test]
    fn unverified_unterminated_block_errors_instead_of_panicking() {
        let mut p = compile("fn main() { print 1; }").unwrap();
        let entry = p.entry;
        let bb = p.methods[entry].entry();
        p.methods[entry].blocks[bb].term = oi_ir::Terminator::Unterminated;
        let err = run(&p, &VmConfig::default()).unwrap_err();
        assert!(matches!(err, VmError::Internal { .. }), "{err}");
    }

    #[test]
    fn unverified_undersized_frame_errors_instead_of_panicking() {
        let mut p = compile("fn f(a, b) { return a + b; } fn main() { print f(1, 2); }").unwrap();
        // Shrink the callee's frame below self + params.
        let f = p.method_by_name("$Main", "f").unwrap();
        p.methods[f].temp_count = 1;
        let err = run(&p, &VmConfig::default()).unwrap_err();
        assert!(matches!(err, VmError::Internal { .. }), "{err}");
    }

    #[test]
    fn recursion_works_within_limits() {
        assert_eq!(
            run_src("fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); } fn main() { print fact(10); }")
                .output,
            "3628800\n"
        );
    }

    #[test]
    fn metrics_count_memory_traffic() {
        let m = run_src(
            "class C { field v; }
             fn main() { var c = new C(); c.v = 1; print c.v; }",
        )
        .metrics;
        assert!(m.heap_reads >= 1);
        assert!(m.heap_writes >= 1);
        assert_eq!(m.allocations, 1);
        assert!(m.cycles > 0);
    }

    #[test]
    fn cons_list_program() {
        let out = run_src(
            "class Cons { field head; field tail;
               method init(h, t) { self.head = h; self.tail = t; }
             }
             fn sum(l) { var total = 0; var cur = l;
               while (!(cur === nil)) { total = total + cur.head; cur = cur.tail; }
               return total; }
             fn main() {
               var l = new Cons(1, new Cons(2, new Cons(3, nil)));
               print sum(l);
             }",
        );
        assert_eq!(out.output, "6\n");
    }

    #[test]
    fn string_printing() {
        assert_eq!(run_src("fn main() { print \"hello\"; }").output, "hello\n");
    }
}

#[cfg(test)]
mod census_tests {
    use super::*;
    use oi_ir::lower::compile;

    #[test]
    fn census_counts_by_class() {
        let p = compile(
            "class A { } class B { }
             fn main() {
               var x = new A(); var y = new A(); var z = new B();
               var arr = array(3);
               print 1;
             }",
        )
        .unwrap();
        let r = run(&p, &VmConfig::default()).unwrap();
        assert_eq!(r.allocations_of("A"), 2);
        assert_eq!(r.allocations_of("B"), 1);
        assert_eq!(r.allocations_of("<array>"), 1);
        assert_eq!(r.allocations_of("Nope"), 0);
        // Census is sorted by descending count.
        assert!(r.allocation_census.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn heap_census_resolves_names_and_matches_metrics() {
        let p = compile(
            "class A { field x; } class B { }
             fn main() {
               var x = new A(); var y = new A(); var z = new B();
               var arr = array(3);
               print 1;
             }",
        )
        .unwrap();
        let r = run(&p, &VmConfig::default()).unwrap();
        let census = &r.heap_census;
        assert_eq!(census.total_objects, 4);
        assert_eq!(census.total_words, r.metrics.words_allocated);
        // Default config pays 2 header words per object.
        assert_eq!(census.header_words, 4 * 2);
        let a = census.classes.iter().find(|e| e.class == "A").unwrap();
        assert_eq!(a.count, 2);
        assert_eq!(a.words, 2 * (1 + 2), "one slot + two header words each");
        assert!(census.classes.iter().any(|e| e.class == "<array>"));
        // Sorted by descending word footprint.
        assert!(census.classes.windows(2).all(|w| w[0].words >= w[1].words));
    }

    #[test]
    fn words_allocated_agrees_with_heap_even_with_zero_header_config() {
        // The heap clamps a configured overhead of 0 up to 1 word; the
        // metrics must follow the heap's accounting, not the raw config.
        let p = compile(
            "class A { field x; }
             fn main() { var a = new A(); var arr = array(5); print 1; }",
        )
        .unwrap();
        for header in [0, 1, 2, 3] {
            let config = VmConfig {
                alloc_header_words: header,
                ..Default::default()
            };
            let r = run(&p, &config).unwrap();
            assert_eq!(
                r.metrics.words_allocated, r.heap_census.total_words,
                "metrics vs heap accounting drifted at alloc_header_words = {header}"
            );
        }
    }

    #[test]
    fn heap_census_json_is_schema_stable() {
        use oi_support::Json;
        let p = compile("class A { } fn main() { var a = new A(); print 1; }").unwrap();
        let r = run(&p, &VmConfig::default()).unwrap();
        let doc = Json::parse(&r.heap_census.to_json().to_string()).unwrap();
        for key in [
            "classes",
            "total_objects",
            "total_words",
            "header_words",
            "inline_elements",
        ] {
            assert!(doc.get(key).is_some(), "heap_census.{key} missing");
        }
        let rows = doc.get("classes").and_then(Json::as_arr).unwrap();
        assert!(rows
            .iter()
            .any(|e| e.get("class").and_then(Json::as_str) == Some("A")));
    }

    #[test]
    fn profiling_attributes_every_cycle_and_allocation() {
        let p = compile(
            "class P { field x; method init(a) { self.x = a; }
               method get() { return self.x; }
             }
             fn main() {
               var i = 0;
               var s = 0;
               while (i < 10) { var q = new P(i); s = s + q.get(); i = i + 1; }
               print s;
             }",
        )
        .unwrap();
        let config = VmConfig {
            profile: true,
            ..Default::default()
        };
        let r = run(&p, &config).unwrap();
        let prof = r.profile.expect("profile requested");
        // Attribution is exhaustive: self cycles and site allocations sum
        // to the global metrics.
        let cycles: u64 = prof.methods.iter().map(|m| m.cycles).sum();
        assert_eq!(cycles, r.metrics.cycles);
        let misses: u64 = prof.methods.iter().map(|m| m.cache_misses).sum();
        assert_eq!(misses, r.metrics.cache_misses);
        let allocs: u64 = prof.sites.iter().map(|s| s.allocations).sum();
        assert_eq!(allocs, r.metrics.allocations);
        let hot = prof.sites.first().expect("one hot site");
        assert_eq!(hot.class, "P");
        assert_eq!(hot.allocations, 10);
        assert!(prof
            .methods
            .iter()
            .any(|m| m.name.ends_with("::get") && m.calls == 10));
        // The opcode histogram is exhaustive too: every executed
        // instruction lands in a real opcode bucket, every charged cycle
        // in some bucket (real or pseudo).
        let op_count: u64 = prof
            .opcodes
            .iter()
            .filter(|o| o.name != "branch" && o.name != "other")
            .map(|o| o.count)
            .sum();
        assert_eq!(op_count, r.metrics.instructions);
        let op_cycles: u64 = prof.opcodes.iter().map(|o| o.cycles).sum();
        assert_eq!(op_cycles, r.metrics.cycles);
        // Access sites attribute the field traffic: `P.x` is read by
        // `get()` ten times and written by `init()` ten times.
        let px = prof
            .accesses
            .iter()
            .find(|a| a.class == "P" && a.field == "x" && !a.interior)
            .expect("P.x access site");
        assert_eq!((px.reads, px.writes), (10, 10));
        assert!(px.cycles > 0);
        // And the baseline path carries no profile.
        let r2 = run(&p, &VmConfig::default()).unwrap();
        assert!(r2.profile.is_none());
    }

    #[test]
    fn test_spin_never_perturbs_metrics() {
        let p = compile(
            "class P { field x; method init(a) { self.x = a; } }
             fn main() {
               var i = 0;
               while (i < 5) { var q = new P(i); print q.x; i = i + 1; }
             }",
        )
        .unwrap();
        let plain = run(&p, &VmConfig::default()).unwrap();
        let slowed = run(
            &p,
            &VmConfig {
                test_spin_per_instr: 50,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(plain.metrics, slowed.metrics);
        assert_eq!(plain.output, slowed.output);
    }

    /// Drives a session to completion in fixed fuel slices, returning the
    /// result plus the number of yields and the summed per-slice fuel.
    fn run_sliced(p: &Program, config: &VmConfig, slice: u64) -> (RunResult, u64, u64) {
        let mut session = VmSession::new(p, config).unwrap();
        let (mut yields, mut fuel) = (0u64, 0u64);
        loop {
            match session.run_fuel(p, slice) {
                FuelOutcome::Yielded { fuel_spent } => {
                    assert!(fuel_spent <= slice);
                    yields += 1;
                    fuel += fuel_spent;
                }
                FuelOutcome::Done { fuel_spent, result } => {
                    fuel += fuel_spent;
                    assert!(session.is_finished());
                    assert_eq!(session.instructions_executed(), fuel);
                    return (*result, yields, fuel);
                }
                FuelOutcome::Trapped { error, .. } => panic!("trapped: {error}"),
            }
        }
    }

    #[test]
    fn fuel_slicing_is_observationally_identical_to_one_shot() {
        let p = compile(
            "class P { field x; field y;
               method init(a, b) { self.x = a; self.y = b; }
               method sum() { return self.x + self.y; } }
             fn main() {
               var i = 0; var acc = 0;
               while (i < 40) { var q = new P(i, i * 2); acc = acc + q.sum(); i = i + 1; }
               print acc;
             }",
        )
        .unwrap();
        let config = VmConfig::default();
        let oneshot = run(&p, &config).unwrap();
        // The one-shot fuel total: dispatches (instructions plus block
        // terminators), which is what every sliced run must reconcile to.
        let mut one = VmSession::new(&p, &config).unwrap();
        let FuelOutcome::Done {
            fuel_spent: oneshot_fuel,
            ..
        } = one.run_fuel(&p, u64::MAX)
        else {
            panic!("one-shot session must complete");
        };
        assert!(
            oneshot_fuel > oneshot.metrics.instructions,
            "fuel counts terminators on top of instructions"
        );
        for slice in [1, 7, 64] {
            let (sliced, yields, fuel) = run_sliced(&p, &config, slice);
            assert_eq!(sliced.output, oneshot.output, "slice {slice}");
            assert_eq!(sliced.metrics, oneshot.metrics, "slice {slice}");
            assert_eq!(sliced.allocation_census, oneshot.allocation_census);
            assert_eq!(fuel, oneshot_fuel, "fuel reconciles");
            assert!(yields > 0, "slice {slice} should preempt at least once");
        }
    }

    #[test]
    fn fuel_slicing_preserves_checked_and_profiled_runs() {
        let p = compile(
            "class P { field x; method init(a) { self.x = a; } }
             fn main() {
               var i = 0;
               while (i < 6) { var q = new P(i); print q.x; i = i + 1; }
             }",
        )
        .unwrap();
        let config = VmConfig {
            profile: true,
            checked: CheckLevel::Full,
            ..Default::default()
        };
        let oneshot = run(&p, &config).unwrap();
        let (sliced, _, _) = run_sliced(&p, &config, 5);
        assert_eq!(sliced.metrics, oneshot.metrics);
        assert_eq!(sliced.output, oneshot.output);
        let (a, b) = (sliced.sanitizer.unwrap(), oneshot.sanitizer.unwrap());
        assert_eq!(a.findings.len(), b.findings.len());
        let (pa, pb) = (sliced.profile.unwrap(), oneshot.profile.unwrap());
        assert_eq!(pa.methods.len(), pb.methods.len());
        assert_eq!(pa.opcodes.len(), pb.opcodes.len());
    }

    #[test]
    fn fuel_exhaustion_of_hard_budget_traps_typed() {
        let p = compile("fn main() { var i = 0; while (i >= 0) { i = i + 1; } }").unwrap();
        let config = VmConfig {
            max_instructions: 1_000,
            ..Default::default()
        };
        let mut session = VmSession::new(&p, &config).unwrap();
        let mut fuel = 0;
        let error = loop {
            match session.run_fuel(&p, 64) {
                FuelOutcome::Yielded { fuel_spent } => fuel += fuel_spent,
                FuelOutcome::Trapped { fuel_spent, error } => {
                    fuel += fuel_spent;
                    break error;
                }
                FuelOutcome::Done { .. } => panic!("infinite loop finished"),
            }
        };
        assert_eq!(error, VmError::InstructionLimit);
        assert!(error.is_resource_limit());
        assert_eq!(fuel, 1_000, "trap lands exactly on the budget");
        assert_eq!(session.instructions_executed(), 1_000);
    }

    #[test]
    fn fuel_session_misuse_traps_instead_of_panicking() {
        let p = compile("fn main() { print 1; }").unwrap();
        let config = VmConfig::default();
        // Resuming a finished session.
        let mut session = VmSession::new(&p, &config).unwrap();
        assert!(matches!(
            session.run_fuel(&p, u64::MAX),
            FuelOutcome::Done { .. }
        ));
        assert!(matches!(
            session.run_fuel(&p, 1),
            FuelOutcome::Trapped {
                error: VmError::Internal { .. },
                ..
            }
        ));
        // Resuming against a different program.
        let other = compile("fn main() { print 2; }").unwrap();
        let mut session = VmSession::new(&p, &config).unwrap();
        assert!(matches!(
            session.run_fuel(&other, 1),
            FuelOutcome::Trapped {
                error: VmError::Internal { .. },
                ..
            }
        ));
    }

    #[test]
    fn zero_fuel_slice_yields_without_progress() {
        let p = compile("fn main() { print 1; }").unwrap();
        let config = VmConfig::default();
        let mut session = VmSession::new(&p, &config).unwrap();
        match session.run_fuel(&p, 0) {
            FuelOutcome::Yielded { fuel_spent } => assert_eq!(fuel_spent, 0),
            other => panic!("expected yield, got {other:?}"),
        }
        assert!(matches!(
            session.run_fuel(&p, u64::MAX),
            FuelOutcome::Done { .. }
        ));
    }
}
