//! Execution counters reported by the interpreter.

use std::fmt;

/// Counters accumulated over one program run.
///
/// `cycles` is the headline number (Figure 17); the rest explain *why* a
/// configuration is faster: fewer allocations, fewer heap dereferences,
/// fewer dynamic dispatches, better cache behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Modeled total cycles.
    pub cycles: u64,
    /// IR instructions executed.
    pub instructions: u64,
    /// Heap reads issued.
    pub heap_reads: u64,
    /// Heap writes issued.
    pub heap_writes: u64,
    /// Objects (and arrays) allocated.
    pub allocations: u64,
    /// Total words allocated.
    pub words_allocated: u64,
    /// Dynamically dispatched sends executed.
    pub dyn_dispatches: u64,
    /// Statically bound calls executed.
    pub static_calls: u64,
    /// Interior references formed (inline-child accesses).
    pub interior_refs: u64,
    /// Data-cache hits.
    pub cache_hits: u64,
    /// Data-cache misses.
    pub cache_misses: u64,
    /// Heap accesses that went through an interior reference, i.e. reads
    /// and writes of inline-allocated child state.
    pub inline_child_accesses: u64,
    /// Of [`Metrics::inline_child_accesses`], how many hit the data cache.
    /// Inline state lives inside its container, so a high hit rate here is
    /// the locality the paper's Figure 17 credits to colocation.
    pub inline_child_hits: u64,
}

impl Metrics {
    /// Renders every counter as a JSON object with a stable key order
    /// (the field declaration order, plus the derived hit rate).
    pub fn to_json(&self) -> oi_support::Json {
        oi_support::Json::obj(vec![
            ("cycles", self.cycles.into()),
            ("instructions", self.instructions.into()),
            ("heap_reads", self.heap_reads.into()),
            ("heap_writes", self.heap_writes.into()),
            ("allocations", self.allocations.into()),
            ("words_allocated", self.words_allocated.into()),
            ("dyn_dispatches", self.dyn_dispatches.into()),
            ("static_calls", self.static_calls.into()),
            ("interior_refs", self.interior_refs.into()),
            ("cache_hits", self.cache_hits.into()),
            ("cache_misses", self.cache_misses.into()),
            ("cache_hit_rate", self.cache_hit_rate().into()),
            ("inline_child_accesses", self.inline_child_accesses.into()),
            ("inline_child_hits", self.inline_child_hits.into()),
            ("inline_locality_rate", self.inline_locality_rate().into()),
        ])
    }

    /// Cache hit rate in `[0, 1]`; zero if no memory accesses happened.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Cache hit rate over inline-child (interior-reference) accesses in
    /// `[0, 1]`; zero when no inline state was touched.
    pub fn inline_locality_rate(&self) -> f64 {
        if self.inline_child_accesses == 0 {
            0.0
        } else {
            self.inline_child_hits as f64 / self.inline_child_accesses as f64
        }
    }

    /// Speedup of `self` relative to `baseline` (baseline cycles / own
    /// cycles); `1.0` when either is zero.
    pub fn speedup_over(&self, baseline: &Metrics) -> f64 {
        if self.cycles == 0 || baseline.cycles == 0 {
            1.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles            {:>14}", self.cycles)?;
        writeln!(f, "instructions      {:>14}", self.instructions)?;
        writeln!(f, "heap reads        {:>14}", self.heap_reads)?;
        writeln!(f, "heap writes       {:>14}", self.heap_writes)?;
        writeln!(f, "allocations       {:>14}", self.allocations)?;
        writeln!(f, "words allocated   {:>14}", self.words_allocated)?;
        writeln!(f, "dynamic dispatches{:>14}", self.dyn_dispatches)?;
        writeln!(f, "static calls      {:>14}", self.static_calls)?;
        writeln!(f, "interior refs     {:>14}", self.interior_refs)?;
        writeln!(
            f,
            "cache             {:>14} hits / {} misses ({:.1}%)",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.cache_hit_rate()
        )?;
        write!(
            f,
            "inline locality   {:>14} accesses ({:.1}% cached)",
            self.inline_child_accesses,
            100.0 * self.inline_locality_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(Metrics::default().cache_hit_rate(), 0.0);
        let m = Metrics {
            cache_hits: 3,
            cache_misses: 1,
            ..Default::default()
        };
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_relative() {
        let base = Metrics {
            cycles: 300,
            ..Default::default()
        };
        let fast = Metrics {
            cycles: 100,
            ..Default::default()
        };
        assert!((fast.speedup_over(&base) - 3.0).abs() < 1e-12);
        assert_eq!(Metrics::default().speedup_over(&base), 1.0);
    }

    #[test]
    fn display_mentions_key_counters() {
        let s = Metrics::default().to_string();
        assert!(s.contains("cycles"));
        assert!(s.contains("allocations"));
        assert!(s.contains("inline locality"));
    }

    #[test]
    fn inline_locality_rate_handles_zero() {
        assert_eq!(Metrics::default().inline_locality_rate(), 0.0);
        let m = Metrics {
            inline_child_accesses: 8,
            inline_child_hits: 6,
            ..Default::default()
        };
        assert!((m.inline_locality_rate() - 0.75).abs() < 1e-12);
    }
}
