#![warn(missing_docs)]
//! Instrumented interpreter and cost model for evaluating object inlining.
//!
//! The paper measured wall-clock time of compiled benchmarks on a
//! SparcStation 20/60; that substrate is unavailable, so this crate provides
//! the closest synthetic equivalent: an interpreter over a **flat,
//! word-addressed heap** with an explicit cycle cost model and a simulated
//! data cache. The costs object inlining removes show up exactly where the
//! paper says they do:
//!
//! - every [`oi_ir::Instr::GetField`] through a real reference is a heap
//!   load (plus a cache probe at the object's address);
//! - an inlined child is reached by [`oi_ir::Instr::MakeInterior`] — pure
//!   address arithmetic, one cycle, **no load**;
//! - allocation pays a base cost plus a per-word cost, so merging children
//!   into containers reduces both count and volume;
//! - child state colocated with its container shares cache lines with it.
//!
//! # Examples
//!
//! ```
//! use oi_vm::{run, VmConfig};
//! let program = oi_ir::lower::compile("fn main() { print 6 * 7; }")?;
//! let result = run(&program, &VmConfig::default()).expect("runs");
//! assert_eq!(result.output, "42\n");
//! assert!(result.metrics.cycles > 0);
//! # Ok::<(), oi_support::Diagnostic>(())
//! ```

pub mod cache;
pub mod cost;
pub mod error;
pub mod heap;
pub mod interp;
pub mod metrics;
pub mod profile;
pub mod sanitizer;
pub mod value;

pub use cache::{CacheConfig, CacheSim};
pub use cost::CostModel;
pub use error::VmError;
pub use heap::{CensusBucket, HeapCensus};
pub use interp::{
    run, FuelOutcome, HeapCensusEntry, HeapCensusReport, RunResult, VmConfig, VmSession,
};
pub use metrics::Metrics;
pub use sanitizer::{CheckLevel, Finding, FindingKind, SanitizerReport};
pub use value::{ObjId, Value};
