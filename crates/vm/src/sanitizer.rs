//! Checked execution: an ASan-style heap sanitizer for inline objects.
//!
//! The differential oracle (the soundness firewall in `oi-core`) only sees
//! a miscompile when it changes *printed output*, termination status, or
//! the allocation census. A transformation bug that corrupts inline state
//! without reaching a `print` escapes it. Checked execution closes that
//! gap at the instruction level: the interpreter maintains a **shadow heap
//! map** alongside the real heap and validates every inline-object
//! invariant the §5 transformation (class restructuring, use redirection,
//! assignment specialization) is supposed to preserve:
//!
//! - **Interior bounds**: a `MakeInterior` / `MakeInteriorElem` result must
//!   stay inside its container's slot array, per the resolved layout.
//! - **Kind and class-of-slot agreement**: the container slot a child field
//!   resolves to must be the slot class restructuring created for it. The
//!   restructurer names spliced fields `<field>$<childfield>` (shared
//!   divergent slots `<field>$inline`), so the slot's *name* is redundant
//!   with the layout table and acts as ground truth even when the layout
//!   table itself was corrupted.
//! - **Canary words**: the words bracketing an inline region must never be
//!   addressed through that region. An off-by-one in slot arithmetic
//!   resolves a child field exactly one word outside its true region — the
//!   canary position — and is reported as a clobber, distinct from general
//!   slot confusion. For inline arrays the canary is the neighboring
//!   element's state: a field map entry at or beyond the element width
//!   overruns the bracket.
//! - **Region overlap**: two distinct inline regions on the same object
//!   must be equal, disjoint, or properly nested (nested inlining).
//!   Partial overlap means two children share storage — the §5.2
//!   Figure-11 bug class.
//! - **Poison**: an inline slot that was never written and never covered
//!   by a completed child constructor holds *poison*; reading it through
//!   an interior reference is a finding, distinct from reading a legal
//!   `nil` that was actually stored.
//! - **Identity integrity**: two live interior references into the same
//!   inline region must agree on the base object and compare identical
//!   under `===`.
//!
//! Findings are structured data ([`SanitizerReport`]), not panics: the run
//! continues (only an out-of-bounds access that the unchecked interpreter
//! could not survive halts it, as [`crate::VmError::CheckedAccessViolation`])
//! and the report rides on [`crate::RunResult::sanitizer`]. The firewall
//! treats any finding in the inlined build as an oracle rejection and
//! bisects/retracts exactly as for an output divergence.
//!
//! The sanitizer never touches [`crate::Metrics`], the cache simulation,
//! or the heap itself, so a clean checked run reports byte-identical
//! metrics to an unchecked run; only wall-clock overhead differs.

use crate::heap::{Heap, ObjKind};
use crate::interp::{Repr, ResolvedLayout};
use crate::value::ObjId;
use oi_ir::{ArrayLayoutKind, ClassId, MethodId, Program};
use std::collections::{HashMap, HashSet};

/// How much checking the interpreter performs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckLevel {
    /// No checking (production default; zero overhead).
    #[default]
    Off,
    /// Layout validation only: interior bounds, kind/class-of-slot
    /// agreement, canary brackets. No per-object shadow state.
    Basic,
    /// Everything in `Basic` plus the shadow heap map: region overlap,
    /// poison tracking, identity integrity.
    Full,
}

impl CheckLevel {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            CheckLevel::Off => "off",
            CheckLevel::Basic => "basic",
            CheckLevel::Full => "full",
        }
    }

    /// Parses a [`CheckLevel::name`] back; `None` for anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(CheckLevel::Off),
            "basic" => Some(CheckLevel::Basic),
            "full" => Some(CheckLevel::Full),
            _ => None,
        }
    }
}

/// The invariant a [`Finding`] violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// An interior reference resolved outside the container's slot array.
    InteriorBounds,
    /// A container slot disagrees with the layout's promise: wrong kind of
    /// container, or a slot whose restructured name belongs to a different
    /// field or child.
    SlotKindMismatch,
    /// An access landed exactly on a word bracketing its true inline
    /// region — the off-by-one signature (object regions), or an array
    /// field map overrunning the element width into the neighboring
    /// element.
    CanaryClobber,
    /// Two inline regions on the same object partially overlap: neither
    /// equal, disjoint, nor nested.
    RegionOverlap,
    /// Two inline regions claim the same storage for different child
    /// classes.
    ClassMismatch,
    /// A read through an interior reference observed a slot that was never
    /// initialized (neither written nor covered by a completed child
    /// constructor).
    PoisonRead,
    /// Two interior references designate the same inline region but do not
    /// compare identical under `===`.
    IdentityMismatch,
}

impl FindingKind {
    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::InteriorBounds => "interior-bounds",
            FindingKind::SlotKindMismatch => "slot-kind-mismatch",
            FindingKind::CanaryClobber => "canary-clobber",
            FindingKind::RegionOverlap => "region-overlap",
            FindingKind::ClassMismatch => "class-mismatch",
            FindingKind::PoisonRead => "poison-read",
            FindingKind::IdentityMismatch => "identity-mismatch",
        }
    }
}

/// One invariant violation observed during a checked run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Violated invariant.
    pub kind: FindingKind,
    /// Instruction family that tripped the check (`MakeInterior`,
    /// `GetField`, …).
    pub instruction: String,
    /// `Class::method` executing when the check tripped.
    pub method: String,
    /// Heap address of the container object.
    pub address: u64,
    /// The field the finding is about — the container's restructured slot
    /// name where known (provenance-linked: it embeds the inlined field's
    /// name), otherwise the child field.
    pub field: String,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at {} in {} (field `{}`, container @{}): {}",
            self.kind.name(),
            self.instruction,
            self.method,
            self.field,
            self.address,
            self.detail
        )
    }
}

/// Everything the sanitizer observed over one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SanitizerReport {
    /// The level the run was checked at.
    pub level: CheckLevel,
    /// Recorded findings, in discovery order, capped at
    /// [`SanitizerReport::FINDING_CAP`].
    pub findings: Vec<Finding>,
    /// Total findings including any beyond the cap.
    pub total_findings: u64,
    /// Number of checks performed (advisory; sizing the overhead).
    pub checks: u64,
}

impl SanitizerReport {
    /// Recorded-finding cap; `total_findings` keeps counting past it so a
    /// finding inside a hot loop cannot balloon the report.
    pub const FINDING_CAP: usize = 32;

    /// `true` when the run violated no invariant.
    pub fn is_clean(&self) -> bool {
        self.total_findings == 0
    }

    /// The report as schema-stable JSON (additive fields only).
    pub fn to_json(&self) -> oi_support::Json {
        use oi_support::Json;
        Json::obj(vec![
            ("level", self.level.name().into()),
            ("total_findings", self.total_findings.into()),
            ("checks", self.checks.into()),
            (
                "findings",
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("kind", f.kind.name().into()),
                                ("instruction", f.instruction.clone().into()),
                                ("method", f.method.clone().into()),
                                ("address", f.address.into()),
                                ("field", f.field.clone().into()),
                                ("detail", f.detail.clone().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// An established inline region on one container object.
struct Region {
    /// Resolved layout id (index into the VM's layout table).
    layout: u32,
    /// Element index (0 for object containers).
    index: u32,
    /// Child class the region claims.
    child_class: ClassId,
    /// Sorted container slots the region covers.
    slots: Vec<usize>,
}

/// Shadow state for one container object (`Full` only).
#[derive(Default)]
struct Shadow {
    /// Slot was stored to through any path.
    written: Vec<bool>,
    /// Slot is covered by a child constructor that ran to completion on an
    /// interior receiver (fields the constructor chose not to set are
    /// legal `nil`, not poison).
    constructed: Vec<bool>,
    /// Established regions, in establishment order.
    regions: Vec<Region>,
}

impl Shadow {
    fn ensure(&mut self, len: usize) {
        if self.written.len() < len {
            self.written.resize(len, false);
            self.constructed.resize(len, false);
        }
    }
}

/// The shadow-heap sanitizer. One per checked run; owned by the VM.
pub struct Sanitizer {
    level: CheckLevel,
    findings: Vec<Finding>,
    total_findings: u64,
    checks: u64,
    /// Layout validations already performed, keyed by
    /// `(resolved layout id, container key)` — container key is the class
    /// index for instances, `u64::MAX` for inline arrays.
    validated: HashSet<(u32, u64)>,
    shadows: HashMap<ObjId, Shadow>,
}

impl Sanitizer {
    /// A sanitizer for `level`; `None` when checking is off.
    pub fn new(level: CheckLevel) -> Option<Self> {
        (level != CheckLevel::Off).then(|| Self {
            level,
            findings: Vec::new(),
            total_findings: 0,
            checks: 0,
            validated: HashSet::new(),
            shadows: HashMap::new(),
        })
    }

    /// Finalizes into the run's report.
    pub(crate) fn into_report(self) -> SanitizerReport {
        SanitizerReport {
            level: self.level,
            findings: self.findings,
            total_findings: self.total_findings,
            checks: self.checks,
        }
    }

    fn full(&self) -> bool {
        self.level == CheckLevel::Full
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        kind: FindingKind,
        instruction: &str,
        program: &Program,
        method: Option<MethodId>,
        address: u64,
        field: String,
        detail: String,
    ) {
        self.total_findings += 1;
        if self.findings.len() >= SanitizerReport::FINDING_CAP {
            return;
        }
        self.findings.push(Finding {
            kind,
            instruction: instruction.to_owned(),
            method: method.map_or_else(|| "<entry>".to_owned(), |m| program.method_display(m)),
            address,
            field,
            detail,
        });
    }

    /// Container slots covered by `(layout, index)`, sorted.
    /// `elem_len` is the element count for inline-array containers (0 for
    /// object containers).
    fn region_slots(
        layouts: &[ResolvedLayout],
        layout: u32,
        index: u32,
        elem_len: usize,
    ) -> Vec<usize> {
        let resolved = &layouts[layout as usize];
        let mut slots: Vec<usize> = match &resolved.repr {
            Repr::Object { slots } => slots.clone(),
            Repr::Array { kind, width, map } => map
                .iter()
                .map(|&m| match kind {
                    ArrayLayoutKind::Interleaved => index as usize * *width + m,
                    ArrayLayoutKind::Parallel => m * elem_len + index as usize,
                })
                .collect(),
        };
        slots.sort_unstable();
        slots
    }

    /// Validates the establishment of an interior reference
    /// `(obj, index, layout)` — called whenever the interpreter creates
    /// one (`MakeInterior`, `MakeInteriorElem`, whole-element reads and
    /// stores of inline arrays).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_interior(
        &mut self,
        program: &Program,
        heap: &Heap,
        layouts: &[ResolvedLayout],
        method: Option<MethodId>,
        instruction: &str,
        obj: ObjId,
        index: u32,
        layout: u32,
    ) {
        self.checks += 1;
        let container = heap.get(obj);
        let addr = container.addr;
        let container_len = container.slots.len();
        let resolved = &layouts[layout as usize];
        let kind = container.kind;
        match (&resolved.repr, kind) {
            (Repr::Object { slots }, ObjKind::Instance(class)) => {
                let key = (layout, class.index() as u64);
                if !self.validated.contains(&key) {
                    self.validated.insert(key);
                    self.validate_object_region(
                        program,
                        method,
                        instruction,
                        addr,
                        class,
                        slots,
                        &resolved.child_fields,
                        container_len,
                    );
                }
            }
            (Repr::Array { width, map, .. }, ObjKind::ArrayInline { len, .. }) => {
                let key = (layout, u64::MAX);
                if !self.validated.contains(&key) {
                    self.validated.insert(key);
                    for (j, &m) in map.iter().enumerate() {
                        if m >= *width {
                            let field = resolved.child_fields.get(j).map_or_else(
                                || format!("#{j}"),
                                |f| program.interner.resolve(*f).to_owned(),
                            );
                            self.record(
                                FindingKind::CanaryClobber,
                                instruction,
                                program,
                                method,
                                addr,
                                field,
                                format!(
                                    "array field map entry {m} overruns element width {width} \
                                     into the bracketing element"
                                ),
                            );
                        }
                    }
                }
                if index as usize >= len {
                    self.record(
                        FindingKind::InteriorBounds,
                        instruction,
                        program,
                        method,
                        addr,
                        format!("[{index}]"),
                        format!("element index {index} outside inline array of length {len}"),
                    );
                }
            }
            (repr, kind) => {
                let (promised, actual) = match repr {
                    Repr::Object { .. } => ("object container", describe_kind(program, kind)),
                    Repr::Array { .. } => ("inline-array container", describe_kind(program, kind)),
                };
                self.record(
                    FindingKind::SlotKindMismatch,
                    instruction,
                    program,
                    method,
                    addr,
                    "<container>".to_owned(),
                    format!("layout promises {promised}, container is {actual}"),
                );
            }
        }
        if self.full() {
            self.establish_region(
                program,
                heap,
                layouts,
                method,
                instruction,
                obj,
                index,
                layout,
            );
        }
    }

    /// The static (per layout × container class) half of object-region
    /// validation: bounds, and the restructurer's naming convention as
    /// ground truth for slot agreement and canary brackets.
    #[allow(clippy::too_many_arguments)]
    fn validate_object_region(
        &mut self,
        program: &Program,
        method: Option<MethodId>,
        instruction: &str,
        addr: u64,
        class: ClassId,
        slots: &[usize],
        child_fields: &[oi_support::Symbol],
        container_len: usize,
    ) {
        let layout_fields = program.layout_of(class);
        let names: Vec<&str> = layout_fields
            .iter()
            .map(|&f| canonical(program.interner.resolve(program.fields[f].name)))
            .collect();
        // The region's field-name prefix, from the first slot that carries
        // a restructured name ("<prefix>$<childfield>" or
        // "<prefix>$inline").
        let prefix_of = |name: &str, suffix: &str| -> Option<String> {
            name.strip_suffix(suffix).map(str::to_owned)
        };
        let mut region_prefix: Option<String> = None;
        for (j, (&slot, child)) in slots.iter().zip(child_fields).enumerate() {
            let child_name = canonical(program.interner.resolve(*child));
            let suffix = format!("${child_name}");
            if slot >= container_len {
                self.record(
                    FindingKind::InteriorBounds,
                    instruction,
                    program,
                    method,
                    addr,
                    child_name.to_owned(),
                    format!("layout slot {slot} outside container of {container_len} slot(s)"),
                );
                continue;
            }
            let slot_name = names[slot];
            // A divergent-hierarchy shared slot (`<field>$inline`) can only
            // ever host the region's first child field; it carries no
            // child-field suffix, so it neither seeds nor constrains the
            // region prefix (nested composition can legally mix it with
            // deeper `$`-chained prefixes).
            if j == 0 && slot_name.ends_with("$inline") {
                continue;
            }
            match prefix_of(slot_name, &suffix) {
                Some(p) => match &region_prefix {
                    None => region_prefix = Some(p),
                    Some(expect) if *expect == p => {}
                    Some(expect) => {
                        self.record(
                            FindingKind::SlotKindMismatch,
                            instruction,
                            program,
                            method,
                            addr,
                            slot_name.to_owned(),
                            format!(
                                "slot {slot} belongs to inlined field `{p}`, \
                                 region belongs to `{expect}`"
                            ),
                        );
                    }
                },
                None => {
                    // The slot's name does not carry this child field. Find
                    // the slot that does; one word away is the canary
                    // signature of off-by-one slot arithmetic.
                    let truth = names.iter().position(|n| {
                        n.ends_with(&suffix)
                            && region_prefix
                                .as_deref()
                                .is_none_or(|p| n.strip_suffix(&suffix) == Some(p))
                    });
                    let (kind, detail) = match truth {
                        Some(t) if t.abs_diff(slot) == 1 => (
                            FindingKind::CanaryClobber,
                            format!(
                                "slot {slot} is the canary word bracketing the true region \
                                 (child field `{child_name}` lives at slot {t})"
                            ),
                        ),
                        Some(t) => (
                            FindingKind::SlotKindMismatch,
                            format!(
                                "slot {slot} (`{slot_name}`) does not hold child field \
                                 `{child_name}` (true slot {t})"
                            ),
                        ),
                        None => (
                            FindingKind::SlotKindMismatch,
                            format!(
                                "slot {slot} (`{slot_name}`) was never restructured for \
                                 child field `{child_name}`"
                            ),
                        ),
                    };
                    self.record(
                        kind,
                        instruction,
                        program,
                        method,
                        addr,
                        slot_name.to_owned(),
                        detail,
                    );
                }
            }
        }
    }

    /// Unsorted `(container slot, child field name)` pairs for a region —
    /// the positional pairing [`Region::slots`] discards by sorting.
    fn slot_field_names(
        layouts: &[ResolvedLayout],
        layout: u32,
        index: u32,
        elem_len: usize,
    ) -> Vec<(usize, oi_support::Symbol)> {
        let resolved = &layouts[layout as usize];
        let fields = resolved.child_fields.iter().copied();
        match &resolved.repr {
            Repr::Object { slots } => slots.iter().copied().zip(fields).collect(),
            Repr::Array { kind, width, map } => map
                .iter()
                .zip(fields)
                .map(|(&m, f)| {
                    let s = match kind {
                        ArrayLayoutKind::Interleaved => index as usize * *width + m,
                        ArrayLayoutKind::Parallel => m * elem_len + index as usize,
                    };
                    (s, f)
                })
                .collect(),
        }
    }

    /// `true` when one of the two coinciding regions is a legal nested
    /// refinement of the other: on every slot both cover, the outer
    /// region's restructured field name extends the inner's with a
    /// `$<field>` segment (or is the shared `$inline` wildcard). That is
    /// the restructurer's signature for composed inlining, where the
    /// outer child's storage legitimately *is* the inner child's storage.
    fn nested_refinement(
        program: &Program,
        layouts: &[ResolvedLayout],
        existing: &Region,
        layout: u32,
        index: u32,
        elem_len: usize,
    ) -> bool {
        let a = Self::slot_field_names(layouts, existing.layout, existing.index, elem_len);
        let b = Self::slot_field_names(layouts, layout, index, elem_len);
        let refines = |outer: &[(usize, oi_support::Symbol)],
                       inner: &[(usize, oi_support::Symbol)]|
         -> bool {
            inner.iter().all(|&(slot, f)| {
                let Some(&(_, of)) = outer.iter().find(|&&(s, _)| s == slot) else {
                    return true;
                };
                let o = canonical(program.interner.resolve(of));
                let i = canonical(program.interner.resolve(f));
                o.ends_with("$inline") || o.ends_with(&format!("${i}"))
            })
        };
        refines(&a, &b) || refines(&b, &a)
    }

    /// Registers `(layout, index)` as a region on `obj`'s shadow and
    /// cross-checks it against previously established regions (`Full`).
    #[allow(clippy::too_many_arguments)]
    fn establish_region(
        &mut self,
        program: &Program,
        heap: &Heap,
        layouts: &[ResolvedLayout],
        method: Option<MethodId>,
        instruction: &str,
        obj: ObjId,
        index: u32,
        layout: u32,
    ) {
        let container = heap.get(obj);
        let slot_count = container.slots.len();
        let elem_len = container.array_len().unwrap_or(0);
        let addr = container.addr;
        let child_class = layouts[layout as usize].child_class;
        let shadow = self.shadows.entry(obj).or_default();
        shadow.ensure(slot_count);
        if shadow
            .regions
            .iter()
            .any(|r| r.layout == layout && r.index == index)
        {
            return;
        }
        let slots = Self::region_slots(layouts, layout, index, elem_len);
        let mut conflicts: Vec<(FindingKind, String)> = Vec::new();
        for existing in &shadow.regions {
            let shared = existing.slots.iter().filter(|s| slots.contains(s)).count();
            if shared == 0 {
                continue;
            }
            if existing.slots == slots {
                // Composed inlining can make an inner region coincide
                // exactly with its enclosing one (a single-field chain:
                // `b` holds the whole of `b$a`, which holds the whole of
                // `b$a$x`). The restructurer's names arbitrate: if one
                // region's field names `$`-refine the other's on every
                // shared word, the coincidence is legal nesting, not two
                // children fighting over storage.
                if existing.child_class != child_class
                    && !Self::nested_refinement(program, layouts, existing, layout, index, elem_len)
                {
                    conflicts.push((
                        FindingKind::ClassMismatch,
                        format!(
                            "region claims class `{}`, the same storage was established \
                             as class `{}`",
                            class_name(program, child_class),
                            class_name(program, existing.child_class)
                        ),
                    ));
                }
                continue;
            }
            let nested = shared == slots.len() || shared == existing.slots.len();
            if !nested {
                conflicts.push((
                    FindingKind::RegionOverlap,
                    format!(
                        "region {:?} (class `{}`) partially overlaps established region \
                         {:?} (class `{}`)",
                        slots,
                        class_name(program, child_class),
                        existing.slots,
                        class_name(program, existing.child_class)
                    ),
                ));
            }
        }
        shadow.regions.push(Region {
            layout,
            index,
            child_class,
            slots,
        });
        for (kind, detail) in conflicts {
            self.record(
                kind,
                instruction,
                program,
                method,
                addr,
                "<region>".to_owned(),
                detail,
            );
        }
    }

    /// Validates one resolved interior access and updates the shadow map.
    /// Returns the fatal error for an access the unchecked interpreter
    /// could not survive (slot outside the container's slot array).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_access(
        &mut self,
        program: &Program,
        heap: &Heap,
        layouts: &[ResolvedLayout],
        method: Option<MethodId>,
        instruction: &str,
        obj: ObjId,
        index: u32,
        layout: u32,
        child_field: usize,
        slot: usize,
        is_read: bool,
    ) -> Result<(), crate::VmError> {
        self.checks += 1;
        let container = heap.get(obj);
        let container_len = container.slots.len();
        let addr = container.addr;
        let field_name = layouts[layout as usize]
            .child_fields
            .get(child_field)
            .map_or_else(
                || format!("#{child_field}"),
                |f| program.interner.resolve(*f).to_owned(),
            );
        if slot >= container_len {
            self.record(
                FindingKind::InteriorBounds,
                instruction,
                program,
                method,
                addr,
                field_name,
                format!(
                    "interior access resolved to slot {slot} outside container of \
                     {container_len} slot(s)"
                ),
            );
            return Err(crate::VmError::CheckedAccessViolation {
                slot,
                len: container_len,
            });
        }
        if self.full() {
            let shadow = self.shadows.entry(obj).or_default();
            shadow.ensure(container_len);
            // Canary membership: the access must stay inside the region
            // established for this (layout, index).
            let mut escape: Option<(FindingKind, String)> = None;
            if let Some(region) = shadow
                .regions
                .iter()
                .find(|r| r.layout == layout && r.index == index)
            {
                if !region.slots.contains(&slot) {
                    let bracket = region.slots.iter().any(|s| s.abs_diff(slot) == 1);
                    escape = Some((
                        if bracket {
                            FindingKind::CanaryClobber
                        } else {
                            FindingKind::InteriorBounds
                        },
                        format!(
                            "access to slot {slot} outside established region {:?}",
                            region.slots
                        ),
                    ));
                }
            }
            let poison = is_read && !shadow.written[slot] && !shadow.constructed[slot];
            if !is_read {
                shadow.written[slot] = true;
            }
            if let Some((kind, detail)) = escape {
                self.record(
                    kind,
                    instruction,
                    program,
                    method,
                    addr,
                    field_name.clone(),
                    detail,
                );
            }
            if poison {
                self.record(
                    FindingKind::PoisonRead,
                    instruction,
                    program,
                    method,
                    addr,
                    field_name,
                    format!(
                        "slot {slot} read through an interior reference but never \
                         initialized (poison, not a stored nil)"
                    ),
                );
            }
        }
        Ok(())
    }

    /// Marks a direct (whole-object) store into `slot` of `obj`.
    pub(crate) fn on_direct_write(&mut self, obj: ObjId, slot: usize, container_len: usize) {
        if !self.full() {
            return;
        }
        let shadow = self.shadows.entry(obj).or_default();
        shadow.ensure(container_len);
        if slot < shadow.written.len() {
            shadow.written[slot] = true;
        }
    }

    /// Marks the region `(layout, index)` constructed: the child's
    /// constructor began executing on an interior receiver. From that
    /// moment the child object exists in the baseline semantics (`new`
    /// allocates before `init` runs), so its unset fields are legal `nil`,
    /// not poison. A region that never sees a constructor — the
    /// copy-assignment path — stays poisoned until each slot is written.
    pub(crate) fn on_ctor_enter(
        &mut self,
        layouts: &[ResolvedLayout],
        heap: &Heap,
        obj: ObjId,
        index: u32,
        layout: u32,
    ) {
        if !self.full() {
            return;
        }
        let container = heap.get(obj);
        let slot_count = container.slots.len();
        let elem_len = container.array_len().unwrap_or(0);
        let slots = Self::region_slots(layouts, layout, index, elem_len);
        let shadow = self.shadows.entry(obj).or_default();
        shadow.ensure(slot_count);
        for s in slots {
            if s < shadow.constructed.len() {
                shadow.constructed[s] = true;
            }
        }
    }

    /// Cross-checks identity of two interior references into the same
    /// container that did **not** compare identical: if they designate the
    /// same region, `===` just lied about object identity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_identity(
        &mut self,
        program: &Program,
        heap: &Heap,
        layouts: &[ResolvedLayout],
        method: Option<MethodId>,
        obj: ObjId,
        lhs: (u32, u32),
        rhs: (u32, u32),
    ) {
        if !self.full() {
            return;
        }
        self.checks += 1;
        let container = heap.get(obj);
        let elem_len = container.array_len().unwrap_or(0);
        let (ll, li) = lhs;
        let (rl, ri) = rhs;
        let a = Self::region_slots(layouts, ll, li, elem_len);
        let b = Self::region_slots(layouts, rl, ri, elem_len);
        if a == b {
            self.record(
                FindingKind::IdentityMismatch,
                "Binary",
                program,
                method,
                container.addr,
                "<region>".to_owned(),
                format!(
                    "two interior references into the same region {a:?} of `{}` \
                     compare non-identical",
                    class_name(program, layouts[ll as usize].child_class)
                ),
            );
        }
    }
}

/// Strips trailing `$<digits>` disambiguator segments that the interner's
/// `fresh` appends when a restructured name collides globally (two classes
/// both holding a field `ll` of `Point` yield `ll$x` and `ll$x$1`), leaving
/// the structural `<field>$<childfield>` name. Source identifiers cannot be
/// all digits, so a digits-only segment is always a disambiguator.
fn canonical(name: &str) -> &str {
    let mut n = name;
    while let Some((rest, last)) = n.rsplit_once('$') {
        if !last.is_empty() && last.bytes().all(|b| b.is_ascii_digit()) {
            n = rest;
        } else {
            break;
        }
    }
    n
}

fn class_name(program: &Program, c: ClassId) -> String {
    program.interner.resolve(program.classes[c].name).to_owned()
}

fn describe_kind(program: &Program, kind: ObjKind) -> String {
    match kind {
        ObjKind::Instance(c) => format!("an instance of `{}`", class_name(program, c)),
        ObjKind::Array => "a reference array".to_owned(),
        ObjKind::ArrayInline { .. } => "an inline array".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, VmConfig};
    use oi_ir::lower::compile;
    use oi_ir::{ConstValue, InlineLayout, Instr, Terminator};

    /// Compiles a Rect/Point skeleton, renames `Rect`'s fields to the
    /// restructurer's convention, adds an inline layout, and replaces
    /// `main`'s body with hand-built instructions — the same IR shape the
    /// real pipeline produces, minus the pipeline.
    ///
    /// `rect_fields` are the post-restructure names for Rect's slots and
    /// `slots` is the layout's slot table.
    fn rig(rect_fields: &[&str], slots: Vec<usize>, body: Body) -> oi_ir::Program {
        let field_decls = rect_fields
            .iter()
            .enumerate()
            .map(|(i, _)| format!("field f{i};"))
            .collect::<Vec<_>>()
            .join(" ");
        let src = format!(
            "class Point {{ field x; field y; }}
             class Rect {{ {field_decls} }}
             fn main() {{ print 0; }}"
        );
        let mut p = compile(&src).unwrap();
        let rect = p.class_by_name("Rect").unwrap();
        for (i, name) in rect_fields.iter().enumerate() {
            let fid = p.classes[rect].own_fields[i];
            p.fields[fid].name = p.interner.fresh(name);
        }
        let point = p.class_by_name("Point").unwrap();
        let x = p.interner.get("x").unwrap();
        let y = p.interner.get("y").unwrap();
        let layout = p.layouts.push(InlineLayout {
            child_class: point,
            child_fields: vec![x, y],
            slots,
            array_kind: None,
        });
        let site = p.fresh_site();
        // Temps: t0 self, t1 rect, t2 interior, t3 scratch.
        let entry = p.entry;
        let instrs = body(rect, layout, x, y, site);
        let m = &mut p.methods[entry];
        m.temp_count = 8;
        let bb = m.entry();
        m.blocks[bb].instrs = instrs;
        m.blocks[bb].term = Terminator::Return(oi_ir::Temp::new(0));
        p
    }

    type Body = fn(
        oi_ir::ClassId,
        oi_ir::LayoutId,
        oi_support::Symbol,
        oi_support::Symbol,
        oi_ir::SiteId,
    ) -> Vec<Instr>;

    fn t(i: usize) -> oi_ir::Temp {
        oi_ir::Temp::new(i)
    }

    fn checked(level: CheckLevel) -> VmConfig {
        VmConfig {
            checked: level,
            ..Default::default()
        }
    }

    /// new Rect; i = interior; i.x = 1; i.y = 2; print i.x;
    fn clean_body(
        rect: oi_ir::ClassId,
        layout: oi_ir::LayoutId,
        x: oi_support::Symbol,
        y: oi_support::Symbol,
        site: oi_ir::SiteId,
    ) -> Vec<Instr> {
        vec![
            Instr::New {
                dst: t(1),
                class: rect,
                args: vec![],
                site,
            },
            Instr::MakeInterior {
                dst: t(2),
                obj: t(1),
                layout,
            },
            Instr::Const {
                dst: t(3),
                value: ConstValue::Int(1),
            },
            Instr::SetField {
                obj: t(2),
                field: x,
                src: t(3),
            },
            Instr::Const {
                dst: t(4),
                value: ConstValue::Int(2),
            },
            Instr::SetField {
                obj: t(2),
                field: y,
                src: t(4),
            },
            Instr::GetField {
                dst: t(5),
                obj: t(2),
                field: x,
            },
            Instr::Print { src: t(5) },
        ]
    }

    /// new Rect; i = interior; i.x = 1; print i.y;   (y never written)
    fn poison_body(
        rect: oi_ir::ClassId,
        layout: oi_ir::LayoutId,
        x: oi_support::Symbol,
        y: oi_support::Symbol,
        site: oi_ir::SiteId,
    ) -> Vec<Instr> {
        vec![
            Instr::New {
                dst: t(1),
                class: rect,
                args: vec![],
                site,
            },
            Instr::MakeInterior {
                dst: t(2),
                obj: t(1),
                layout,
            },
            Instr::Const {
                dst: t(3),
                value: ConstValue::Int(1),
            },
            Instr::SetField {
                obj: t(2),
                field: x,
                src: t(3),
            },
            Instr::GetField {
                dst: t(5),
                obj: t(2),
                field: y,
            },
            Instr::Print { src: t(5) },
        ]
    }

    #[test]
    fn clean_inline_program_reports_no_findings() {
        let p = rig(&["ll$x", "ll$y"], vec![0, 1], clean_body);
        let r = run(&p, &checked(CheckLevel::Full)).unwrap();
        let san = r.sanitizer.expect("checked run carries a report");
        assert!(san.is_clean(), "findings: {:?}", san.findings);
        assert!(san.checks > 0);
        assert_eq!(r.output, "1\n");
    }

    #[test]
    fn unchecked_run_carries_no_report_and_identical_metrics() {
        let p = rig(&["ll$x", "ll$y"], vec![0, 1], clean_body);
        let plain = run(&p, &VmConfig::default()).unwrap();
        assert!(plain.sanitizer.is_none());
        let full = run(&p, &checked(CheckLevel::Full)).unwrap();
        assert_eq!(
            plain.metrics, full.metrics,
            "checking must not perturb the cost model"
        );
        assert_eq!(plain.output, full.output);
    }

    #[test]
    fn never_initialized_inline_slot_reads_as_poison() {
        let p = rig(&["ll$x", "ll$y"], vec![0, 1], poison_body);
        let r = run(&p, &checked(CheckLevel::Full)).unwrap();
        let san = r.sanitizer.unwrap();
        assert_eq!(san.findings.len(), 1, "{:?}", san.findings);
        assert_eq!(san.findings[0].kind, FindingKind::PoisonRead);
        assert_eq!(san.findings[0].field, "y");
        // The run itself still completes — the slot legally holds nil.
        assert_eq!(r.output, "nil\n");
        // Basic checking has no shadow map, so no poison tracking.
        let basic = run(&p, &checked(CheckLevel::Basic)).unwrap();
        assert!(basic.sanitizer.unwrap().is_clean());
    }

    #[test]
    fn unrestructured_slot_names_are_a_kind_mismatch() {
        // Fields keep their source names: the layout points at storage the
        // restructurer never created.
        let p = rig(&["a", "b"], vec![0, 1], clean_body);
        let r = run(&p, &checked(CheckLevel::Basic)).unwrap();
        let san = r.sanitizer.unwrap();
        assert!(
            san.findings
                .iter()
                .any(|f| f.kind == FindingKind::SlotKindMismatch),
            "{:?}",
            san.findings
        );
    }

    #[test]
    fn off_by_one_slot_is_a_canary_clobber() {
        // True region is [0, 1]; the layout claims [1, 2] — every access
        // lands one word off, the second on the bracketing canary word.
        let p = rig(&["ll$x", "ll$y", "pad"], vec![1, 2], clean_body);
        let r = run(&p, &checked(CheckLevel::Basic)).unwrap();
        let san = r.sanitizer.unwrap();
        assert!(
            san.findings
                .iter()
                .any(|f| f.kind == FindingKind::CanaryClobber),
            "{:?}",
            san.findings
        );
    }

    #[test]
    fn out_of_bounds_layout_slot_is_fatal_at_access() {
        let p = rig(&["ll$x", "ll$y"], vec![0, 5], clean_body);
        let err = run(&p, &checked(CheckLevel::Full)).unwrap_err();
        assert_eq!(
            err,
            crate::VmError::CheckedAccessViolation { slot: 5, len: 2 }
        );
        assert!(!err.is_resource_limit());
    }

    #[test]
    fn partially_overlapping_regions_are_reported() {
        // Region A covers slots {0,1}, region B covers {1,2}: partial
        // overlap — two children sharing slot 1.
        let src = "class P1 { field x; field y; }
                   class P2 { field y; field z; }
                   class Rect { field a; field b; field c; }
                   fn main() { print 0; }";
        let mut p = compile(src).unwrap();
        let rect = p.class_by_name("Rect").unwrap();
        for (i, name) in ["a$x", "a$y", "a$z"].iter().enumerate() {
            let fid = p.classes[rect].own_fields[i];
            p.fields[fid].name = p.interner.fresh(name);
        }
        let x = p.interner.get("x").unwrap();
        let y = p.interner.get("y").unwrap();
        let z = p.interner.get("z").unwrap();
        let p1 = p.class_by_name("P1").unwrap();
        let p2 = p.class_by_name("P2").unwrap();
        let la = p.layouts.push(InlineLayout {
            child_class: p1,
            child_fields: vec![x, y],
            slots: vec![0, 1],
            array_kind: None,
        });
        let lb = p.layouts.push(InlineLayout {
            child_class: p2,
            child_fields: vec![y, z],
            slots: vec![1, 2],
            array_kind: None,
        });
        let site = p.fresh_site();
        let entry = p.entry;
        let m = &mut p.methods[entry];
        m.temp_count = 8;
        let bb = m.entry();
        m.blocks[bb].instrs = vec![
            Instr::New {
                dst: t(1),
                class: rect,
                args: vec![],
                site,
            },
            Instr::MakeInterior {
                dst: t(2),
                obj: t(1),
                layout: la,
            },
            Instr::MakeInterior {
                dst: t(3),
                obj: t(1),
                layout: lb,
            },
            Instr::Const {
                dst: t(4),
                value: ConstValue::Int(7),
            },
            Instr::Print { src: t(4) },
        ];
        m.blocks[bb].term = Terminator::Return(t(0));
        let r = run(&p, &checked(CheckLevel::Full)).unwrap();
        let san = r.sanitizer.unwrap();
        assert!(
            san.findings
                .iter()
                .any(|f| f.kind == FindingKind::RegionOverlap),
            "{:?}",
            san.findings
        );
    }

    #[test]
    fn same_region_different_layout_ids_break_identity() {
        let src = "class P { field x; }
                   class Rect { field a; }
                   fn main() { print 0; }";
        let mut p = compile(src).unwrap();
        let rect = p.class_by_name("Rect").unwrap();
        let fid = p.classes[rect].own_fields[0];
        p.fields[fid].name = p.interner.fresh("a$x");
        let x = p.interner.get("x").unwrap();
        let pc = p.class_by_name("P").unwrap();
        let mk = |p: &mut oi_ir::Program| {
            p.layouts.push(InlineLayout {
                child_class: pc,
                child_fields: vec![x],
                slots: vec![0],
                array_kind: None,
            })
        };
        let la = mk(&mut p);
        let lb = mk(&mut p);
        let site = p.fresh_site();
        let entry = p.entry;
        let m = &mut p.methods[entry];
        m.temp_count = 8;
        let bb = m.entry();
        m.blocks[bb].instrs = vec![
            Instr::New {
                dst: t(1),
                class: rect,
                args: vec![],
                site,
            },
            Instr::MakeInterior {
                dst: t(2),
                obj: t(1),
                layout: la,
            },
            Instr::MakeInterior {
                dst: t(3),
                obj: t(1),
                layout: lb,
            },
            Instr::Binary {
                dst: t(4),
                op: oi_ir::BinOp::RefEq,
                lhs: t(2),
                rhs: t(3),
            },
            Instr::Print { src: t(4) },
        ];
        m.blocks[bb].term = Terminator::Return(t(0));
        let r = run(&p, &checked(CheckLevel::Full)).unwrap();
        assert_eq!(r.output, "false\n", "the identity bug itself");
        let san = r.sanitizer.unwrap();
        assert!(
            san.findings
                .iter()
                .any(|f| f.kind == FindingKind::IdentityMismatch),
            "{:?}",
            san.findings
        );
    }

    #[test]
    fn report_json_is_schema_stable() {
        let p = rig(&["ll$x", "ll$y"], vec![0, 1], poison_body);
        let r = run(&p, &checked(CheckLevel::Full)).unwrap();
        let doc = oi_support::Json::parse(&r.sanitizer.unwrap().to_json().to_string()).unwrap();
        for key in ["level", "total_findings", "checks", "findings"] {
            assert!(doc.get(key).is_some(), "sanitizer.{key} missing");
        }
        let rows = doc
            .get("findings")
            .and_then(oi_support::Json::as_arr)
            .unwrap();
        let row = &rows[0];
        for key in [
            "kind",
            "instruction",
            "method",
            "address",
            "field",
            "detail",
        ] {
            assert!(row.get(key).is_some(), "finding.{key} missing");
        }
    }

    #[test]
    fn check_levels_parse_round_trip() {
        for level in [CheckLevel::Off, CheckLevel::Basic, CheckLevel::Full] {
            assert_eq!(CheckLevel::parse(level.name()), Some(level));
        }
        assert_eq!(CheckLevel::parse("loud"), None);
    }
}
