//! The flat, word-addressed heap.
//!
//! Objects receive sequential byte addresses from a bump allocator (one
//! header word plus one word per slot), so the cache simulator sees a
//! realistic address stream: objects allocated together are adjacent, and an
//! inline-allocated child literally occupies words of its container.

use crate::error::VmError;
use crate::value::{ObjId, Value};
use oi_ir::ClassId;
use oi_support::IdxVec;

/// Word size in bytes.
pub const WORD: u64 = 8;

/// What a heap object is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjKind {
    /// A class instance; slots follow the class layout.
    Instance(ClassId),
    /// A reference array; slots are the elements.
    Array,
    /// An inline-allocated array of object state. `layout` indexes the VM's
    /// resolved layout table; `len` is the element count (slot count is
    /// `len * width`).
    ArrayInline {
        /// VM-resolved layout index.
        layout: u32,
        /// Element count.
        len: usize,
    },
}

/// One heap object.
#[derive(Clone, Debug)]
pub struct HeapObject {
    /// Kind tag.
    pub kind: ObjKind,
    /// Byte address of the header word.
    pub addr: u64,
    /// Payload.
    pub slots: Vec<Value>,
}

impl HeapObject {
    /// Byte address of slot `i`.
    pub fn slot_addr(&self, i: usize) -> u64 {
        self.addr + WORD + i as u64 * WORD
    }

    /// Element count for arrays (either kind).
    pub fn array_len(&self) -> Option<usize> {
        match self.kind {
            ObjKind::Array => Some(self.slots.len()),
            ObjKind::ArrayInline { len, .. } => Some(len),
            ObjKind::Instance(_) => None,
        }
    }
}

/// Count and footprint of one census group.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CensusBucket {
    /// Objects in the group.
    pub count: u64,
    /// Total words the group occupies, headers included.
    pub words: u64,
}

impl CensusBucket {
    fn add(&mut self, slot_words: u64, header_words: u64) {
        self.count += 1;
        self.words += slot_words + header_words;
    }
}

/// A walk of everything on the heap, grouped by what it is. Because the
/// heap is an arena (nothing is reclaimed), "live" here means
/// "ever allocated" — exactly the population the paper's §6 counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HeapCensus {
    /// Per-class instance buckets, indexed by raw class id, sorted by id.
    /// Classes that were never instantiated are absent.
    pub instances: Vec<(ClassId, CensusBucket)>,
    /// Reference arrays.
    pub arrays: CensusBucket,
    /// Inline-allocated arrays of object state.
    pub inline_arrays: CensusBucket,
    /// Total elements embedded across all inline arrays (each one a child
    /// object that never paid for its own allocation).
    pub inline_elements: u64,
    /// Total header/padding words paid across every object.
    pub header_words: u64,
    /// Every object on the heap.
    pub total_objects: u64,
    /// Every word handed out, headers included. Agrees with both
    /// [`Heap::words_allocated`] and the interpreter's
    /// `Metrics::words_allocated` by construction.
    pub total_words: u64,
}

/// The bump-allocated heap. Memory is never reclaimed (arena discipline, as
/// in the paper's measurements).
#[derive(Clone, Debug)]
pub struct Heap {
    objects: IdxVec<ObjId, HeapObject>,
    next_addr: u64,
    words_allocated: u64,
    max_words: u64,
    header_words: u64,
}

impl Heap {
    /// Creates an empty heap with a word budget and a per-object overhead
    /// (header plus allocator padding — real allocators burn 1–2 words per
    /// object, which is a large part of why inline allocation packs memory
    /// so much better).
    pub fn new(max_words: u64, header_words: u64) -> Self {
        Self {
            objects: IdxVec::new(),
            // Leave address 0 unused so "nil-like" addresses never alias.
            next_addr: WORD,
            words_allocated: 0,
            max_words,
            header_words: header_words.max(1),
        }
    }

    /// Allocates an object with `slot_count` nil slots.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] when the word budget is exhausted.
    pub fn alloc(&mut self, kind: ObjKind, slot_count: usize) -> Result<ObjId, VmError> {
        let words = slot_count as u64 + self.header_words;
        if self.words_allocated + words > self.max_words {
            return Err(VmError::OutOfMemory);
        }
        let addr = self.next_addr;
        self.next_addr += words * WORD;
        self.words_allocated += words;
        Ok(self.objects.push(HeapObject {
            kind,
            addr,
            slots: vec![Value::Nil; slot_count],
        }))
    }

    /// Immutable object access.
    pub fn get(&self, id: ObjId) -> &HeapObject {
        &self.objects[id]
    }

    /// Mutable object access.
    pub fn get_mut(&mut self, id: ObjId) -> &mut HeapObject {
        &mut self.objects[id]
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Words handed out so far (headers included).
    pub fn words_allocated(&self) -> u64 {
        self.words_allocated
    }

    /// The effective per-object overhead in words. This is the figure the
    /// heap actually charges — the constructor clamps the configured value
    /// to at least one word — so metrics accounting must use it rather
    /// than re-reading the raw configuration.
    pub fn header_words(&self) -> u64 {
        self.header_words
    }

    /// Walks the heap and aggregates a [`HeapCensus`].
    pub fn census(&self) -> HeapCensus {
        let mut census = HeapCensus::default();
        let mut per_class: std::collections::BTreeMap<ClassId, CensusBucket> =
            std::collections::BTreeMap::new();
        for obj in self.objects.iter() {
            let slot_words = obj.slots.len() as u64;
            match obj.kind {
                ObjKind::Instance(c) => {
                    per_class
                        .entry(c)
                        .or_default()
                        .add(slot_words, self.header_words);
                }
                ObjKind::Array => census.arrays.add(slot_words, self.header_words),
                ObjKind::ArrayInline { len, .. } => {
                    census.inline_arrays.add(slot_words, self.header_words);
                    census.inline_elements += len as u64;
                }
            }
            census.header_words += self.header_words;
            census.total_objects += 1;
            census.total_words += slot_words + self.header_words;
        }
        census.instances = per_class.into_iter().collect();
        census
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_sequential_and_disjoint() {
        let mut h = Heap::new(1024, 1);
        let a = h.alloc(ObjKind::Array, 2).unwrap();
        let b = h.alloc(ObjKind::Array, 3).unwrap();
        let (aa, ba) = (h.get(a).addr, h.get(b).addr);
        assert_eq!(ba - aa, 3 * WORD, "2 slots + header");
        assert_eq!(h.words_allocated(), 3 + 4);
    }

    #[test]
    fn slot_addresses_skip_header() {
        let mut h = Heap::new(1024, 1);
        let a = h.alloc(ObjKind::Instance(ClassId::new(0)), 2).unwrap();
        let obj = h.get(a);
        assert_eq!(obj.slot_addr(0), obj.addr + WORD);
        assert_eq!(obj.slot_addr(1), obj.addr + 2 * WORD);
    }

    #[test]
    fn slots_start_nil() {
        let mut h = Heap::new(1024, 1);
        let a = h.alloc(ObjKind::Array, 4).unwrap();
        assert!(h.get(a).slots.iter().all(|v| v.is_nil()));
        assert_eq!(h.get(a).array_len(), Some(4));
    }

    #[test]
    fn budget_is_enforced() {
        let mut h = Heap::new(4, 1);
        assert!(h.alloc(ObjKind::Array, 3).is_ok()); // 4 words with header
        assert_eq!(h.alloc(ObjKind::Array, 1), Err(VmError::OutOfMemory));
    }

    #[test]
    fn census_groups_by_kind_and_sums_words() {
        let mut h = Heap::new(1024, 2);
        h.alloc(ObjKind::Instance(ClassId::new(0)), 3).unwrap();
        h.alloc(ObjKind::Instance(ClassId::new(0)), 3).unwrap();
        h.alloc(ObjKind::Instance(ClassId::new(1)), 1).unwrap();
        h.alloc(ObjKind::Array, 4).unwrap();
        h.alloc(ObjKind::ArrayInline { layout: 0, len: 5 }, 10)
            .unwrap();
        let c = h.census();
        assert_eq!(c.total_objects, 5);
        assert_eq!(c.header_words, 5 * 2);
        assert_eq!(c.total_words, h.words_allocated());
        assert_eq!(
            c.instances,
            vec![
                (
                    ClassId::new(0),
                    CensusBucket {
                        count: 2,
                        words: 10
                    }
                ),
                (ClassId::new(1), CensusBucket { count: 1, words: 3 }),
            ]
        );
        assert_eq!(c.arrays, CensusBucket { count: 1, words: 6 });
        assert_eq!(
            c.inline_arrays,
            CensusBucket {
                count: 1,
                words: 12
            }
        );
        assert_eq!(c.inline_elements, 5);
    }

    #[test]
    fn header_words_reports_the_clamped_figure() {
        let h = Heap::new(1024, 0);
        assert_eq!(h.header_words(), 1, "heap clamps the overhead to >= 1");
        let h = Heap::new(1024, 3);
        assert_eq!(h.header_words(), 3);
    }

    #[test]
    fn empty_heap_census_is_all_zero() {
        let h = Heap::new(16, 1);
        assert_eq!(h.census(), HeapCensus::default());
    }

    #[test]
    fn inline_array_len_is_element_count() {
        let mut h = Heap::new(1024, 1);
        let a = h
            .alloc(ObjKind::ArrayInline { layout: 0, len: 5 }, 10)
            .unwrap();
        assert_eq!(h.get(a).array_len(), Some(5));
        assert_eq!(h.get(a).slots.len(), 10);
    }
}
