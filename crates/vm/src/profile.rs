//! Opt-in execution profiling: per-method and per-allocation-site
//! counters (`oic run --profile`).
//!
//! Profiling is off by default ([`crate::VmConfig::profile`]) so the
//! metered cost model stays the only per-instruction overhead in normal
//! runs. When enabled, every cycle charge is attributed to the method on
//! top of the interpreter's call stack (self time, not inclusive), cache
//! misses likewise, and every allocation to its static allocation site.

use oi_support::Json;

/// Execution counters for one method (self time, excluding callees).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MethodProfile {
    /// Human-readable `Class::method` name.
    pub name: String,
    /// Number of activations.
    pub calls: u64,
    /// Cycles charged while this method was on top of the stack.
    pub cycles: u64,
    /// Data-cache misses while this method was on top of the stack.
    pub cache_misses: u64,
}

/// Execution counters for one static allocation site.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteProfile {
    /// The site id (stable across a compilation).
    pub site: usize,
    /// Method containing the allocation instruction.
    pub method: String,
    /// Class allocated (`<array>` / `<array-inline>` for arrays).
    pub class: String,
    /// Objects allocated at this site.
    pub allocations: u64,
    /// Heap words allocated (including allocator overhead).
    pub words: u64,
}

/// A complete execution profile, sorted hottest-first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Methods by descending self cycles (zero-call methods dropped).
    pub methods: Vec<MethodProfile>,
    /// Allocation sites by descending allocation count (cold sites
    /// dropped).
    pub sites: Vec<SiteProfile>,
}

impl Profile {
    /// The profile as schema-stable JSON (`methods` and `sites` arrays).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "methods",
                Json::Arr(
                    self.methods
                        .iter()
                        .map(|m| {
                            Json::obj(vec![
                                ("name", m.name.clone().into()),
                                ("calls", m.calls.into()),
                                ("cycles", m.cycles.into()),
                                ("cache_misses", m.cache_misses.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "sites",
                Json::Arr(
                    self.sites
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("site", s.site.into()),
                                ("method", s.method.clone().into()),
                                ("class", s.class.clone().into()),
                                ("allocations", s.allocations.into()),
                                ("words", s.words.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl std::fmt::Display for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "--- hot methods (self cycles) ---")?;
        writeln!(
            f,
            "{:>12} {:>10} {:>10}  method",
            "cycles", "calls", "misses"
        )?;
        for m in &self.methods {
            writeln!(
                f,
                "{:>12} {:>10} {:>10}  {}",
                m.cycles, m.calls, m.cache_misses, m.name
            )?;
        }
        writeln!(f, "--- hot allocation sites ---")?;
        writeln!(f, "{:>12} {:>10}  site", "allocs", "words")?;
        for s in &self.sites {
            writeln!(
                f,
                "{:>12} {:>10}  #{} {} in {}",
                s.allocations, s.words, s.site, s.class, s.method
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_json_is_schema_stable() {
        let p = Profile {
            methods: vec![MethodProfile {
                name: "C::m".into(),
                calls: 2,
                cycles: 10,
                cache_misses: 1,
            }],
            sites: vec![SiteProfile {
                site: 0,
                method: "C::init".into(),
                class: "P".into(),
                allocations: 3,
                words: 12,
            }],
        };
        let j = p.to_json().to_string();
        let parsed = Json::parse(&j).unwrap();
        let m = &parsed.get("methods").unwrap().as_arr().unwrap()[0];
        assert_eq!(m.get("cycles").and_then(Json::as_i64), Some(10));
        let s = &parsed.get("sites").unwrap().as_arr().unwrap()[0];
        assert_eq!(s.get("allocations").and_then(Json::as_i64), Some(3));
    }

    #[test]
    fn display_prints_both_tables() {
        let p = Profile::default();
        let s = p.to_string();
        assert!(s.contains("hot methods"));
        assert!(s.contains("hot allocation sites"));
    }
}
