//! Opt-in execution profiling: per-method, per-allocation-site,
//! per-opcode, and per-access-site counters (`oic run --profile`,
//! `oic prof`).
//!
//! Profiling is off by default ([`crate::VmConfig::profile`]) so the
//! metered cost model stays the only per-instruction overhead in normal
//! runs. When enabled, every cycle charge is attributed to the method on
//! top of the interpreter's call stack (self time, not inclusive), cache
//! misses likewise, every allocation to its static allocation site, every
//! executed instruction to its opcode ([`OpcodeProfile`]), and every
//! field access to its access site ([`AccessSiteProfile`]) — the
//! `(class, field, direct-or-interior)` triple that names *where* heap
//! traffic comes from and whether it goes through inline child state.

use oi_support::Json;

/// Execution counters for one method (self time, excluding callees).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MethodProfile {
    /// Human-readable `Class::method` name.
    pub name: String,
    /// Number of activations.
    pub calls: u64,
    /// Cycles charged while this method was on top of the stack.
    pub cycles: u64,
    /// Data-cache misses while this method was on top of the stack.
    pub cache_misses: u64,
}

/// Execution counters for one static allocation site.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteProfile {
    /// The site id (stable across a compilation).
    pub site: usize,
    /// Method containing the allocation instruction.
    pub method: String,
    /// Class allocated (`<array>` / `<array-inline>` for arrays).
    pub class: String,
    /// Objects allocated at this site.
    pub allocations: u64,
    /// Heap words allocated (including allocator overhead).
    pub words: u64,
}

/// The dispatch histogram entry for one opcode.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpcodeProfile {
    /// Opcode name (`get_field`, `send`, ...; `branch` is the pseudo-op
    /// charged for block terminators).
    pub name: String,
    /// Times the opcode was dispatched.
    pub count: u64,
    /// Cycles charged while this opcode was executing (self time — a
    /// call opcode's callee attributes to the callee's own opcodes).
    pub cycles: u64,
}

/// Dynamic counters for one field-access site: a `(class, field,
/// access path)` triple. `interior` distinguishes accesses through an
/// interior reference — reads and writes of inline-allocated child state
/// — from direct object-slot accesses; ranking these by modeled cycles
/// names the paper's hot sites (the accesses inlining is supposed to
/// make cheap).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessSiteProfile {
    /// Class owning the accessed field (for interior accesses, the
    /// inlined child's class).
    pub class: String,
    /// Accessed field name.
    pub field: String,
    /// Whether the access went through an interior reference.
    pub interior: bool,
    /// Dynamic read count.
    pub reads: u64,
    /// Dynamic write count.
    pub writes: u64,
    /// Modeled cycles across all accesses (base cost + cache penalties).
    pub cycles: u64,
}

impl AccessSiteProfile {
    /// The stable `Class.field` / `Class.field (inline)` site label.
    pub fn label(&self) -> String {
        if self.interior {
            format!("{}.{} (inline)", self.class, self.field)
        } else {
            format!("{}.{}", self.class, self.field)
        }
    }
}

/// A complete execution profile, sorted hottest-first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Methods by descending self cycles (zero-call methods dropped).
    pub methods: Vec<MethodProfile>,
    /// Allocation sites by descending allocation count (cold sites
    /// dropped).
    pub sites: Vec<SiteProfile>,
    /// Opcode dispatch histogram by descending cycles (never-dispatched
    /// opcodes dropped).
    pub opcodes: Vec<OpcodeProfile>,
    /// Field-access sites by descending modeled cycles (untouched sites
    /// dropped).
    pub accesses: Vec<AccessSiteProfile>,
}

impl Profile {
    /// The profile as schema-stable JSON (`methods` and `sites` arrays).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "methods",
                Json::Arr(
                    self.methods
                        .iter()
                        .map(|m| {
                            Json::obj(vec![
                                ("name", m.name.clone().into()),
                                ("calls", m.calls.into()),
                                ("cycles", m.cycles.into()),
                                ("cache_misses", m.cache_misses.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "sites",
                Json::Arr(
                    self.sites
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("site", s.site.into()),
                                ("method", s.method.clone().into()),
                                ("class", s.class.clone().into()),
                                ("allocations", s.allocations.into()),
                                ("words", s.words.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "opcodes",
                Json::Arr(
                    self.opcodes
                        .iter()
                        .map(|o| {
                            Json::obj(vec![
                                ("name", o.name.clone().into()),
                                ("count", o.count.into()),
                                ("cycles", o.cycles.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "accesses",
                Json::Arr(
                    self.accesses
                        .iter()
                        .map(|a| {
                            Json::obj(vec![
                                ("class", a.class.clone().into()),
                                ("field", a.field.clone().into()),
                                ("interior", a.interior.into()),
                                ("reads", a.reads.into()),
                                ("writes", a.writes.into()),
                                ("cycles", a.cycles.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl std::fmt::Display for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "--- hot methods (self cycles) ---")?;
        writeln!(
            f,
            "{:>12} {:>10} {:>10}  method",
            "cycles", "calls", "misses"
        )?;
        for m in &self.methods {
            writeln!(
                f,
                "{:>12} {:>10} {:>10}  {}",
                m.cycles, m.calls, m.cache_misses, m.name
            )?;
        }
        writeln!(f, "--- hot allocation sites ---")?;
        writeln!(f, "{:>12} {:>10}  site", "allocs", "words")?;
        for s in &self.sites {
            writeln!(
                f,
                "{:>12} {:>10}  #{} {} in {}",
                s.allocations, s.words, s.site, s.class, s.method
            )?;
        }
        if !self.opcodes.is_empty() {
            writeln!(f, "--- opcode dispatch histogram ---")?;
            writeln!(f, "{:>12} {:>10}  opcode", "cycles", "count")?;
            for o in &self.opcodes {
                writeln!(f, "{:>12} {:>10}  {}", o.cycles, o.count, o.name)?;
            }
        }
        if !self.accesses.is_empty() {
            writeln!(f, "--- hot field-access sites ---")?;
            writeln!(f, "{:>12} {:>10} {:>10}  site", "cycles", "reads", "writes")?;
            for a in &self.accesses {
                writeln!(
                    f,
                    "{:>12} {:>10} {:>10}  {}",
                    a.cycles,
                    a.reads,
                    a.writes,
                    a.label()
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_json_is_schema_stable() {
        let p = Profile {
            methods: vec![MethodProfile {
                name: "C::m".into(),
                calls: 2,
                cycles: 10,
                cache_misses: 1,
            }],
            sites: vec![SiteProfile {
                site: 0,
                method: "C::init".into(),
                class: "P".into(),
                allocations: 3,
                words: 12,
            }],
            opcodes: vec![OpcodeProfile {
                name: "get_field".into(),
                count: 4,
                cycles: 20,
            }],
            accesses: vec![AccessSiteProfile {
                class: "P".into(),
                field: "x".into(),
                interior: true,
                reads: 4,
                writes: 0,
                cycles: 20,
            }],
        };
        let j = p.to_json().to_string();
        let parsed = Json::parse(&j).unwrap();
        let m = &parsed.get("methods").unwrap().as_arr().unwrap()[0];
        assert_eq!(m.get("cycles").and_then(Json::as_i64), Some(10));
        let s = &parsed.get("sites").unwrap().as_arr().unwrap()[0];
        assert_eq!(s.get("allocations").and_then(Json::as_i64), Some(3));
        let o = &parsed.get("opcodes").unwrap().as_arr().unwrap()[0];
        assert_eq!(o.get("count").and_then(Json::as_i64), Some(4));
        let a = &parsed.get("accesses").unwrap().as_arr().unwrap()[0];
        assert_eq!(a.get("interior").and_then(Json::as_bool), Some(true));
        assert_eq!(a.get("cycles").and_then(Json::as_i64), Some(20));
    }

    #[test]
    fn access_site_labels_mark_inline_paths() {
        let direct = AccessSiteProfile {
            class: "Rect".into(),
            field: "ll".into(),
            ..Default::default()
        };
        let inline = AccessSiteProfile {
            interior: true,
            ..direct.clone()
        };
        assert_eq!(direct.label(), "Rect.ll");
        assert_eq!(inline.label(), "Rect.ll (inline)");
    }

    #[test]
    fn display_prints_both_tables() {
        let p = Profile::default();
        let s = p.to_string();
        assert!(s.contains("hot methods"));
        assert!(s.contains("hot allocation sites"));
    }
}
