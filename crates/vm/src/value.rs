//! Runtime values.

use oi_ir::LayoutId;
use oi_support::{define_idx, Symbol};

define_idx!(
    /// Identifies a heap object.
    pub struct ObjId, "obj"
);

/// A runtime value. References are either whole-object references
/// ([`Value::Obj`]) or *interior references* ([`Value::Interior`]) into
/// inline-allocated child state — the runtime face of the paper's
/// transformation.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// The nil reference.
    #[default]
    Nil,
    /// Interned string constant.
    Str(Symbol),
    /// Reference to a heap object (instance or array).
    Obj(ObjId),
    /// Reference to inline child state within a container.
    ///
    /// `index` is the element index for array containers (0 for object
    /// containers); `layout` says where the child's fields live.
    Interior {
        /// The container object.
        obj: ObjId,
        /// Element index within an inline array container.
        index: u32,
        /// Layout of the child state inside the container.
        layout: LayoutId,
    },
}

impl Value {
    /// Returns `true` for `nil`.
    pub fn is_nil(self) -> bool {
        matches!(self, Value::Nil)
    }

    /// Returns `true` for any reference (object, interior) or nil.
    pub fn is_reference(self) -> bool {
        matches!(self, Value::Obj(_) | Value::Interior { .. } | Value::Nil)
    }

    /// Identity comparison: object identity for references, structural for
    /// primitives. Interior references are identical when they designate the
    /// same container slot range.
    pub fn identical(self, other: Value) -> bool {
        match (self, other) {
            (Value::Obj(a), Value::Obj(b)) => a == b,
            (
                Value::Interior {
                    obj: a,
                    index: i,
                    layout: l,
                },
                Value::Interior {
                    obj: b,
                    index: j,
                    layout: m,
                },
            ) => a == b && i == j && l == m,
            (Value::Nil, Value::Nil) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }

    /// Short type name for error messages.
    pub fn type_name(self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Nil => "nil",
            Value::Str(_) => "string",
            Value::Obj(_) => "object",
            Value::Interior { .. } => "object",
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_on_objects_is_by_id() {
        let a = Value::Obj(ObjId::new(1));
        let b = Value::Obj(ObjId::new(1));
        let c = Value::Obj(ObjId::new(2));
        assert!(a.identical(b));
        assert!(!a.identical(c));
    }

    #[test]
    fn interior_identity_includes_index_and_layout() {
        let mk = |i, l| Value::Interior {
            obj: ObjId::new(0),
            index: i,
            layout: LayoutId::new(l),
        };
        assert!(mk(1, 0).identical(mk(1, 0)));
        assert!(!mk(1, 0).identical(mk(2, 0)));
        assert!(!mk(1, 0).identical(mk(1, 1)));
        assert!(!mk(0, 0).identical(Value::Obj(ObjId::new(0))));
    }

    #[test]
    fn primitives_compare_structurally() {
        assert!(Value::Int(3).identical(Value::Int(3)));
        assert!(!Value::Int(3).identical(Value::Float(3.0)));
        assert!(Value::Nil.identical(Value::Nil));
    }

    #[test]
    fn reference_classification() {
        assert!(Value::Nil.is_reference());
        assert!(Value::Obj(ObjId::new(0)).is_reference());
        assert!(!Value::Int(0).is_reference());
    }
}
