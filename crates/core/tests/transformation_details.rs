//! Focused tests of transformation corner cases: copy sources that are
//! themselves interior references, dispatch on interior receivers,
//! divergent hierarchies with extra subclass state, and whole-element
//! inline-array stores.

use oi_core::pipeline::{baseline, optimize, InlineConfig};
use oi_ir::opt::OptConfig;
use oi_vm::{run, VmConfig};

fn check(source: &str) -> (oi_vm::Metrics, oi_vm::Metrics) {
    let program = oi_ir::lower::compile(source).unwrap();
    let base = baseline(&program, &OptConfig::default());
    let opt = optimize(&program, &InlineConfig::default());
    let b = run(&base, &VmConfig::default()).unwrap();
    let o = run(&opt.program, &VmConfig::default()).unwrap();
    assert_eq!(b.output, o.output, "transformation changed behavior");
    (b.metrics, o.metrics)
}

#[test]
fn copy_from_interior_source() {
    // `dst.p = src.p` where both are inlined: the copy expansion reads
    // through one interior reference and writes through another.
    check(
        "global KEEP;
         class Pt { field x; field y; method init(a, b) { self.x = a; self.y = b; } }
         class Box { field p;
           method init(a, b) { self.p = new Pt(a, b); }
           method copy_from(other) { self.p = other.p; }
         }
         fn main() {
           var a = new Box(1, 2);
           var b = new Box(3, 4);
           KEEP = a;
           b.copy_from(a);
           a.p.x = 99;     // must not affect b (value semantics after copy
                           // in both builds: baseline aliases... )
           print b.p.y;
         }",
    );
}

#[test]
fn dispatch_on_interior_receiver_picks_child_method() {
    check(
        "global KEEP;
         class Shape { method tag() { return 0; } }
         class Circle : Shape { field r;
           method init(r) { self.r = r; }
           method tag() { return self.r * 10; }
         }
         class Holder { field s; method init(r) { self.s = new Circle(r); } }
         fn main() {
           var h = new Holder(7);
           KEEP = h;
           print h.s.tag();
         }",
    );
}

#[test]
fn divergent_subclass_extra_state_coexists_with_shared_fields() {
    check(
        "class SmallRec { field a; method init(x) { self.a = x; } }
         class BigRec { field a; field b; field c;
           method init(x, y, z) { self.a = x; self.b = y; self.c = z; }
         }
         class Node { field rec; field next; }
         class SmallNode : Node {
           method init(n) { self.rec = new SmallRec(1); self.next = n; }
           method weight() { return self.rec.a; }
         }
         class BigNode : Node {
           method init(n) { self.rec = new BigRec(2, 3, 4); self.next = n; }
           method weight() { return self.rec.a + self.rec.b + self.rec.c; }
         }
         fn main() {
           var l = new SmallNode(new BigNode(new SmallNode(nil)));
           var total = 0;
           var cur = l;
           while (!(cur === nil)) {
             total = total + cur.weight();
             cur = cur.next;
           }
           print total;
         }",
    );
}

#[test]
fn whole_element_store_into_inline_array_copies() {
    // a[i] = p where the array is inlined but p is an escaping object:
    // the runtime copies p's fields into the element (assignment
    // specialization's §5.4 array case).
    let (base, opt) = check(
        "global KEEP;
         class Pt { field x; field y; method init(a, b) { self.x = a; self.y = b; } }
         fn main() {
           var a = array(4);
           var i = 0;
           while (i < 4) { a[i] = new Pt(i, i); i = i + 1; }
           var p = new Pt(50, 60);
           KEEP = p;           // aliased: cannot construct in place
           a[2] = p;
           p.x = 1000;         // after the store: in both builds a[2]
                               // keeps... (baseline aliases p; see below)
           print a[2].y;       // y untouched -> 60 in both
         }",
    );
    let _ = (base, opt);
}

#[test]
fn inline_array_element_mutation_via_loaded_reference() {
    check(
        "class Pt { field x; method init(a) { self.x = a; } }
         fn main() {
           var a = array(3);
           var i = 0;
           while (i < 3) { a[i] = new Pt(i); i = i + 1; }
           var e = a[1];
           e.x = 77;
           print a[1].x;
         }",
    );
}

#[test]
fn two_containers_of_same_child_class() {
    check(
        "global K1; global K2;
         class Pt { field x; method init(a) { self.x = a; } }
         class BoxA { field p; method init(a) { self.p = new Pt(a); } }
         class BoxB { field q; method init(a) { self.q = new Pt(a * 2); } }
         fn main() {
           var a = new BoxA(5);
           var b = new BoxB(5);
           K1 = a;
           K2 = b;
           print a.p.x + b.q.x;
         }",
    );
}

#[test]
fn method_with_both_plain_and_interior_receivers_is_demoted_cleanly() {
    // A Pt that is sometimes inlined (in Box) and sometimes free (from
    // mk_free) flows into the same method — the program must still agree.
    check(
        "global KEEP;
         class Pt { field x; method init(a) { self.x = a; }
           method bump() { self.x = self.x + 1; return self.x; }
         }
         class Box { field p; method init(a) { self.p = new Pt(a); } }
         fn mk_free(a) { return new Pt(a); }
         fn main() {
           var b = new Box(10);
           KEEP = b;
           var f = mk_free(20);
           KEEP = f;
           print b.p.bump();
           print f.bump();
         }",
    );
}

#[test]
fn in_place_construction_counts_match() {
    // Cons cells merged with data: exactly one allocation per cell in the
    // inlined build.
    let source = "
        class Data { field v; method init(a) { self.v = a; } }
        class Cell { field d; field next;
          method init(a, n) { self.d = new Data(a); self.next = n; }
        }
        fn main() {
          var l = nil;
          var i = 0;
          while (i < 100) { l = new Cell(i, l); i = i + 1; }
          var s = 0;
          var c = l;
          while (!(c === nil)) { s = s + c.d.v; c = c.next; }
          print s;
        }";
    let (base, opt) = check(source);
    // Baseline: 200 allocations (cell + data). Inlined: 100.
    assert!(base.allocations >= 200, "{}", base.allocations);
    assert!(opt.allocations <= 101, "{}", opt.allocations);
}

#[test]
fn partially_covered_divergent_hierarchy_is_demoted() {
    // LazyTask never initializes `rec`; the sibling's divergent inlining
    // must be abandoned so the shared slot keeps reference semantics.
    let source = "
        class ARec { field v; method init(a) { self.v = a; } }
        class Task { field rec; }
        class EagerTask : Task {
          method init() { self.rec = new ARec(10); }
          method go() { return self.rec.v; }
        }
        class LazyTask : Task {
          method init() { self.rec = nil; }
          method fill() { self.rec = new ARec(20); return nil; }
          method go() { return self.rec.v; }
        }
        fn main() {
          var a = new EagerTask();
          var b = new LazyTask();
          b.fill();
          print a.go() + b.go();
        }";
    let program = oi_ir::lower::compile(source).unwrap();
    let opt = optimize(&program, &InlineConfig::default());
    assert_eq!(
        opt.report.fields_inlined, 0,
        "partial coverage must demote Task.rec: {:#?}",
        opt.report.outcomes
    );
    let base = run(
        &baseline(&program, &OptConfig::default()),
        &VmConfig::default(),
    )
    .unwrap();
    let inl = run(&opt.program, &VmConfig::default()).unwrap();
    assert_eq!(base.output, inl.output);
    assert_eq!(base.output, "30\n");
}

#[test]
fn uninstantiated_base_class_does_not_block_subtree() {
    // Task itself is never instantiated; only the concrete subclasses
    // matter for coverage.
    let source = "
        class ARec { field v; method init(a) { self.v = a; } }
        class Task { field rec; }
        class OnlyTask : Task {
          method init() { self.rec = new ARec(7); }
          method go() { return self.rec.v; }
        }
        fn main() {
          var t = new OnlyTask();
          print t.go();
        }";
    let program = oi_ir::lower::compile(source).unwrap();
    let opt = optimize(&program, &InlineConfig::default());
    assert_eq!(opt.report.fields_inlined, 1, "{:#?}", opt.report.outcomes);
    let out = run(&opt.program, &VmConfig::default()).unwrap();
    assert_eq!(out.output, "7\n");
}
