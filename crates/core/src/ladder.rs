//! The graceful-degradation ladder: a total, panic-contained compilation
//! strategy.
//!
//! Production drivers cannot afford a pipeline that aborts: one hostile
//! program must cost at most its own precision, never the session. The
//! ladder runs the pipeline at descending tiers until one succeeds:
//!
//! 1. **`guarded-full`** — the full pipeline behind the soundness
//!    firewall's differential oracle (paper-strength precision, checked
//!    empirically).
//! 2. **`reduced-precision`** — the same pipeline with halved contour caps,
//!    a shallower tag path, and a halved tag budget. Coarser analysis
//!    means fewer (but cheaper) inlining decisions.
//! 3. **`inlining-off`** — the baseline build: analysis-driven
//!    devirtualization and cleanups, no object inlining.
//!
//! A tier is abandoned — with a rule-6 `tier-descent` provenance entry and
//! a `pipeline.tier_descend` trace event — when its attempt panics,
//! returns a [`PipelineError`](crate::pipeline::PipelineError), or (with
//! the oracle enabled) leaves
//! divergences that retraction could not repair within the firewall's
//! retraction budget. Resource-budget exhaustion is *not* a descent
//! trigger: the analysis freezes and completes soundly (see
//! [`oi_analysis::try_analyze_budgeted`]), so the tier's result stays
//! usable and is merely flagged degraded. Should even `inlining-off` fail,
//! the ladder ships the input program verbatim (`identity`) — no input can
//! make [`optimize_with_ladder`] fail.

use crate::firewall::{optimize_guarded_budgeted, FirewallConfig};
use crate::pipeline::{try_baseline_budgeted, try_optimize_budgeted, InlineConfig, Optimized};
use crate::report::{EffectivenessReport, ProvenanceStep};
use oi_ir::Program;
use oi_support::panic::contained;
use oi_support::trace::{self, kv};
use oi_support::Budget;
use std::collections::BTreeSet;

/// The DESIGN §11 rule number recorded on `tier-descent` provenance steps
/// (rules 1–4 are decision rejections, rule 5 is firewall retraction).
pub const TIER_DESCENT_RULE: u8 = 6;

/// One rung of the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Full pipeline behind the differential oracle.
    GuardedFull,
    /// Halved contour caps, shallower tag paths, halved tag budget.
    ReducedPrecision,
    /// Baseline build: devirtualization and cleanups only.
    InliningOff,
}

impl Tier {
    /// Stable kebab-case name used in reports, traces, and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Tier::GuardedFull => "guarded-full",
            Tier::ReducedPrecision => "reduced-precision",
            Tier::InliningOff => "inlining-off",
        }
    }

    /// The next tier down, or `None` at the bottom rung.
    pub fn next_lower(self) -> Option<Tier> {
        match self {
            Tier::GuardedFull => Some(Tier::ReducedPrecision),
            Tier::ReducedPrecision => Some(Tier::InliningOff),
            Tier::InliningOff => None,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One rung of the *brownout* ladder — the service-level overload dial.
///
/// The first three rungs map onto the compilation [`Tier`] the ladder
/// starts from; the fourth, `cache-only`, is a service policy with no
/// compilation tier at all: cached artifacts are served, cache misses are
/// shed with retry guidance instead of compiled. Deeper rungs trade
/// precision (and finally freshness) for queue drain rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutLevel {
    /// Normal service: the full guarded pipeline.
    GuardedFull,
    /// Compiles start at [`Tier::ReducedPrecision`].
    ReducedPrecision,
    /// Compiles start at [`Tier::InliningOff`].
    InliningOff,
    /// Serve cache hits only; shed every compile miss.
    CacheOnly,
}

impl BrownoutLevel {
    /// Every level, shallowest first.
    pub const ALL: [BrownoutLevel; 4] = [
        BrownoutLevel::GuardedFull,
        BrownoutLevel::ReducedPrecision,
        BrownoutLevel::InliningOff,
        BrownoutLevel::CacheOnly,
    ];

    /// Stable kebab-case name used in gauges, responses, and JSON.
    pub fn name(self) -> &'static str {
        match self {
            BrownoutLevel::GuardedFull => "guarded-full",
            BrownoutLevel::ReducedPrecision => "reduced-precision",
            BrownoutLevel::InliningOff => "inlining-off",
            BrownoutLevel::CacheOnly => "cache-only",
        }
    }

    /// Depth index (0 = `guarded-full` … 3 = `cache-only`), the value of
    /// the `serve.brownout_tier` gauge.
    pub fn index(self) -> usize {
        match self {
            BrownoutLevel::GuardedFull => 0,
            BrownoutLevel::ReducedPrecision => 1,
            BrownoutLevel::InliningOff => 2,
            BrownoutLevel::CacheOnly => 3,
        }
    }

    /// The level at `index`, saturating at `cache-only`.
    pub fn from_index(index: usize) -> BrownoutLevel {
        *BrownoutLevel::ALL
            .get(index)
            .unwrap_or(&BrownoutLevel::CacheOnly)
    }

    /// One rung deeper, or `None` at `cache-only`.
    pub fn descend(self) -> Option<BrownoutLevel> {
        match self {
            BrownoutLevel::GuardedFull => Some(BrownoutLevel::ReducedPrecision),
            BrownoutLevel::ReducedPrecision => Some(BrownoutLevel::InliningOff),
            BrownoutLevel::InliningOff => Some(BrownoutLevel::CacheOnly),
            BrownoutLevel::CacheOnly => None,
        }
    }

    /// One rung shallower, or `None` at `guarded-full`.
    pub fn recover(self) -> Option<BrownoutLevel> {
        match self {
            BrownoutLevel::GuardedFull => None,
            BrownoutLevel::ReducedPrecision => Some(BrownoutLevel::GuardedFull),
            BrownoutLevel::InliningOff => Some(BrownoutLevel::ReducedPrecision),
            BrownoutLevel::CacheOnly => Some(BrownoutLevel::InliningOff),
        }
    }

    /// The compilation tier compiles should start from at this level, or
    /// `None` at `cache-only` (no compiles happen at all).
    pub fn start_tier(self) -> Option<Tier> {
        match self {
            BrownoutLevel::GuardedFull => Some(Tier::GuardedFull),
            BrownoutLevel::ReducedPrecision => Some(Tier::ReducedPrecision),
            BrownoutLevel::InliningOff => Some(Tier::InliningOff),
            BrownoutLevel::CacheOnly => None,
        }
    }
}

impl std::fmt::Display for BrownoutLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Ladder configuration.
#[derive(Clone, Copy, Debug)]
pub struct LadderConfig {
    /// Pipeline configuration for the top tier; lower tiers derive coarser
    /// analysis knobs from it (see [`reduced_precision_config`]).
    pub inline: InlineConfig,
    /// Firewall configuration used when [`Self::oracle`] is on.
    pub firewall: FirewallConfig,
    /// Run each inlining tier behind the differential oracle (two extra VM
    /// runs per attempt). Disable for benchmarking paths that validate
    /// elsewhere.
    pub oracle: bool,
    /// The tier to start from (a retry after a panic starts lower).
    pub start: Tier,
}

impl Default for LadderConfig {
    fn default() -> Self {
        Self {
            inline: InlineConfig::default(),
            firewall: FirewallConfig::default(),
            oracle: true,
            start: Tier::GuardedFull,
        }
    }
}

/// One recorded tier descent.
#[derive(Clone, Debug)]
pub struct Descent {
    /// Tier that failed.
    pub from: Tier,
    /// Tier descended to (`from == to == InliningOff` marks the identity
    /// fallback).
    pub to: Tier,
    /// Human-readable failure description.
    pub reason: String,
}

/// The ladder's (always-produced) result.
#[derive(Clone, Debug)]
pub struct LadderOutcome {
    /// The program and report of the landing tier. `report.tier` carries
    /// [`Self::tier_name`], `report.degraded` the analysis-budget flag, and
    /// `report.provenance` one rule-6 step per descent.
    pub optimized: Optimized,
    /// The tier the compilation landed on.
    pub tier: Tier,
    /// Every descent taken, in order. Empty on a first-tier success.
    pub descents: Vec<Descent>,
    /// `true` when even the baseline build failed and the input program
    /// was shipped verbatim.
    pub identity_fallback: bool,
}

impl LadderOutcome {
    /// The landing tier's stable name (`"identity"` for the verbatim
    /// fallback below `inlining-off`).
    pub fn tier_name(&self) -> &'static str {
        if self.identity_fallback {
            "identity"
        } else {
            self.tier.name()
        }
    }
}

/// Derives the `reduced-precision` analysis knobs from the top tier's:
/// halved contour caps, one less tag-path segment, halved tag budget (all
/// floored at 1).
pub fn reduced_precision_config(inline: &InlineConfig) -> InlineConfig {
    let mut c = *inline;
    let a = &mut c.analysis;
    a.max_contours_per_method = (a.max_contours_per_method / 2).max(1);
    a.max_ocontours_per_site = (a.max_ocontours_per_site / 2).max(1);
    a.max_tag_path = a.max_tag_path.saturating_sub(1).max(1);
    a.max_tags_per_value = (a.max_tags_per_value / 2).max(1);
    c
}

/// Runs the degradation ladder from `config.start` downwards. Infallible:
/// some tier always lands (the identity fallback ships the input program
/// verbatim in the worst case).
pub fn optimize_with_ladder(
    program: &Program,
    config: &LadderConfig,
    budget: &Budget,
) -> LadderOutcome {
    let mut tier = config.start;
    let mut descents: Vec<Descent> = Vec::new();
    loop {
        match attempt_tier(program, config, tier, budget) {
            Ok(mut optimized) => {
                finish_report(&mut optimized.report, tier.name(), &descents, budget);
                return LadderOutcome {
                    optimized,
                    tier,
                    descents,
                    identity_fallback: false,
                };
            }
            Err(reason) => {
                let to = tier.next_lower();
                trace::counter("pipeline.tier_descents", 1);
                if trace::is_enabled() {
                    trace::event(
                        "pipeline.tier_descend",
                        vec![
                            kv("from", tier.name()),
                            kv("to", to.map_or("identity", Tier::name)),
                            kv("reason", reason.clone()),
                        ],
                    );
                }
                match to {
                    Some(lower) => {
                        descents.push(Descent {
                            from: tier,
                            to: lower,
                            reason,
                        });
                        tier = lower;
                    }
                    None => {
                        // Identity fallback: nothing below the baseline
                        // works, so ship the input unchanged.
                        descents.push(Descent {
                            from: tier,
                            to: Tier::InliningOff,
                            reason,
                        });
                        let mut optimized = Optimized {
                            program: program.clone(),
                            report: EffectivenessReport::default(),
                            passes: 0,
                            decisions: Vec::new(),
                        };
                        finish_report(&mut optimized.report, "identity", &descents, budget);
                        return LadderOutcome {
                            optimized,
                            tier,
                            descents,
                            identity_fallback: true,
                        };
                    }
                }
            }
        }
    }
}

/// Stamps the landing tier, the degradation flag, and per-descent rule-6
/// provenance onto the report.
fn finish_report(
    report: &mut EffectivenessReport,
    tier_name: &str,
    descents: &[Descent],
    budget: &Budget,
) {
    report.tier = tier_name.to_owned();
    report.degraded |= budget.is_exhausted();
    for d in descents {
        report.provenance.push(ProvenanceStep {
            pass: 0,
            field: "<pipeline>".to_owned(),
            inlined: false,
            code: "tier-descent".to_owned(),
            rule: Some(TIER_DESCENT_RULE),
            detail: format!("{} -> {}: {}", d.from, d.to, d.reason),
        });
    }
}

/// One tier attempt, panic-contained. `Err` carries the reason the tier
/// must be abandoned.
fn attempt_tier(
    program: &Program,
    config: &LadderConfig,
    tier: Tier,
    budget: &Budget,
) -> Result<Optimized, String> {
    match tier {
        Tier::InliningOff => {
            match contained(|| try_baseline_budgeted(program, &config.inline.opt, budget)) {
                Ok(Ok(p)) => Ok(Optimized {
                    program: p,
                    report: EffectivenessReport::default(),
                    passes: 0,
                    decisions: Vec::new(),
                }),
                Ok(Err(e)) => Err(format!("pipeline error: {e}")),
                Err(panic_msg) => Err(format!("panic: {panic_msg}")),
            }
        }
        Tier::GuardedFull | Tier::ReducedPrecision => {
            let inline = if tier == Tier::ReducedPrecision {
                reduced_precision_config(&config.inline)
            } else {
                config.inline
            };
            if config.oracle {
                match contained(|| {
                    optimize_guarded_budgeted(program, &inline, &config.firewall, budget)
                }) {
                    Ok(Ok(g)) if g.is_equivalent() => Ok(g.optimized),
                    Ok(Ok(g)) => Err(format!(
                        "oracle rejection unrepaired after {} retraction(s): {}",
                        g.retracted.len(),
                        g.divergences
                            .first()
                            .map_or_else(String::new, ToString::to_string)
                    )),
                    Ok(Err(e)) => Err(format!("pipeline error: {e}")),
                    Err(panic_msg) => Err(format!("panic: {panic_msg}")),
                }
            } else {
                match contained(|| {
                    try_optimize_budgeted(program, &inline, &BTreeSet::new(), budget)
                }) {
                    Ok(Ok(o)) => Ok(o),
                    Ok(Err(e)) => Err(format!("pipeline error: {e}")),
                    Err(panic_msg) => Err(format!("panic: {panic_msg}")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firewall::Fault;
    use oi_ir::lower::compile;
    use oi_vm::{run, VmConfig};

    const RECT: &str = "
        global KEEP;
        class Point { field x; field y;
          method init(a, b) { self.x = a; self.y = b; }
        }
        class Rect { field ll; field ur;
          method init(a, b) { self.ll = new Point(a, a + 1); self.ur = new Point(b, b + 3); }
          method span() { return self.ur.x - self.ll.x + self.ur.y - self.ll.y; }
        }
        fn main() {
          var r = new Rect(1, 10);
          KEEP = r;
          print KEEP.ll.x;
          print KEEP.ll.y;
          print KEEP.span();
        }";

    #[test]
    fn healthy_program_lands_on_the_top_tier() {
        let p = compile(RECT).unwrap();
        let budget = Budget::unlimited();
        let out = optimize_with_ladder(&p, &LadderConfig::default(), &budget);
        assert_eq!(out.tier, Tier::GuardedFull);
        assert_eq!(out.tier_name(), "guarded-full");
        assert!(out.descents.is_empty());
        assert!(!out.identity_fallback);
        assert_eq!(out.optimized.report.tier, "guarded-full");
        assert!(!out.optimized.report.degraded);
        assert_eq!(out.optimized.report.fields_inlined, 2);
    }

    #[test]
    fn starved_budget_degrades_but_stays_on_tier() {
        let p = compile(RECT).unwrap();
        let budget = Budget::unlimited().with_rounds(1).with_contours(1);
        let out = optimize_with_ladder(&p, &LadderConfig::default(), &budget);
        assert_eq!(out.tier, Tier::GuardedFull, "descents: {:?}", out.descents);
        assert!(out.optimized.report.degraded);
        let opt = run(&out.optimized.program, &VmConfig::default()).unwrap();
        let base = run(&p, &VmConfig::default()).unwrap();
        assert_eq!(base.output, opt.output);
    }

    #[test]
    fn unrepaired_fault_descends_exactly_one_tier_with_provenance() {
        // Repair disabled (max_retractions: 0): the injected layout bug
        // makes the oracle reject the guarded-full build outright. The
        // reduced-precision rebuild re-runs decisions from scratch, so
        // this needs a program where the coarser analysis no longer takes
        // the corruptible decision. Contour-cap sensitivity only shows
        // through call *returns* (instruction-level facts join over all
        // contours either way), hence the factory dispatch: at the full
        // cap (4) every `mk` call keeps its own contour, `H.pt` precisely
        // holds `P`, and inlining it yields the non-contiguous layout the
        // fault corrupts. At the halved cap (2) the last two calls share
        // the widened contour, `mk`'s return joins `{Filler, P}`, rule 1
        // (imprecise content) rejects the field, and the fault has no
        // layout left to corrupt — so the ladder lands one tier down.
        // Reads go through the global: global loads are rewritten to
        // interior references resolved through the layout table at run
        // time, which is where the corruption is observable (direct local
        // chains get their slot offsets baked in at rewrite time).
        let src = "
            global KEEP;
            class P { field x; field y; method init(a, b) { self.x = a; self.y = b; } }
            class Filler { field q; method init(a) { self.q = a; } }
            class MakeP { method make() { return new P(1, 2); } }
            class MakeF1 { method make() { return new Filler(3); } }
            class MakeF2 { method make() { return new Filler(4); } }
            class MakeF3 { method make() { return new Filler(5); } }
            class H { field pt; field z; method init(p, c) { self.pt = p; self.z = c; } }
            fn mk(f) { return f.make(); }
            fn main() {
              mk(new MakeF1());
              mk(new MakeF2());
              mk(new MakeF3());
              var h = new H(mk(new MakeP()), 7);
              KEEP = h;
              print KEEP.pt.x;
              print KEEP.pt.y;
              print KEEP.z;
            }";
        let p = compile(src).unwrap();
        let mut config = LadderConfig {
            firewall: FirewallConfig {
                fault: Some(Fault::CompactFirstLayoutSlots),
                max_retractions: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        config.inline.analysis.max_contours_per_method = 4;
        let budget = Budget::unlimited();
        let out = optimize_with_ladder(&p, &config, &budget);
        assert_eq!(
            out.descents.len(),
            1,
            "exactly one descent: {:?}",
            out.descents
        );
        assert_eq!(out.tier, Tier::ReducedPrecision);
        assert_eq!(out.optimized.report.tier, "reduced-precision");
        let step = out
            .optimized
            .report
            .provenance
            .iter()
            .find(|s| s.code == "tier-descent")
            .expect("descent provenance recorded");
        assert_eq!(step.rule, Some(TIER_DESCENT_RULE));
        assert!(
            step.detail.starts_with("guarded-full -> reduced-precision"),
            "{}",
            step.detail
        );
        // The landing tier's program is oracle-checked and equivalent.
        let opt = run(&out.optimized.program, &VmConfig::default()).unwrap();
        let base = run(&p, &VmConfig::default()).unwrap();
        assert_eq!(base.output, opt.output);
    }

    #[test]
    fn oracle_off_skips_the_vm_runs_but_still_lands() {
        let p = compile(RECT).unwrap();
        let config = LadderConfig {
            oracle: false,
            ..Default::default()
        };
        let budget = Budget::unlimited();
        let out = optimize_with_ladder(&p, &config, &budget);
        assert_eq!(out.tier, Tier::GuardedFull);
        assert_eq!(out.optimized.report.fields_inlined, 2);
    }

    #[test]
    fn brownout_levels_walk_down_and_back_up() {
        let mut level = BrownoutLevel::GuardedFull;
        let mut names = vec![level.name()];
        while let Some(next) = level.descend() {
            level = next;
            names.push(level.name());
        }
        assert_eq!(
            names,
            [
                "guarded-full",
                "reduced-precision",
                "inlining-off",
                "cache-only"
            ]
        );
        assert_eq!(level.descend(), None);
        while let Some(up) = level.recover() {
            level = up;
        }
        assert_eq!(level, BrownoutLevel::GuardedFull);
        assert_eq!(level.recover(), None);
        for (i, l) in BrownoutLevel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
            assert_eq!(BrownoutLevel::from_index(i), *l);
        }
        assert_eq!(BrownoutLevel::from_index(99), BrownoutLevel::CacheOnly);
        assert_eq!(
            BrownoutLevel::GuardedFull.start_tier(),
            Some(Tier::GuardedFull)
        );
        assert_eq!(
            BrownoutLevel::ReducedPrecision.start_tier(),
            Some(Tier::ReducedPrecision)
        );
        assert_eq!(
            BrownoutLevel::InliningOff.start_tier(),
            Some(Tier::InliningOff)
        );
        assert_eq!(BrownoutLevel::CacheOnly.start_tier(), None);
    }

    #[test]
    fn reduced_precision_config_floors_at_one() {
        let mut inline = InlineConfig::default();
        inline.analysis.max_contours_per_method = 1;
        inline.analysis.max_ocontours_per_site = 1;
        inline.analysis.max_tag_path = 1;
        inline.analysis.max_tags_per_value = 1;
        let c = reduced_precision_config(&inline);
        assert_eq!(c.analysis.max_contours_per_method, 1);
        assert_eq!(c.analysis.max_ocontours_per_site, 1);
        assert_eq!(c.analysis.max_tag_path, 1);
        assert_eq!(c.analysis.max_tags_per_value, 1);
    }
}
