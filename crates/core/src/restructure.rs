//! Class restructuring (paper §5.2).
//!
//! "Both constraints can be satisfied by replacing the inlined field with
//! one field from the inlined class, and adding the rest of the fields at
//! the end of the fields of the container class" — Figure 11. The
//! replacement slot sits in the declaring class's segment (so it has the
//! same index in every subclass), and the appended fields go at the end of
//! the declaring class's own segment for uniform entries (all subclasses
//! shift consistently and stay layout-conforming) or at the end of the
//! concrete class's own segment for divergent entries.

use crate::decision::InlinePlan;
use oi_ir::{Field, InlineLayout, Program};
use oi_support::Symbol;

/// Applies the plan's layout changes to `program`, filling in each entry's
/// [`oi_ir::LayoutId`].
///
/// # Panics
///
/// Panics if an entry's field is not present in its declaring class (plan
/// and program out of sync).
pub fn apply(program: &mut Program, plan: &mut InlinePlan) {
    // Phase 1: structural edits to own_fields.
    // For divergent groups, the shared replacement slot is created once per
    // (declaring, field).
    let mut entry_first_field: Vec<Option<oi_ir::FieldId>> = vec![None; plan.entries.len()];
    let mut entry_rest_fields: Vec<Vec<oi_ir::FieldId>> = vec![Vec::new(); plan.entries.len()];
    let mut divergent_slot: std::collections::HashMap<(oi_ir::ClassId, Symbol), oi_ir::FieldId> =
        std::collections::HashMap::new();

    for (i, entry) in plan.entries.iter().enumerate() {
        let child_layout = program.layout_of(entry.child);
        let child_names: Vec<Symbol> = child_layout
            .iter()
            .map(|&f| program.fields[f].name)
            .collect();
        assert!(
            !child_names.is_empty(),
            "zero-width child was filtered by the decision"
        );
        let fname_str = program.interner.resolve(entry.field).to_owned();

        if entry.uniform {
            // Replace the field in the declaring class and append the rest
            // to the declaring class's own segment.
            let declaring = entry.declaring;
            let pos = program.classes[declaring]
                .own_fields
                .iter()
                .position(|&f| program.fields[f].name == entry.field)
                .expect("declaring class owns the inlined field");
            let mut new_ids = Vec::new();
            for name in &child_names {
                let combined =
                    format!("{fname_str}${}", program.interner.resolve(*name).to_owned());
                let sym = program.interner.fresh(&combined);
                new_ids.push(program.fields.push(Field {
                    name: sym,
                    owner: declaring,
                    annotations: vec![],
                }));
            }
            program.classes[declaring].own_fields[pos] = new_ids[0];
            program.classes[declaring]
                .own_fields
                .extend(new_ids[1..].iter().copied());
            entry_first_field[i] = Some(new_ids[0]);
            entry_rest_fields[i] = new_ids[1..].to_vec();
        } else {
            // Divergent: shared replacement slot in the declaring class,
            // per-concrete-class extras.
            let declaring = entry.declaring;
            let slot_fid = *divergent_slot
                .entry((declaring, entry.field))
                .or_insert_with(|| {
                    let pos = program.classes[declaring]
                        .own_fields
                        .iter()
                        .position(|&f| program.fields[f].name == entry.field)
                        .expect("declaring class owns the inlined field");
                    let sym = program.interner.fresh(&format!("{fname_str}$inline"));
                    let fid = program.fields.push(Field {
                        name: sym,
                        owner: declaring,
                        annotations: vec![],
                    });
                    program.classes[declaring].own_fields[pos] = fid;
                    fid
                });
            entry_first_field[i] = Some(slot_fid);
            let concrete = entry.containers[0];
            let mut rest = Vec::new();
            for name in child_names.iter().skip(1) {
                let combined =
                    format!("{fname_str}${}", program.interner.resolve(*name).to_owned());
                let sym = program.interner.fresh(&combined);
                rest.push(program.fields.push(Field {
                    name: sym,
                    owner: concrete,
                    annotations: vec![],
                }));
            }
            program.classes[concrete]
                .own_fields
                .extend(rest.iter().copied());
            entry_rest_fields[i] = rest;
        }
    }

    // Phase 2: with all own_fields final, compute slot indices and create
    // the layouts.
    for (i, entry) in plan.entries.iter_mut().enumerate() {
        let child_names: Vec<Symbol> = program
            .layout_of(entry.child)
            .iter()
            .map(|&f| program.fields[f].name)
            .collect();
        // Slots are computed in a representative container's layout; for
        // uniform entries the new fields live in the declaring class's
        // segment, so indices agree across all subclasses.
        let container = if entry.uniform {
            entry.declaring
        } else {
            entry.containers[0]
        };
        let container_layout = program.layout_of(container);
        let slot_of = |fid: oi_ir::FieldId| -> usize {
            container_layout
                .iter()
                .position(|&f| f == fid)
                .expect("new field is in the container layout")
        };
        let mut slots = vec![slot_of(entry_first_field[i].expect("filled in phase 1"))];
        slots.extend(entry_rest_fields[i].iter().map(|&f| slot_of(f)));
        let layout = program.layouts.push(InlineLayout {
            child_class: entry.child,
            child_fields: child_names,
            slots,
            array_kind: None,
        });
        entry.layout = Some(layout);
    }

    // Array entries: pure layout-table additions, no class restructuring.
    for (_, a) in plan.array_sites.iter_mut() {
        if a.pre_existing {
            continue; // keeps its existing layout
        }
        let child_names: Vec<Symbol> = program
            .layout_of(a.child)
            .iter()
            .map(|&f| program.fields[f].name)
            .collect();
        let layout = program.layouts.push(InlineLayout {
            child_class: a.child,
            child_fields: child_names,
            slots: vec![],
            array_kind: Some(a.kind),
        });
        a.layout = Some(layout);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::{decide, DecisionConfig};
    use oi_analysis::{analyze, AnalysisConfig};
    use oi_ir::lower::compile;

    #[test]
    fn uniform_restructure_replaces_and_appends() {
        let mut p = compile(
            "class Point { field x; field y;
               method init(a, b) { self.x = a; self.y = b; }
             }
             class Rect { field ll; field ur;
               method init(a, b) { self.ll = a; self.ur = b; }
             }
             class Para : Rect { field extra; }
             fn main() {
               var r = new Rect(new Point(1.0, 2.0), new Point(3.0, 4.0));
               print r.ll.x + r.ur.y;
             }",
        )
        .unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        let mut plan = decide(&p, &r, &DecisionConfig::default());
        assert_eq!(plan.entries.len(), 2);
        apply(&mut p, &mut plan);

        let rect = p.class_by_name("Rect").unwrap();
        let para = p.class_by_name("Para").unwrap();
        // Rect layout: ll$x, ur$x(?), ... — 2 fields each → 4 slots.
        assert_eq!(p.layout_of(rect).len(), 4);
        // Para = Rect prefix + extra.
        let para_layout = p.layout_of(para);
        assert_eq!(para_layout.len(), 5);
        assert_eq!(&para_layout[..4], &p.layout_of(rect)[..]);
        // Old field names are gone.
        let ll = p.interner.get("ll").unwrap();
        assert!(p.slot_of(rect, ll).is_none());
        // Layouts point at valid slots.
        for e in &plan.entries {
            let layout = &p.layouts[e.layout.unwrap()];
            assert_eq!(layout.slots.len(), 2);
            assert!(layout.slots.iter().all(|&s| s < 4));
        }
        // The first child field replaced the original slot: slot 0 for ll.
        let e_ll = plan.entry_for(rect, ll).unwrap();
        assert_eq!(p.layouts[e_ll.layout.unwrap()].slots[0], 0);
        oi_ir::verify::verify(&p).unwrap();
    }

    #[test]
    fn divergent_restructure_shares_replacement_slot() {
        let mut p = compile(
            "class DevPacket { field a; method init(v) { self.a = v; } }
             class HandPacket { field b; field c; method init(v, w) { self.b = v; self.c = w; } }
             class Task { field data; field next; }
             class DevTask : Task {
               method init() { self.data = new DevPacket(1); self.next = 0; }
               method go() { return self.data.a; }
             }
             class HandTask : Task {
               method init() { self.data = new HandPacket(2, 3); self.next = 0; }
               method go() { return self.data.b + self.data.c; }
             }
             fn main() {
               var t1 = new DevTask(); var t2 = new HandTask();
               print t1.go() + t2.go();
             }",
        )
        .unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        let mut plan = decide(&p, &r, &DecisionConfig::default());
        assert_eq!(plan.entries.len(), 2, "rejected: {:?}", plan.rejected);
        apply(&mut p, &mut plan);

        let dev = p.class_by_name("DevTask").unwrap();
        let hand = p.class_by_name("HandTask").unwrap();
        let task = p.class_by_name("Task").unwrap();
        let data = p.interner.get("data").unwrap();
        let next = p.interner.get("next").unwrap();
        // `next` keeps the same slot in both subclasses (conformance).
        assert_eq!(p.slot_of(dev, next), p.slot_of(hand, next));
        // Both entries' first child field shares the replacement slot.
        let e_dev = plan.entry_for(dev, data).unwrap();
        let e_hand = plan.entry_for(hand, data).unwrap();
        assert_eq!(
            p.layouts[e_dev.layout.unwrap()].slots[0],
            p.layouts[e_hand.layout.unwrap()].slots[0]
        );
        // HandTask grew an extra word for HandPacket's second field.
        assert_eq!(p.layout_of(hand).len(), p.layout_of(task).len() + 1);
        assert_eq!(p.layout_of(dev).len(), p.layout_of(task).len());
    }
}
