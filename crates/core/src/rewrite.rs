//! Use redirection and assignment rewriting (paper §5.3–§5.4).
//!
//! After restructuring, every access to an inlined field is redirected:
//!
//! - a **load** becomes [`oi_ir::Instr::MakeInterior`] — address arithmetic,
//!   no dereference;
//! - a **store** becomes field-wise copies into the inline state, or, when
//!   the stored value is a locally created object consumed only by this
//!   store, **in-place construction**: the child's `new` disappears and its
//!   constructor runs directly against the container's inline state (this
//!   is where allocation savings come from, e.g. merged cons cells);
//! - a planned reference-array allocation becomes
//!   [`oi_ir::Instr::NewArrayInline`] (element reads/stores adapt through
//!   the runtime's layout machinery; the element index is threaded inside
//!   the interior reference as §5.3 describes).

use crate::decision::InlinePlan;
use crate::fault::Fault;
use crate::usespec;
use oi_analysis::AnalysisResult;
use oi_ir::{Instr, MethodId, Program, Temp};

/// Statistics from one rewrite pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Loads redirected to interior references.
    pub loads_redirected: usize,
    /// Stores rewritten into copies.
    pub stores_copied: usize,
    /// Stores rewritten into in-place construction (allocation removed).
    pub stores_constructed_in_place: usize,
    /// Array allocations inlined.
    pub arrays_inlined: usize,
}

/// Rewrites every method against the (already restructured) plan.
///
/// `fault` is the rewrite-pass slice of the fault-injection matrix
/// ([`Fault::SkipUseRedirect`], [`Fault::DropAssignCopy`]); other variants
/// (and `None`) leave the rewrite untouched. Each fault fires at the first
/// applicable site only — a single injected miscompilation, like the real
/// bug it models.
pub fn apply(
    program: &mut Program,
    result: &AnalysisResult,
    plan: &InlinePlan,
    fault: Option<Fault>,
) -> RewriteStats {
    let mut stats = RewriteStats::default();
    let init_sym = program.interner.get("init");
    let mut seams = FaultSeams {
        skip_redirect: matches!(fault, Some(Fault::SkipUseRedirect)),
        drop_copy: matches!(fault, Some(Fault::DropAssignCopy)),
    };
    for mid in program.methods.ids().collect::<Vec<_>>() {
        rewrite_method(program, result, plan, mid, init_sym, &mut stats, &mut seams);
    }
    stats
}

/// One-shot fault triggers, consumed at the first applicable site.
struct FaultSeams {
    /// Leave the next redirectable load un-redirected.
    skip_redirect: bool,
    /// Omit the final field copy of the next store expansion.
    drop_copy: bool,
}

#[allow(clippy::too_many_arguments)]
fn rewrite_method(
    program: &mut Program,
    result: &AnalysisResult,
    plan: &InlinePlan,
    mid: MethodId,
    init_sym: Option<oi_support::Symbol>,
    stats: &mut RewriteStats,
    seams: &mut FaultSeams,
) {
    let block_ids: Vec<_> = program.methods[mid].blocks.ids().collect();
    for bb in block_ids {
        let old = std::mem::take(&mut program.methods[mid].blocks[bb].instrs);

        // Pre-pass: find stores eligible for in-place construction and the
        // New instruction they consume. in_place[j] = store index i means
        // "the New at j is constructed in place for the store at i".
        let mut in_place_new: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut in_place_store: std::collections::HashMap<usize, (usize, oi_ir::LayoutId)> =
            std::collections::HashMap::new();
        for (i, instr) in old.iter().enumerate() {
            match instr {
                Instr::SetField { obj, field, src } => {
                    let Some(layout) =
                        lookup_layout(program, result, plan, mid, bb, i, *obj, *field)
                    else {
                        continue;
                    };
                    let entry = plan
                        .entries
                        .iter()
                        .find(|e| e.layout == Some(layout))
                        .expect("layout belongs to an entry");
                    if let Some(j) = find_in_place_new(program, &old, i, &[*obj], *src, entry.child)
                    {
                        in_place_new.insert(j, i);
                        in_place_store.insert(i, (j, layout));
                    }
                }
                Instr::ArraySet { arr, idx, src } => {
                    let Some((layout, child)) = lookup_array_layout(result, plan, mid, *arr) else {
                        continue;
                    };
                    if let Some(j) = find_in_place_new(program, &old, i, &[*arr, *idx], *src, child)
                    {
                        in_place_new.insert(j, i);
                        in_place_store.insert(i, (j, layout));
                    }
                }
                _ => {}
            }
        }

        let mut new_instrs: Vec<Instr> = Vec::with_capacity(old.len());
        for (i, instr) in old.iter().enumerate() {
            match instr {
                Instr::GetField { dst, obj, field } => {
                    match lookup_layout(program, result, plan, mid, bb, i, *obj, *field) {
                        Some(layout) => {
                            if seams.skip_redirect {
                                // Injected §5.3 bug: this access keeps its
                                // original form against a field
                                // restructuring has removed.
                                seams.skip_redirect = false;
                                new_instrs.push(instr.clone());
                            } else {
                                stats.loads_redirected += 1;
                                new_instrs.push(Instr::MakeInterior {
                                    dst: *dst,
                                    obj: *obj,
                                    layout,
                                });
                            }
                        }
                        None => new_instrs.push(instr.clone()),
                    }
                }
                Instr::SetField { obj, field, src } => {
                    if let Some(&(new_idx, layout)) = in_place_store.get(&i) {
                        // The construction already happened at `new_idx`;
                        // the store disappears.
                        let _ = (new_idx, layout);
                        stats.stores_constructed_in_place += 1;
                        continue;
                    }
                    match lookup_layout(program, result, plan, mid, bb, i, *obj, *field) {
                        Some(layout) => {
                            stats.stores_copied += 1;
                            emit_copy(program, mid, &mut new_instrs, *obj, *src, layout, seams);
                        }
                        None => new_instrs.push(instr.clone()),
                    }
                }
                Instr::New {
                    dst,
                    class,
                    args,
                    site,
                } => {
                    if let Some(&store_idx) = in_place_new.get(&i) {
                        // Replace allocation with interior construction.
                        let (_, layout) = in_place_store[&store_idx];
                        match &old[store_idx] {
                            Instr::SetField { obj, .. } => {
                                new_instrs.push(Instr::MakeInterior {
                                    dst: *dst,
                                    obj: *obj,
                                    layout,
                                });
                            }
                            Instr::ArraySet { arr, idx, .. } => {
                                new_instrs.push(Instr::MakeInteriorElem {
                                    dst: *dst,
                                    arr: *arr,
                                    idx: *idx,
                                    layout,
                                });
                            }
                            _ => unreachable!("in-place target is a store"),
                        }
                        if let Some(init) = init_sym.and_then(|s| program.lookup_method(*class, s))
                        {
                            // Raw allocations (constructor explosion) have
                            // an explicit init call elsewhere; only emit
                            // the call when the New carried the arguments.
                            if program.methods[init].param_count as usize == args.len() {
                                let ret = fresh_temp(program, mid);
                                new_instrs.push(Instr::CallStatic {
                                    dst: ret,
                                    method: init,
                                    recv: *dst,
                                    args: args.clone(),
                                });
                            }
                        }
                        let _ = site;
                    } else {
                        new_instrs.push(instr.clone());
                    }
                }
                Instr::ArraySet { .. } => {
                    if in_place_store.contains_key(&i) {
                        // Constructed in place at the New; the store
                        // disappears.
                        stats.stores_constructed_in_place += 1;
                        continue;
                    }
                    new_instrs.push(instr.clone());
                }
                Instr::NewArray { dst, len, site } => {
                    match plan.array_sites.get(site).and_then(|a| a.layout) {
                        Some(layout) => {
                            stats.arrays_inlined += 1;
                            new_instrs.push(Instr::NewArrayInline {
                                dst: *dst,
                                len: *len,
                                layout,
                                site: *site,
                            });
                        }
                        None => new_instrs.push(instr.clone()),
                    }
                }
                _ => new_instrs.push(instr.clone()),
            }
        }
        program.methods[mid].blocks[bb].instrs = new_instrs;
    }
}

/// The layout to rewrite an access against, if the access touches a planned
/// field. The decision stage guarantees agreement, so the first planned
/// receiver class determines the layout.
#[allow(clippy::too_many_arguments)]
fn lookup_layout(
    program: &Program,
    result: &AnalysisResult,
    plan: &InlinePlan,
    method: MethodId,
    bb: oi_ir::BlockId,
    idx: usize,
    obj: Temp,
    field: oi_support::Symbol,
) -> Option<oi_ir::LayoutId> {
    let _ = (program, bb, idx);
    let info = usespec::receiver_info(result, method, obj);
    for class in &info.classes {
        if let Some(e) = plan.entry_for(*class, field) {
            return e.layout;
        }
    }
    None
}

/// The layout for a planned inline array the temp may hold — all reaching
/// array sites must be planned with the same layout.
fn lookup_array_layout(
    result: &AnalysisResult,
    plan: &InlinePlan,
    method: MethodId,
    arr: Temp,
) -> Option<(oi_ir::LayoutId, oi_ir::ClassId)> {
    let info = usespec::receiver_info(result, method, arr);
    if info.array_sites.is_empty() {
        return None;
    }
    let mut found: Option<(oi_ir::LayoutId, oi_ir::ClassId)> = None;
    for site in &info.array_sites {
        let entry = plan.array_sites.get(site)?;
        let layout = entry.layout?;
        match found {
            None => found = Some((layout, entry.child)),
            Some((l, _)) if l == layout => {}
            Some(_) => return None,
        }
    }
    found
}

/// Detects the in-place construction pattern for the store at `store_idx`:
/// a `new child(...)` earlier in the same block whose result flows (through
/// block-local moves) only into this store, with the container temps
/// (`stable`) unchanged in between.
fn find_in_place_new(
    program: &Program,
    instrs: &[Instr],
    store_idx: usize,
    stable: &[Temp],
    src: Temp,
    child: oi_ir::ClassId,
) -> Option<usize> {
    let child_init = program
        .interner
        .get("init")
        .and_then(|s| program.lookup_method(child, s));
    // Walk the move chain backwards from `src`.
    let mut cur = src;
    let mut chain: Vec<Temp> = vec![src];
    let mut new_idx: Option<usize>;
    #[allow(unused_assignments)]
    {
        new_idx = None;
    }
    'outer: loop {
        for j in (0..store_idx).rev() {
            match &instrs[j] {
                Instr::Move { dst, src: msrc } if *dst == cur => {
                    cur = *msrc;
                    chain.push(cur);
                    continue 'outer;
                }
                Instr::New { dst, class, .. } if *dst == cur => {
                    if *class != child {
                        return None;
                    }
                    new_idx = Some(j);
                    break 'outer;
                }
                other => {
                    if other.dst() == Some(cur) {
                        return None; // defined by something else
                    }
                }
            }
        }
        return None; // def not in this block
    }
    let j = new_idx?;

    // The container (and index) temps must not be redefined between the New
    // and the store.
    for instr in &instrs[j..store_idx] {
        if let Some(d) = instr.dst() {
            if stable.contains(&d) {
                return None;
            }
        }
    }
    // Chain temps must have no uses besides the moves and the store (their
    // value becomes an interior reference; any other consumer would observe
    // it — conservatively require none). Uses are scanned over the whole
    // block; cross-block uses disqualify via the temp still being live —
    // approximate by scanning all instructions of the block after the New.
    let mut uses = Vec::new();
    for (k, instr) in instrs.iter().enumerate() {
        uses.clear();
        instr.uses(&mut uses);
        for &u in &uses {
            if chain.contains(&u) {
                let is_the_store = k == store_idx;
                let is_chain_move = matches!(
                    instr,
                    Instr::Move { dst, src } if chain.contains(dst) && chain.contains(src)
                );
                // Construction-window operations keep working after the
                // child becomes an interior reference: the explicit
                // constructor call of the exploded form, initializing
                // stores/loads through the child, and interior references
                // into it (they compose).
                let in_window = k > j && k < store_idx;
                let is_construction = in_window
                    && match instr {
                        Instr::CallStatic {
                            method, recv, args, ..
                        } => {
                            Some(*method) == child_init
                                && chain.contains(recv)
                                && !args.iter().any(|a| chain.contains(a))
                        }
                        Instr::SetField { obj, src, .. } => {
                            chain.contains(obj) && !chain.contains(src)
                        }
                        Instr::GetField { obj, .. } => chain.contains(obj),
                        Instr::MakeInterior { obj, .. } => chain.contains(obj),
                        _ => false,
                    };
                if !is_the_store && !is_chain_move && !is_construction {
                    return None;
                }
            }
        }
        // A redefinition of a chain temp after the New also disqualifies.
        if k > j && k < store_idx {
            if let Some(d) = instr.dst() {
                if chain.contains(&d) && !matches!(instr, Instr::Move { .. } | Instr::New { .. }) {
                    return None;
                }
            }
        }
    }
    Some(j)
}

/// Emits the copy expansion of `obj.<inlined field> = src`.
fn emit_copy(
    program: &mut Program,
    mid: MethodId,
    out: &mut Vec<Instr>,
    obj: Temp,
    src: Temp,
    layout: oi_ir::LayoutId,
    seams: &mut FaultSeams,
) {
    let interior = fresh_temp(program, mid);
    out.push(Instr::MakeInterior {
        dst: interior,
        obj,
        layout,
    });
    let child_fields = program.layouts[layout].child_fields.clone();
    let last = child_fields.len().saturating_sub(1);
    for (k, g) in child_fields.into_iter().enumerate() {
        if k == last && seams.drop_copy {
            // Injected §5.4 bug: the final field of this pass-by-value
            // copy is silently dropped, leaving its inline slot
            // uninitialized (poison under checked execution).
            seams.drop_copy = false;
            continue;
        }
        let tmp = fresh_temp(program, mid);
        out.push(Instr::GetField {
            dst: tmp,
            obj: src,
            field: g,
        });
        out.push(Instr::SetField {
            obj: interior,
            field: g,
            src: tmp,
        });
    }
}

fn fresh_temp(program: &mut Program, mid: MethodId) -> Temp {
    let t = Temp::new(program.methods[mid].temp_count as usize);
    program.methods[mid].temp_count += 1;
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::{decide, DecisionConfig};
    use oi_analysis::{analyze, AnalysisConfig};
    use oi_ir::lower::compile;

    fn transform(src: &str) -> (Program, RewriteStats) {
        let mut p = compile(src).unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        let mut plan = decide(&p, &r, &DecisionConfig::default());
        crate::restructure::apply(&mut p, &mut plan);
        let stats = apply(&mut p, &r, &plan, None);
        oi_ir::verify::verify(&p).unwrap();
        (p, stats)
    }

    #[test]
    fn loads_become_interior_references() {
        let (p, stats) = transform(
            "class Point { field x; field y;
               method init(a, b) { self.x = a; self.y = b; }
             }
             class Rect { field ll; field ur;
               method init(a, b) { self.ll = a; self.ur = b; }
             }
             fn main() {
               var r = new Rect(new Point(1.0, 2.0), new Point(3.0, 4.0));
               print r.ll.x + r.ur.y;
             }",
        );
        assert_eq!(stats.loads_redirected, 2, "r.ll and r.ur loads");
        assert!(stats.stores_copied + stats.stores_constructed_in_place == 2);
        // Transformed program must still run and print the same answer.
        let out = oi_vm::run(&p, &oi_vm::VmConfig::default()).unwrap();
        assert_eq!(out.output, "5.0\n");
    }

    #[test]
    fn in_place_construction_removes_allocations() {
        let (p, stats) = transform(
            "class Point { field x; field y;
               method init(a, b) { self.x = a; self.y = b; }
             }
             class Rect { field ll; field ur;
               method init(a, b) { self.ll = new Point(a, a); self.ur = new Point(b, b); }
             }
             fn mk(i) {
               var r = new Rect(i, i + 1.0);
               return r.ll.x + r.ur.y;
             }
             fn main() { print mk(1.0) + mk(2.0); }",
        );
        // The Points are created at the assignment: the allocation
        // disappears and the constructor runs against the inline state.
        assert_eq!(
            stats.stores_constructed_in_place, 2,
            "expected in-place construction, got {stats:?}"
        );
        let out = oi_vm::run(&p, &oi_vm::VmConfig::default()).unwrap();
        assert_eq!(out.output, "8.0\n");
        // No Point allocations remain anywhere.
        let news: usize = p
            .methods
            .iter()
            .map(|m| {
                m.blocks
                    .iter()
                    .flat_map(|b| &b.instrs)
                    .filter(|i| {
                        matches!(i, Instr::New { class, .. }
                            if *class == p.class_by_name("Point").unwrap())
                    })
                    .count()
            })
            .sum();
        assert_eq!(news, 0);
    }

    #[test]
    fn array_allocation_is_inlined() {
        let (p, stats) = transform(
            "class P { field x; field y; method init(a, b) { self.x = a; self.y = b; } }
             fn main() {
               var a = array(8);
               var i = 0;
               while (i < 8) { a[i] = new P(i, 2 * i); i = i + 1; }
               var s = 0; i = 0;
               while (i < 8) { s = s + a[i].x + a[i].y; i = i + 1; }
               print s;
             }",
        );
        assert_eq!(stats.arrays_inlined, 1);
        let out = oi_vm::run(&p, &oi_vm::VmConfig::default()).unwrap();
        assert_eq!(out.output, "84\n");
    }

    #[test]
    fn behavior_preserved_under_mutation_through_container() {
        let (p, _) = transform(
            "class Point { field x; method init(a) { self.x = a; } }
             class Rect { field ll; method init(a) { self.ll = a; } }
             fn main() {
               var r = new Rect(new Point(10));
               r.ll.x = 42;
               print r.ll.x;
             }",
        );
        let out = oi_vm::run(&p, &oi_vm::VmConfig::default()).unwrap();
        assert_eq!(out.output, "42\n");
    }
}
