#![warn(missing_docs)]
//! Object inlining — the primary contribution of *Automatic Inline
//! Allocation of Objects* (Dolby, PLDI 1997).
//!
//! Object inlining automatically allocates child objects *inside* their
//! containers (the way a C++ programmer writes `Point p;` instead of
//! `Point *p;`) while preserving a uniform object model in the source
//! language. The optimization has two analyses and one transformation:
//!
//! - **Use specialization** (§4.1, [`usespec`]): find all uses of values
//!   loaded from inlinable fields precisely, via the tag analysis in
//!   `oi-analysis`, and demand that every field-access instruction can be
//!   rewritten against a single inline layout.
//! - **Assignment specialization** (§4.2, [`assignspec`]): prove that the
//!   value stored into an inlined slot can be *passed by value* — it was
//!   created locally (or itself received by value), is never stored
//!   anywhere else, and is never used after the store — so copying it into
//!   the container cannot change observable aliasing.
//! - **Transformation** (§5, [`restructure`] and [`rewrite`]): remove the
//!   reference field, splice the child's fields into the container (first
//!   child field replaces the removed slot, the rest are appended — §5.2),
//!   redirect loads to interior references, turn stores into field-wise
//!   copies or in-place construction, and inline-allocate arrays of objects
//!   with interleaved or parallel layout (§5.3).
//!
//! The entry point is [`pipeline::optimize`]; [`pipeline::baseline`]
//! produces the comparison program (devirtualized and cleaned up, but
//! without object inlining), mirroring the paper's "Concert without
//! inlining" configuration.
//!
//! # Examples
//!
//! ```
//! use oi_core::pipeline::{optimize, InlineConfig};
//! let program = oi_ir::lower::compile(
//!     "class Point { field x; field y;
//!        method init(a, b) { self.x = a; self.y = b; }
//!      }
//!      class Rect { field ll @inline_cxx; field ur;
//!        method init(a, b) { self.ll = a; self.ur = b; }
//!      }
//!      fn main() {
//!        var r = new Rect(new Point(1.0, 2.0), new Point(3.0, 4.0));
//!        print r.ll.x + r.ur.y;
//!      }",
//! )?;
//! let optimized = optimize(&program, &InlineConfig::default());
//! assert!(optimized.report.fields_inlined >= 1);
//! # Ok::<(), oi_support::Diagnostic>(())
//! ```

pub mod assignspec;
pub mod cache;
pub mod decision;
pub mod devirt;
pub mod fault;
pub mod firewall;
pub mod ladder;
pub mod pipeline;
pub mod report;
pub mod restructure;
pub mod rewrite;
pub mod usespec;

pub use cache::{config_fingerprint, Artifact, ArtifactCache, CacheKey, CacheStats};
pub use decision::{InlinePlan, PlanEntry};
pub use fault::{Fault, IoFault};
pub use firewall::{
    optimize_guarded, optimize_guarded_budgeted, Divergence, FirewallConfig, Guarded,
};
pub use ladder::{optimize_with_ladder, BrownoutLevel, LadderConfig, LadderOutcome, Tier};
pub use pipeline::{baseline, optimize, InlineConfig, Optimized};
pub use report::EffectivenessReport;
