//! Use specialization support (paper §4.1).
//!
//! The tag analysis lives in `oi-analysis`; this module derives the facts
//! the inlining decision needs from it: for every field access and every
//! identity comparison, which classes (and which provenance tags) the
//! operands may carry. A field can be inlined only when every instruction
//! that touches it can be rewritten against a single inline layout — the
//! instruction-level realization of "the tags of the given field must not
//! be confused with tags from any other field".

use oi_analysis::{AnalysisResult, PathSeg};
use oi_ir::{BlockId, ClassId, Instr, MethodId, Program, SiteId, Temp};
use oi_support::Symbol;
use std::collections::BTreeSet;

/// What a receiver operand may be, joined over all contours of the method.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecvInfo {
    /// Possible concrete instance classes.
    pub classes: BTreeSet<ClassId>,
    /// Possible array allocation sites.
    pub array_sites: BTreeSet<SiteId>,
    /// May be nil.
    pub has_nil: bool,
    /// Provenance-tag overflow anywhere.
    pub tag_top: bool,
    /// Direct field provenances `(origin class, field)` of the value.
    pub direct_tags: BTreeSet<(Option<ClassId>, Symbol)>,
}

/// Computes the joined receiver information for `temp` in `method`.
pub fn receiver_info(result: &AnalysisResult, method: MethodId, temp: Temp) -> RecvInfo {
    let mut info = RecvInfo::default();
    let Some(contours) = result.contours_of_method.get(&method) else {
        return info;
    };
    for &c in contours {
        let v = &result.mcontours[c].frame[temp.index()];
        for ty in &v.types {
            match ty {
                oi_analysis::TypeElem::Obj(oc) => {
                    if let Some(class) = result.ocontours[*oc].class {
                        info.classes.insert(class);
                    }
                }
                oi_analysis::TypeElem::Arr(oc) => {
                    info.array_sites.insert(result.ocontours[*oc].site);
                }
                oi_analysis::TypeElem::Nil => info.has_nil = true,
                _ => {}
            }
        }
        if v.tag_top {
            info.tag_top = true;
        }
        for &t in &v.tags {
            let tag = result.tags.resolve(t);
            if tag.path.len() == 1 {
                if let PathSeg::Field(f) = tag.path[0] {
                    let class = result.ocontours[tag.origin].class;
                    info.direct_tags.insert((class, f));
                }
            }
        }
    }
    info
}

/// One field access in the program.
#[derive(Clone, Debug)]
pub struct FieldAccess {
    /// Enclosing method.
    pub method: MethodId,
    /// Block of the instruction.
    pub bb: BlockId,
    /// Index within the block.
    pub idx: usize,
    /// Accessed field name.
    pub field: Symbol,
    /// The receiver temp.
    pub obj: Temp,
    /// `Some(src)` for stores, `None` for loads.
    pub store_src: Option<Temp>,
}

/// Collects every `GetField`/`SetField` in the program.
pub fn field_accesses(program: &Program) -> Vec<FieldAccess> {
    let mut out = Vec::new();
    for (mid, m) in program.methods.iter_enumerated() {
        for (bb, idx, instr) in m.instrs() {
            match instr {
                Instr::GetField { obj, field, .. } => out.push(FieldAccess {
                    method: mid,
                    bb,
                    idx,
                    field: *field,
                    obj: *obj,
                    store_src: None,
                }),
                Instr::SetField { obj, field, src } => out.push(FieldAccess {
                    method: mid,
                    bb,
                    idx,
                    field: *field,
                    obj: *obj,
                    store_src: Some(*src),
                }),
                _ => {}
            }
        }
    }
    out
}

/// One array store in the program.
#[derive(Clone, Debug)]
pub struct ArrayStore {
    /// Enclosing method.
    pub method: MethodId,
    /// Block of the instruction.
    pub bb: BlockId,
    /// Index within the block.
    pub idx: usize,
    /// The array temp.
    pub arr: Temp,
    /// The stored value temp.
    pub src: Temp,
}

/// Collects every `ArraySet` in the program.
pub fn array_stores(program: &Program) -> Vec<ArrayStore> {
    let mut out = Vec::new();
    for (mid, m) in program.methods.iter_enumerated() {
        for (bb, idx, instr) in m.instrs() {
            if let Instr::ArraySet { arr, idx: _, src } = instr {
                out.push(ArrayStore {
                    method: mid,
                    bb,
                    idx,
                    arr: *arr,
                    src: *src,
                });
            }
        }
    }
    out
}

/// Classes whose values take part in identity-observing comparisons
/// (`===`, and `==`/`!=` between references). Inlining a child of any of
/// these classes could change comparison results, so candidates with these
/// child classes are demoted.
pub fn identity_compared_classes(program: &Program, result: &AnalysisResult) -> BTreeSet<ClassId> {
    let mut out = BTreeSet::new();
    for (mid, m) in program.methods.iter_enumerated() {
        for (_, _, instr) in m.instrs() {
            let Instr::Binary { op, lhs, rhs, .. } = instr else {
                continue;
            };
            if !matches!(
                op,
                oi_ir::BinOp::RefEq | oi_ir::BinOp::Eq | oi_ir::BinOp::Ne
            ) {
                continue;
            }
            let li = receiver_info(result, mid, *lhs);
            let ri = receiver_info(result, mid, *rhs);
            let l_refs = !li.classes.is_empty() || !li.array_sites.is_empty();
            let r_refs = !ri.classes.is_empty() || !ri.array_sites.is_empty();
            if l_refs && r_refs {
                out.extend(li.classes.iter().copied());
                out.extend(ri.classes.iter().copied());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oi_analysis::{analyze, AnalysisConfig};
    use oi_ir::lower::compile;

    #[test]
    fn receiver_info_collects_classes() {
        let p = compile(
            "class A { } class B { }
             fn pick(x) { return x; }
             fn main() { print pick(new A()); print pick(new B()); }",
        )
        .unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        let pick = p.method_by_name("$Main", "pick").unwrap();
        let info = receiver_info(&r, pick, Temp::new(1));
        assert_eq!(info.classes.len(), 2);
        assert!(!info.has_nil);
    }

    #[test]
    fn field_accesses_found() {
        let p = compile(
            "class C { field v; method init(a) { self.v = a; } method get() { return self.v; } }
             fn main() { var c = new C(1); print c.get(); }",
        )
        .unwrap();
        let accesses = field_accesses(&p);
        assert_eq!(accesses.len(), 2);
        assert_eq!(accesses.iter().filter(|a| a.store_src.is_some()).count(), 1);
    }

    #[test]
    fn identity_classes_detected() {
        let p = compile(
            "class A { }
             fn main() { var a = new A(); var b = new A(); print a === b; }",
        )
        .unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        let ids = identity_compared_classes(&p, &r);
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn nil_comparison_does_not_mark_identity() {
        let p = compile(
            "class A { }
             fn main() { var a = new A(); print a === nil; }",
        )
        .unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        let ids = identity_compared_classes(&p, &r);
        assert!(ids.is_empty(), "=== nil must not block inlining: {ids:?}");
    }
}
