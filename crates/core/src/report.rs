//! Effectiveness reporting (paper §6.1, Figure 14).
//!
//! Figure 14 counts, per benchmark: the total number of fields which hold
//! objects, the number that could ideally be inlined given aliasing
//! constraints (hand-determined — recorded as `@inline_ideal` annotations
//! in our benchmark sources), the number declared inline in the original
//! C++ (`@inline_cxx`), and the number the optimization inlined
//! automatically.

use oi_ir::Program;
use oi_support::Json;

/// Per-field outcome, for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldOutcome {
    /// `Class.field` human-readable name.
    pub name: String,
    /// Whether the optimizer inlined it.
    pub inlined: bool,
    /// Rejection reason when not inlined (empty if inlined or never a
    /// candidate).
    pub reason: String,
    /// Stable kebab-case reason code (empty when inlined).
    pub code: String,
    /// The DESIGN §4 rule number behind `code` (`None` when inlined).
    pub rule: Option<u8>,
    /// Offending site or class (empty when inlined or not pinpointed).
    pub detail: String,
}

/// One step in a field's decision history: what the decision stage
/// concluded about it on one pipeline pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvenanceStep {
    /// Pipeline pass the verdict was reached on (0-based).
    pub pass: usize,
    /// `Class.field` the verdict applies to.
    pub field: String,
    /// `true` for the pass that inlined the field.
    pub inlined: bool,
    /// Reason code (`"inlined"` for accepting steps).
    pub code: String,
    /// The DESIGN §4 rule number (`None` for accepting steps).
    pub rule: Option<u8>,
    /// Offending site or class named by the rule, if any.
    pub detail: String,
}

/// The Figure 14 row for one program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EffectivenessReport {
    /// The degradation-ladder tier the program was compiled at
    /// (`"guarded-full"`, `"reduced-precision"`, `"inlining-off"`), or
    /// `"full"` for direct pipeline runs outside the ladder.
    pub tier: String,
    /// `true` when the analysis exhausted a resource budget and completed
    /// with globally widened contours (sound but coarser).
    pub degraded: bool,
    /// Fields observed to hold objects.
    pub total_object_fields: usize,
    /// Fields annotated `@inline_ideal`.
    pub ideal: usize,
    /// Fields annotated `@inline_cxx`.
    pub cxx: usize,
    /// Fields the optimizer inlined (across all passes).
    pub fields_inlined: usize,
    /// Array allocation sites whose elements were inlined.
    pub array_sites_inlined: usize,
    /// Decisions withdrawn by the soundness firewall (rule 5) after a
    /// failed equivalence or verification check. Zero on the plain
    /// pipeline; the bench observatory gates on it staying zero.
    pub retractions: usize,
    /// Per-field details.
    pub outcomes: Vec<FieldOutcome>,
    /// Full decision history across passes, in the order verdicts were
    /// reached (a field can be rejected on pass 0 and inlined on pass 1).
    pub provenance: Vec<ProvenanceStep>,
}

impl Default for EffectivenessReport {
    fn default() -> Self {
        Self {
            tier: "full".to_string(),
            degraded: false,
            total_object_fields: 0,
            ideal: 0,
            cxx: 0,
            fields_inlined: 0,
            array_sites_inlined: 0,
            retractions: 0,
            outcomes: Vec::new(),
            provenance: Vec::new(),
        }
    }
}

impl FieldOutcome {
    /// The outcome as schema-stable JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("field", self.name.clone().into()),
            ("inlined", self.inlined.into()),
            (
                "code",
                if self.inlined {
                    "inlined".into()
                } else {
                    self.code.clone().into()
                },
            ),
            (
                "rule",
                match self.rule {
                    Some(r) => u64::from(r).into(),
                    None => Json::Null,
                },
            ),
            ("reason", self.reason.clone().into()),
            ("detail", self.detail.clone().into()),
        ])
    }
}

impl ProvenanceStep {
    /// The step as schema-stable JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("pass", self.pass.into()),
            ("field", self.field.clone().into()),
            ("inlined", self.inlined.into()),
            ("code", self.code.clone().into()),
            (
                "rule",
                match self.rule {
                    Some(r) => u64::from(r).into(),
                    None => Json::Null,
                },
            ),
            ("detail", self.detail.clone().into()),
        ])
    }
}

impl EffectivenessReport {
    /// The report as schema-stable JSON: the Figure 14 counters plus
    /// per-field decisions (with reason codes) and the full provenance
    /// chain.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tier", self.tier.clone().into()),
            ("degraded", self.degraded.into()),
            ("total_object_fields", self.total_object_fields.into()),
            ("ideal", self.ideal.into()),
            ("cxx", self.cxx.into()),
            ("fields_inlined", self.fields_inlined.into()),
            ("array_sites_inlined", self.array_sites_inlined.into()),
            ("retractions", self.retractions.into()),
            (
                "decisions",
                Json::Arr(self.outcomes.iter().map(FieldOutcome::to_json).collect()),
            ),
            (
                "provenance",
                Json::Arr(
                    self.provenance
                        .iter()
                        .map(ProvenanceStep::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Counts the annotation-based columns from the program source.
    pub fn count_annotations(program: &Program) -> (usize, usize) {
        let ideal = program.interner.get("inline_ideal");
        let cxx = program.interner.get("inline_cxx");
        let mut ideal_count = 0;
        let mut cxx_count = 0;
        for field in program.fields.iter() {
            if ideal.is_some_and(|a| field.annotations.contains(&a)) {
                ideal_count += 1;
            }
            if cxx.is_some_and(|a| field.annotations.contains(&a)) {
                cxx_count += 1;
            }
        }
        (ideal_count, cxx_count)
    }
}

impl std::fmt::Display for EffectivenessReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "compilation tier      : {}{}",
            self.tier,
            if self.degraded { " (degraded)" } else { "" }
        )?;
        writeln!(f, "object-holding fields : {}", self.total_object_fields)?;
        writeln!(f, "ideally inlinable     : {}", self.ideal)?;
        writeln!(f, "declared inline (C++) : {}", self.cxx)?;
        writeln!(f, "automatically inlined : {}", self.fields_inlined)?;
        writeln!(f, "array sites inlined   : {}", self.array_sites_inlined)?;
        write!(f, "firewall retractions  : {}", self.retractions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oi_ir::lower::compile;

    #[test]
    fn annotations_are_counted() {
        let p = compile(
            "class C { field a @inline_ideal @inline_cxx; field b @inline_ideal; field c; }
             fn main() { }",
        )
        .unwrap();
        let (ideal, cxx) = EffectivenessReport::count_annotations(&p);
        assert_eq!(ideal, 2);
        assert_eq!(cxx, 1);
    }

    #[test]
    fn display_renders_all_rows() {
        let r = EffectivenessReport {
            total_object_fields: 5,
            ideal: 4,
            cxx: 2,
            fields_inlined: 4,
            array_sites_inlined: 1,
            retractions: 2,
            ..Default::default()
        };
        let s = r.to_string();
        assert!(s.contains("compilation tier      : full"));
        assert!(s.contains("automatically inlined : 4"));
        assert!(s.contains("array sites inlined   : 1"));
        assert!(s.contains("firewall retractions  : 2"));
    }

    #[test]
    fn degraded_tier_is_marked_in_display_and_json() {
        let r = EffectivenessReport {
            tier: "reduced-precision".to_string(),
            degraded: true,
            ..Default::default()
        };
        assert!(r
            .to_string()
            .contains("compilation tier      : reduced-precision (degraded)"));
        let json = r.to_json().to_string();
        assert!(json.contains("\"tier\":\"reduced-precision\""));
        assert!(json.contains("\"degraded\":true"));
    }
}
