//! The inlining decision: combining use and assignment specialization into a
//! per-field plan.
//!
//! Decisions are made per *(concrete class, field)* and grouped per
//! declaring class:
//!
//! - **uniform**: every instantiated class in the declaring class's subtree
//!   stores the same child class — the declaring class is restructured once
//!   and all subclasses share the layout (the Rectangle/Parallelogram case,
//!   Figure 11);
//! - **divergent**: different subtrees store different child classes — each
//!   concrete class gets its own layout over a shared replacement slot (the
//!   Richards private-data case, which C++ cannot express, §6.1).

use crate::assignspec::AssignSpec;
use crate::usespec::{self, RecvInfo};
use oi_analysis::AnalysisResult;
use oi_ir::{ArrayLayoutKind, ClassId, Instr, LayoutId, Program, SiteId, Terminator};
use oi_support::trace::{self, kv};
use oi_support::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Machine-readable rejection reasons, each enforcing one of the inlining
/// decision rules of DESIGN §4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReasonCode {
    /// Rule 1 (precise content): the field holds nil, a primitive, an
    /// array, more than one content class, or some contour never
    /// initializes it.
    ImpreciseContent,
    /// Rule 2 (use unambiguity): a dereference mixes inlined and
    /// non-inlined receivers, so no single specialized access works.
    AmbiguousUse,
    /// Rule 3 (assignment safety): a store cannot pass its value by value
    /// — the value escapes, is loaded from elsewhere, or is used after
    /// the store.
    UnsafeAssignment,
    /// Rule 3 (assignment safety): child objects take part in `===`
    /// identity comparisons, which inline copies cannot preserve.
    IdentityCompared,
    /// Rule 4 (no inline recursion): the child's layout changes this
    /// pass; the field is retried on the next pass.
    LayoutInFlux,
    /// Rule 5 (firewall retraction): the differential oracle or the IR
    /// verifier rejected a transformed program and bisection blamed this
    /// decision; it is withdrawn for the rest of the compilation.
    Retracted,
}

impl ReasonCode {
    /// Stable kebab-case identifier used in JSON output and traces.
    pub fn code(self) -> &'static str {
        match self {
            ReasonCode::ImpreciseContent => "imprecise-content",
            ReasonCode::AmbiguousUse => "ambiguous-use",
            ReasonCode::UnsafeAssignment => "unsafe-assignment",
            ReasonCode::IdentityCompared => "identity-compared",
            ReasonCode::LayoutInFlux => "layout-in-flux",
            ReasonCode::Retracted => "retracted",
        }
    }

    /// The DESIGN §4 decision rule this code enforces.
    pub fn rule(self) -> u8 {
        match self {
            ReasonCode::ImpreciseContent => 1,
            ReasonCode::AmbiguousUse => 2,
            ReasonCode::UnsafeAssignment | ReasonCode::IdentityCompared => 3,
            ReasonCode::LayoutInFlux => 4,
            ReasonCode::Retracted => 5,
        }
    }

    /// One-line human-readable summary.
    pub fn summary(self) -> &'static str {
        match self {
            ReasonCode::ImpreciseContent => {
                "some instantiated subclass does not always initialize the field with one class"
            }
            ReasonCode::AmbiguousUse => "a field access mixes inlined and non-inlined receivers",
            ReasonCode::UnsafeAssignment => "a stored value cannot be passed by value (aliasing)",
            ReasonCode::IdentityCompared => "child objects take part in identity comparisons",
            ReasonCode::LayoutInFlux => "child class layout changes this pass (retry next pass)",
            ReasonCode::Retracted => {
                "withdrawn by the soundness firewall after a failed equivalence check"
            }
        }
    }
}

/// A rejected field with its provenance: which rule fired and where.
#[derive(Clone, Debug)]
pub struct Rejection {
    /// `Class.field` the verdict applies to.
    pub field: String,
    /// Which DESIGN §4 rule rejected it.
    pub code: ReasonCode,
    /// The offending site, class, or value, for diagnostics (may be
    /// empty when the rule has no single culprit).
    pub detail: String,
}

/// A planned object-field inlining.
#[derive(Clone, Debug)]
pub struct PlanEntry {
    /// Class that declares the field.
    pub declaring: ClassId,
    /// Concrete classes this entry covers (the whole instantiated subtree
    /// for uniform entries; a single class for divergent ones).
    pub containers: Vec<ClassId>,
    /// The inlined field.
    pub field: Symbol,
    /// The (single) class of objects stored in the field.
    pub child: ClassId,
    /// Whether the whole subtree shares this entry.
    pub uniform: bool,
    /// Filled in by `restructure`.
    pub layout: Option<LayoutId>,
}

/// A planned array-element inlining.
#[derive(Clone, Debug)]
pub struct ArrayEntry {
    /// Element class.
    pub child: ClassId,
    /// Element layout kind to use.
    pub kind: ArrayLayoutKind,
    /// Filled in by `restructure` (already set for pre-existing sites).
    pub layout: Option<LayoutId>,
    /// `true` when the site was inlined on an earlier pass; it is kept in
    /// the plan so later passes can apply in-place element construction,
    /// but it is not re-restructured or re-counted.
    pub pre_existing: bool,
}

/// The complete inlining plan for one pass.
#[derive(Clone, Debug, Default)]
pub struct InlinePlan {
    /// Object-field entries.
    pub entries: Vec<PlanEntry>,
    /// Concrete `(class, field)` → index into `entries`.
    pub by_class_field: HashMap<(ClassId, Symbol), usize>,
    /// Array allocation sites whose elements are inlined.
    pub array_sites: BTreeMap<SiteId, ArrayEntry>,
    /// Fields considered but rejected, with provenance (for reporting
    /// and `oic explain`).
    pub rejected: Vec<Rejection>,
}

impl InlinePlan {
    /// Returns `true` if nothing will be transformed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.array_sites.is_empty()
    }

    /// The entry covering `class`'s field `f`, if planned.
    pub fn entry_for(&self, class: ClassId, f: Symbol) -> Option<&PlanEntry> {
        self.by_class_field
            .get(&(class, f))
            .map(|&i| &self.entries[i])
    }
}

/// Options for the decision stage.
#[derive(Clone, Copy, Debug)]
pub struct DecisionConfig {
    /// Inline object fields.
    pub object_fields: bool,
    /// Inline array elements.
    pub array_elements: bool,
    /// Layout for inlined arrays.
    pub array_layout: ArrayLayoutKind,
    /// Skip the assignment-safety check (ablation only; unsound in
    /// general).
    pub check_assignments: bool,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        Self {
            object_fields: true,
            array_elements: true,
            array_layout: ArrayLayoutKind::Interleaved,
            check_assignments: true,
        }
    }
}

/// The stable key naming one inlining decision, used by the soundness
/// firewall's denylist: `Class.field` for object fields (declaring class)
/// and `array@siteN` for array-element sites.
pub fn field_decision_key(program: &Program, declaring: ClassId, field: Symbol) -> String {
    format!(
        "{}.{}",
        program.interner.resolve(program.classes[declaring].name),
        program.interner.resolve(field)
    )
}

/// The denylist key for an array-element inlining site.
pub fn array_decision_key(site: SiteId) -> String {
    format!("array@{site:?}")
}

/// Rule-1 support: `true` when the constructor reached by `new class(..)`
/// assigns `self.field` on **every** path from entry to return.
///
/// The contour field summaries only join the values that stores produce;
/// they carry no "may be unassigned" element, so a conditional
/// initialization is indistinguishable from an unconditional one at the
/// summary level. This syntactic must-assign dataflow closes that gap: a
/// class with no `init`, or an `init` with an unassigning path, leaves the
/// field nil at runtime — a state inline storage cannot represent.
fn ctor_definitely_assigns(program: &Program, class: ClassId, field: Symbol) -> bool {
    let Some(init) = program.interner.get("init") else {
        return false;
    };
    let Some(mid) = program.lookup_method(class, init) else {
        return false; // no constructor: the field starts (and may stay) nil
    };
    let method = &program.methods[mid];

    // Temps that definitely hold `self`: temp 0 when nothing redefines it,
    // plus temps all of whose definitions are moves from such temps.
    let n = method.temp_count as usize;
    let mut defs: Vec<Vec<&Instr>> = vec![Vec::new(); n];
    for (_, _, ins) in method.instrs() {
        if let Some(d) = ins.dst() {
            defs[d.index()].push(ins);
        }
    }
    let mut selfish = vec![false; n];
    selfish[method.self_temp().index()] = defs[method.self_temp().index()].is_empty();
    loop {
        let mut changed = false;
        for t in 0..n {
            if selfish[t] || defs[t].is_empty() {
                continue;
            }
            let all_self_moves = defs[t]
                .iter()
                .all(|i| matches!(i, Instr::Move { src, .. } if selfish[src.index()]));
            if all_self_moves {
                selfish[t] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Forward must-assign dataflow: a block's entry state is the meet
    // (conjunction) over its predecessors; a store to the field through a
    // definite-self temp generates the fact. All instructions precede the
    // terminator, so a block's exit state is the state at its `Return`.
    let nb = method.blocks.len();
    let mut gen = vec![false; nb];
    for (bb, _, ins) in method.instrs() {
        if let Instr::SetField { obj, field: f, .. } = ins {
            if *f == field && selfish[obj.index()] {
                gen[bb.index()] = true;
            }
        }
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for (bb, block) in method.blocks.iter_enumerated() {
        for s in block.term.successors() {
            preds[s.index()].push(bb.index());
        }
    }
    let entry = method.entry().index();
    let mut out = vec![true; nb];
    out[entry] = gen[entry];
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nb {
            let inb = b != entry && preds[b].iter().all(|&p| out[p]);
            let o = inb || gen[b];
            if o != out[b] {
                out[b] = o;
                changed = true;
            }
        }
    }
    method
        .blocks
        .iter_enumerated()
        .all(|(bb, block)| !matches!(block.term, Terminator::Return(_)) || out[bb.index()])
}

/// Computes the inlining plan for one transformation pass.
pub fn decide(program: &Program, result: &AnalysisResult, config: &DecisionConfig) -> InlinePlan {
    decide_denying(program, result, config, &BTreeSet::new())
}

/// [`decide`], minus an explicit denylist of decision keys (see
/// [`field_decision_key`] / [`array_decision_key`]).
///
/// Denied decisions are filtered out *before* the grouping step and the
/// demotion fixpoint, so rules that depend on the planned set — use
/// agreement across a hierarchy, divergent-sibling coverage — see the
/// retraction and stay sound. Each denied decision that would otherwise
/// have been considered is recorded as a [`ReasonCode::Retracted`]
/// rejection for provenance.
pub fn decide_denying(
    program: &Program,
    result: &AnalysisResult,
    config: &DecisionConfig,
    denied: &BTreeSet<String>,
) -> InlinePlan {
    let mut plan = InlinePlan::default();

    // ---- gather per-(concrete class, field) child information -------------
    // candidate_child[(class, field)] = Some(child) if every object contour
    // of `class` stores exactly that one class into `field`.
    let mut octx_by_class: HashMap<ClassId, Vec<oi_analysis::OCtxId>> = HashMap::new();
    for (id, oc) in result.ocontours.iter_enumerated() {
        if let Some(c) = oc.class {
            octx_by_class.entry(c).or_default().push(id);
        }
    }

    let mut candidate_child: HashMap<(ClassId, Symbol), ClassId> = HashMap::new();
    let mut object_fields_seen: BTreeSet<(ClassId, Symbol)> = BTreeSet::new();
    if config.object_fields {
        for (&class, octxs) in &octx_by_class {
            for fid in program.layout_of(class) {
                let fname = program.fields[fid].name;
                let mut child: Option<ClassId> = None;
                let mut ok = true;
                let mut stores_objects = false;
                for &oc in octxs {
                    let Some(sum) = result.ocontours[oc].field(fname) else {
                        ok = false; // some contour never initializes the field
                        continue;
                    };
                    if sum.types.iter().any(|t| t.contour().is_some()) {
                        stores_objects = true;
                    }
                    for ty in &sum.types {
                        match ty {
                            oi_analysis::TypeElem::Obj(child_oc) => {
                                let Some(d) = result.ocontours[*child_oc].class else {
                                    ok = false;
                                    continue;
                                };
                                match child {
                                    None => child = Some(d),
                                    Some(prev) if prev == d => {}
                                    Some(_) => ok = false,
                                }
                            }
                            // nil, primitives or arrays in the field: cannot
                            // inline (the inline state cannot represent
                            // them).
                            _ => ok = false,
                        }
                    }
                }
                if stores_objects {
                    object_fields_seen.insert((program.fields[fid].owner, fname));
                }
                // Rule 1, definite assignment: the contour summary joins
                // stored values flow-insensitively, so a store inside a
                // conditional looks identical to an unconditional one. A
                // field the constructor may leave unassigned still holds
                // nil on some path, which inline storage cannot represent.
                if ok && child.is_some() && !ctor_definitely_assigns(program, class, fname) {
                    ok = false;
                }
                if ok {
                    if let Some(d) = child {
                        if !program.layout_of(d).is_empty() {
                            candidate_child.insert((class, fname), d);
                        }
                    }
                }
            }
        }
    }

    // ---- firewall denylist -------------------------------------------------
    // Retractions are applied to the candidate set, before grouping and
    // the demotion fixpoint, so downstream agreement rules account for
    // them exactly as they do for any other non-candidate field.
    if !denied.is_empty() {
        let mut retracted: BTreeSet<String> = BTreeSet::new();
        candidate_child.retain(|&(class, fname), _| {
            let Some(fid) = program.field_of(class, fname) else {
                return true;
            };
            let key = field_decision_key(program, program.fields[fid].owner, fname);
            if denied.contains(&key) {
                retracted.insert(key);
                false
            } else {
                true
            }
        });
        for key in retracted {
            push_rejection(
                &mut plan.rejected,
                key,
                ReasonCode::Retracted,
                "withdrawn after a failed equivalence or verification check".to_owned(),
            );
        }
    }

    // ---- group per declaring class -----------------------------------------
    // For each (declaring class, field): every *instantiated* class in the
    // subtree must be a candidate; uniform if they agree on the child.
    let mut groups: BTreeMap<(ClassId, Symbol), Vec<(ClassId, ClassId)>> = BTreeMap::new();
    let mut group_ok: HashMap<(ClassId, Symbol), bool> = HashMap::new();
    for (&(class, fname), &child) in &candidate_child {
        let Some(fid) = program.field_of(class, fname) else {
            continue;
        };
        let declaring = program.fields[fid].owner;
        groups
            .entry((declaring, fname))
            .or_default()
            .push((class, child));
    }
    for ((declaring, fname), members) in &groups {
        let instantiated: Vec<ClassId> = program
            .subclasses_of(*declaring)
            .into_iter()
            .filter(|c| octx_by_class.contains_key(c))
            .collect();
        let covered: BTreeSet<ClassId> = members.iter().map(|(c, _)| *c).collect();
        let all_covered = instantiated.iter().all(|c| covered.contains(c));
        group_ok.insert(
            (*declaring, *fname),
            all_covered && !instantiated.is_empty(),
        );
        if !all_covered {
            let missing: Vec<&str> = instantiated
                .iter()
                .filter(|c| !covered.contains(c))
                .map(|&c| program.interner.resolve(program.classes[c].name))
                .collect();
            push_rejection(
                &mut plan.rejected,
                format!(
                    "{}.{}",
                    program.interner.resolve(program.classes[*declaring].name),
                    program.interner.resolve(*fname)
                ),
                ReasonCode::ImpreciseContent,
                format!("imprecise in subclass(es) {}", missing.join(", ")),
            );
        }
    }

    // Seed plan entries.
    for ((declaring, fname), members) in &groups {
        if !group_ok[&(*declaring, *fname)] {
            continue;
        }
        let children: BTreeSet<ClassId> = members.iter().map(|(_, d)| *d).collect();
        if children.len() == 1 {
            let child = *children.iter().next().unwrap();
            let idx = plan.entries.len();
            plan.entries.push(PlanEntry {
                declaring: *declaring,
                containers: members.iter().map(|(c, _)| *c).collect(),
                field: *fname,
                child,
                uniform: true,
                layout: None,
            });
            for (c, _) in members {
                plan.by_class_field.insert((*c, *fname), idx);
            }
        } else {
            for (c, d) in members {
                let idx = plan.entries.len();
                plan.entries.push(PlanEntry {
                    declaring: *declaring,
                    containers: vec![*c],
                    field: *fname,
                    child: *d,
                    uniform: false,
                    layout: None,
                });
                plan.by_class_field.insert((*c, *fname), idx);
            }
        }
    }

    // ---- array candidates ----------------------------------------------------
    // Sites already inlined on an earlier pass keep their existing layout.
    let mut existing_inline: BTreeMap<SiteId, LayoutId> = BTreeMap::new();
    for m in program.methods.iter() {
        for block in m.blocks.iter() {
            for instr in &block.instrs {
                if let oi_ir::Instr::NewArrayInline { site, layout, .. } = instr {
                    existing_inline.insert(*site, *layout);
                }
            }
        }
    }
    for (&site, &layout) in &existing_inline {
        plan.array_sites.insert(
            site,
            ArrayEntry {
                child: program.layouts[layout].child_class,
                kind: program.layouts[layout]
                    .array_kind
                    .unwrap_or(config.array_layout),
                layout: Some(layout),
                pre_existing: true,
            },
        );
    }
    let mut array_child: BTreeMap<SiteId, Option<ClassId>> = BTreeMap::new();
    if config.array_elements {
        for oc in result.ocontours.iter() {
            if !oc.is_array() {
                continue;
            }
            // Synthetic interior contours have out-of-range sites; skip.
            if oc.site.index() >= program.site_count as usize {
                continue;
            }
            if existing_inline.contains_key(&oc.site) {
                continue;
            }
            let entry = array_child.entry(oc.site).or_insert(None);
            if oc.elem.is_bottom() {
                *entry = None;
                continue;
            }
            let mut site_child: Option<ClassId> = entry.as_mut().map(|d| *d);
            let mut ok = !oc.elem.types.is_empty();
            for ty in &oc.elem.types {
                match ty {
                    oi_analysis::TypeElem::Obj(child_oc) => {
                        let Some(d) = result.ocontours[*child_oc].class else {
                            ok = false;
                            continue;
                        };
                        match site_child {
                            None => site_child = Some(d),
                            Some(prev) if prev == d => {}
                            Some(_) => ok = false,
                        }
                    }
                    _ => ok = false,
                }
            }
            *entry = if ok { site_child } else { None };
        }
        // Note: a site whose contours disagree ends up with the last
        // verdict; re-check all contours agree.
        for (site, child) in array_child.clone() {
            let Some(child) = child else { continue };
            let consistent = result
                .ocontours
                .iter()
                .filter(|oc| oc.is_array() && oc.site == site)
                .all(|oc| {
                    !oc.elem.is_bottom()
                        && oc.elem.types.iter().all(|t| {
                            matches!(
                                t,
                                oi_analysis::TypeElem::Obj(c)
                                    if result.ocontours[*c].class == Some(child)
                            )
                        })
                });
            if consistent && !program.layout_of(child).is_empty() {
                if denied.contains(&array_decision_key(site)) {
                    push_rejection(
                        &mut plan.rejected,
                        array_decision_key(site),
                        ReasonCode::Retracted,
                        "withdrawn after a failed equivalence or verification check".to_owned(),
                    );
                    continue;
                }
                plan.array_sites.insert(
                    site,
                    ArrayEntry {
                        child,
                        kind: config.array_layout,
                        layout: None,
                        pre_existing: false,
                    },
                );
            }
        }
    }

    // ---- demotion fixpoint -----------------------------------------------
    let (identity_classes, accesses, astores) = {
        let _s = trace::span("decide.usespec");
        (
            usespec::identity_compared_classes(program, result),
            usespec::field_accesses(program),
            usespec::array_stores(program),
        )
    };
    let mut spec = {
        let _s = trace::span("decide.assignspec");
        AssignSpec::new(program, result)
    };
    let elem_sentinel = program.interner.get("$elem");

    loop {
        let mut demote_entries: BTreeSet<usize> = BTreeSet::new();
        let mut demote_arrays: BTreeSet<SiteId> = BTreeSet::new();
        let mut rejections: Vec<Rejection> = Vec::new();

        // (a) identity comparisons on child classes.
        for (i, e) in plan.entries.iter().enumerate() {
            if identity_classes.contains(&e.child) {
                demote_entries.insert(i);
                push_rejection(
                    &mut rejections,
                    describe_entry(program, e),
                    ReasonCode::IdentityCompared,
                    format!(
                        "`===` reaches objects of class {}",
                        program.interner.resolve(program.classes[e.child].name)
                    ),
                );
            }
        }
        for (&site, a) in &plan.array_sites {
            if identity_classes.contains(&a.child) {
                demote_arrays.insert(site);
            }
        }

        // (b) instruction agreement for every access to a planned field.
        for acc in &accesses {
            let info: RecvInfo = usespec::receiver_info(result, acc.method, acc.obj);
            let touched: Vec<usize> = info
                .classes
                .iter()
                .filter_map(|&c| plan.by_class_field.get(&(c, acc.field)).copied())
                .collect();
            if touched.is_empty() {
                continue;
            }
            let distinct: BTreeSet<usize> = touched.iter().copied().collect();
            let all_planned = info
                .classes
                .iter()
                .all(|&c| plan.by_class_field.contains_key(&(c, acc.field)));
            let live: Vec<usize> = distinct
                .iter()
                .copied()
                .filter(|i| !demote_entries.contains(i))
                .collect();
            // Note: provenance-tag overflow (`tag_top`) on the *receiver*
            // does not block the rewrite — the layout is determined by the
            // receiver's class set, and our runtime resolves inline layouts
            // through interior references where the paper binds specialized
            // clones statically. Class disagreement is what kills it.
            if !all_planned || live.len() > 1 || !info.array_sites.is_empty() {
                for i in distinct {
                    if demote_entries.insert(i) {
                        push_rejection(
                            &mut rejections,
                            describe_entry(program, &plan.entries[i]),
                            ReasonCode::AmbiguousUse,
                            format!(
                                "access to `{}` in {} (block {}, instr {})",
                                program.interner.resolve(acc.field),
                                program.method_display(acc.method),
                                acc.bb.index(),
                                acc.idx
                            ),
                        );
                    }
                }
            }
        }

        // (c) assignment safety at every store to a planned field.
        if config.check_assignments {
            for acc in &accesses {
                let Some(src) = acc.store_src else { continue };
                let info = usespec::receiver_info(result, acc.method, acc.obj);
                let touched: BTreeSet<usize> = info
                    .classes
                    .iter()
                    .filter_map(|&c| plan.by_class_field.get(&(c, acc.field)).copied())
                    .filter(|i| !demote_entries.contains(i))
                    .collect();
                if touched.is_empty() {
                    continue;
                }
                if !spec.store_ok(acc.method, (acc.bb, acc.idx), src, acc.field) {
                    for i in touched {
                        if demote_entries.insert(i) {
                            push_rejection(
                                &mut rejections,
                                describe_entry(program, &plan.entries[i]),
                                ReasonCode::UnsafeAssignment,
                                format!(
                                    "store to `{}` in {} (block {}, instr {})",
                                    program.interner.resolve(acc.field),
                                    program.method_display(acc.method),
                                    acc.bb.index(),
                                    acc.idx
                                ),
                            );
                        }
                    }
                }
            }
            if let Some(sentinel) = elem_sentinel {
                for st in &astores {
                    let info = usespec::receiver_info(result, st.method, st.arr);
                    let touched: Vec<SiteId> = info
                        .array_sites
                        .iter()
                        .copied()
                        .filter(|s| plan.array_sites.contains_key(s) && !demote_arrays.contains(s))
                        .collect();
                    if touched.is_empty() {
                        continue;
                    }
                    if !spec.store_ok(st.method, (st.bb, st.idx), st.src, sentinel) {
                        demote_arrays.extend(touched);
                    }
                }
            }
        }

        // (d) no same-pass nesting: a container's child must have a stable
        // layout this pass (nested inlining happens on the next pass).
        let layout_changing: BTreeSet<ClassId> = plan
            .entries
            .iter()
            .enumerate()
            .filter(|(i, _)| !demote_entries.contains(i))
            .map(|(_, e)| e.declaring)
            .collect();
        let layout_affected = |class: ClassId| -> bool {
            // `class`'s layout changes if it or any ancestor is restructured.
            let mut cur = Some(class);
            while let Some(c) = cur {
                if layout_changing.contains(&c) {
                    return true;
                }
                cur = program.classes[c].parent;
            }
            false
        };
        for (i, e) in plan.entries.iter().enumerate() {
            if !demote_entries.contains(&i) && layout_affected(e.child) {
                demote_entries.insert(i);
                push_rejection(
                    &mut rejections,
                    describe_entry(program, e),
                    ReasonCode::LayoutInFlux,
                    format!(
                        "child class {} is restructured this pass",
                        program.interner.resolve(program.classes[e.child].name)
                    ),
                );
            }
        }
        let demote_array_children: Vec<SiteId> = plan
            .array_sites
            .iter()
            .filter(|(s, a)| !demote_arrays.contains(s) && layout_affected(a.child))
            .map(|(s, _)| *s)
            .collect();
        demote_arrays.extend(demote_array_children);

        // (e) a uniform group loses a member → whole group goes (entry is
        // shared, so this is automatic). A divergent group member going
        // away makes the hierarchy partially covered → demote siblings.
        let mut sibling_demotions: Vec<usize> = Vec::new();
        for &i in &demote_entries {
            let e = &plan.entries[i];
            if !e.uniform {
                for (j, other) in plan.entries.iter().enumerate() {
                    if j != i
                        && !demote_entries.contains(&j)
                        && !other.uniform
                        && other.declaring == e.declaring
                        && other.field == e.field
                    {
                        sibling_demotions.push(j);
                    }
                }
            }
        }
        demote_entries.extend(sibling_demotions);

        plan.rejected.extend(rejections);
        if demote_entries.is_empty() && demote_arrays.is_empty() {
            break;
        }
        // Apply demotions and re-run (agreement depends on the plan).
        let mut new_entries = Vec::new();
        let mut remap: HashMap<usize, usize> = HashMap::new();
        for (i, e) in plan.entries.iter().enumerate() {
            if !demote_entries.contains(&i) {
                remap.insert(i, new_entries.len());
                new_entries.push(e.clone());
            }
        }
        plan.by_class_field = plan
            .by_class_field
            .iter()
            .filter_map(|(k, v)| remap.get(v).map(|&nv| (*k, nv)))
            .collect();
        plan.entries = new_entries;
        for s in demote_arrays {
            plan.array_sites.remove(&s);
        }
    }

    // Rule 1 final sweep: object-holding fields that never became
    // candidates (nil/primitive/mixed-class stores or an uninitializing
    // constructor path) get a provenance record too, so `oic explain` can
    // name the rule that dropped them.
    for (declaring, fname) in &object_fields_seen {
        if !groups.contains_key(&(*declaring, *fname)) {
            let key = field_decision_key(program, *declaring, *fname);
            // Retracted fields already carry rule-5 provenance; do not
            // overwrite it with a rule-1 verdict.
            if plan
                .rejected
                .iter()
                .any(|r| r.field == key && r.code == ReasonCode::Retracted)
            {
                continue;
            }
            push_rejection(
                &mut plan.rejected,
                key,
                ReasonCode::ImpreciseContent,
                "stores of nil, primitives, or multiple classes reach the field".to_owned(),
            );
        }
    }
    plan
}

/// Records a rejection, mirroring it onto the trace stream so
/// `OIC_TRACE=json` shows decisions as they are made.
fn push_rejection(out: &mut Vec<Rejection>, field: String, code: ReasonCode, detail: String) {
    if trace::is_enabled() {
        trace::event(
            "decide.reject",
            vec![
                kv("field", field.clone()),
                kv("code", code.code()),
                kv("rule", u64::from(code.rule())),
                kv("detail", detail.clone()),
            ],
        );
    }
    out.push(Rejection {
        field,
        code,
        detail,
    });
}

fn describe_entry(program: &Program, e: &PlanEntry) -> String {
    field_decision_key(program, e.declaring, e.field)
}

/// Counts, per declared field, whether any object contour ever stores an
/// object into it — the denominator of Figure 14.
pub fn object_holding_fields(
    program: &Program,
    result: &AnalysisResult,
) -> BTreeSet<(ClassId, Symbol)> {
    let mut out = BTreeSet::new();
    for oc in result.ocontours.iter() {
        let Some(class) = oc.class else { continue };
        for (fname, sum) in &oc.fields {
            if sum.types.iter().any(|t| t.contour().is_some()) {
                if let Some(fid) = program.field_of(class, *fname) {
                    out.insert((program.fields[fid].owner, *fname));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oi_analysis::{analyze, AnalysisConfig};
    use oi_ir::lower::compile;

    fn plan_for(src: &str) -> (Program, InlinePlan) {
        let p = compile(src).unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        let plan = decide(&p, &r, &DecisionConfig::default());
        (p, plan)
    }

    const RECT: &str = "
        class Point { field x; field y;
          method init(a, b) { self.x = a; self.y = b; }
        }
        class Rect { field ll; field ur;
          method init(a, b) { self.ll = a; self.ur = b; }
        }
        fn main() {
          var r = new Rect(new Point(1.0, 2.0), new Point(3.0, 4.0));
          print r.ll.x + r.ur.y;
        }";

    #[test]
    fn rectangle_fields_are_planned() {
        let (p, plan) = plan_for(RECT);
        assert_eq!(
            plan.entries.len(),
            2,
            "ll and ur should inline: {:?}",
            plan.rejected
        );
        let rect = p.class_by_name("Rect").unwrap();
        let ll = p.interner.get("ll").unwrap();
        let e = plan.entry_for(rect, ll).unwrap();
        assert_eq!(e.child, p.class_by_name("Point").unwrap());
        assert!(e.uniform);
    }

    #[test]
    fn denied_field_is_retracted_with_provenance() {
        let p = compile(RECT).unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        let denied: BTreeSet<String> = ["Rect.ll".to_owned()].into_iter().collect();
        let plan = decide_denying(&p, &r, &DecisionConfig::default(), &denied);
        let rect = p.class_by_name("Rect").unwrap();
        let ll = p.interner.get("ll").unwrap();
        assert!(
            plan.entry_for(rect, ll).is_none(),
            "denied field must not plan"
        );
        assert!(
            plan.rejected
                .iter()
                .any(|r| r.field == "Rect.ll" && r.code == ReasonCode::Retracted),
            "{:?}",
            plan.rejected
        );
        // The sibling field is unaffected.
        let ur = p.interner.get("ur").unwrap();
        assert!(plan.entry_for(rect, ur).is_some(), "{:?}", plan.rejected);
    }

    #[test]
    fn denied_array_site_is_retracted() {
        let src = "class P { field x; field y; method init(a, b) { self.x = a; self.y = b; } }
             fn main() {
               var a = array(10);
               var i = 0;
               while (i < 10) { a[i] = new P(i, i); i = i + 1; }
               var s = 0; i = 0;
               while (i < 10) { s = s + a[i].x; i = i + 1; }
               print s;
             }";
        let p = compile(src).unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        let plan = decide(&p, &r, &DecisionConfig::default());
        assert_eq!(plan.array_sites.len(), 1);
        let site = *plan.array_sites.keys().next().unwrap();
        let denied: BTreeSet<String> = [array_decision_key(site)].into_iter().collect();
        let plan = decide_denying(&p, &r, &DecisionConfig::default(), &denied);
        assert!(plan.array_sites.is_empty(), "{:?}", plan.array_sites);
        assert!(plan
            .rejected
            .iter()
            .any(|r| r.code == ReasonCode::Retracted));
    }

    #[test]
    fn nilable_field_is_not_planned() {
        let (_, plan) = plan_for(
            "class P { field x; method init(a) { self.x = a; } }
             class C { field d; method init(a) { self.d = a; } }
             fn main() {
               var c1 = new C(new P(1));
               var c2 = new C(nil);
               print 1;
             }",
        );
        assert!(plan.entries.is_empty(), "{:?}", plan.entries);
    }

    #[test]
    fn conditionally_initialized_field_is_not_planned() {
        // The store dominates nothing: when the branch is not taken the
        // field stays nil, which inline storage cannot represent. The
        // contour summary alone cannot see this (it joins stored values
        // only), so this exercises the definite-assignment check.
        let (_, plan) = plan_for(
            "class P { field x; method init(a) { self.x = a; } }
             class C { field d;
               method init(a) { if (a > 0) { self.d = new P(a); } }
               method read() { if (self.d === nil) { return 0 - 1; } return self.d.x; }
             }
             fn main() {
               print new C(1).read();
               print new C(0 - 5).read();
             }",
        );
        assert!(plan.entries.is_empty(), "{:?}", plan.entries);
        assert!(plan
            .rejected
            .iter()
            .any(|r| r.field == "C.d" && r.code == ReasonCode::ImpreciseContent));
    }

    #[test]
    fn unconditionally_initialized_field_stays_planned() {
        // Both arms assign: the meet over paths is "assigned", so the
        // definite-assignment check must not reject it.
        let (_, plan) = plan_for(
            "class P { field x; method init(a) { self.x = a; } }
             class C { field d;
               method init(a) {
                 if (a > 0) { self.d = new P(a); } else { self.d = new P(0 - a); }
               }
             }
             fn main() {
               var c = new C(3);
               print c.d.x;
             }",
        );
        assert_eq!(plan.entries.len(), 1, "rejected: {:?}", plan.rejected);
    }

    #[test]
    fn field_assigned_only_by_caller_is_not_planned() {
        // No constructor at all: the object is born with a nil field and
        // only the caller fills it in afterwards. Definite assignment in
        // the constructor is the boundary the analysis can certify.
        let (_, plan) = plan_for(
            "class P { field x; method init(a) { self.x = a; } }
             class C { field d; }
             fn main() {
               var c = new C();
               c.d = new P(7);
               print c.d.x;
             }",
        );
        assert!(plan.entries.is_empty(), "{:?}", plan.entries);
    }

    #[test]
    fn polymorphic_field_divergent_by_subclass() {
        // Richards-style: each Task subclass stores its own packet class.
        let (p, plan) = plan_for(
            "class Packet { field a; method init(v) { self.a = v; } }
             class DevPacket : Packet { }
             class HandPacket : Packet { }
             class Task { field data; }
             class DevTask : Task {
               method init() { self.data = new DevPacket(1); }
               method go() { return self.data.a; }
             }
             class HandTask : Task {
               method init() { self.data = new HandPacket(2); }
               method go() { return self.data.a; }
             }
             fn main() {
               var t1 = new DevTask(); var t2 = new HandTask();
               print t1.go() + t2.go();
             }",
        );
        assert_eq!(plan.entries.len(), 2, "rejected: {:?}", plan.rejected);
        assert!(plan.entries.iter().all(|e| !e.uniform));
        let dev = p.class_by_name("DevTask").unwrap();
        let data = p.interner.get("data").unwrap();
        assert_eq!(
            plan.entry_for(dev, data).unwrap().child,
            p.class_by_name("DevPacket").unwrap()
        );
    }

    #[test]
    fn aliased_store_is_rejected() {
        let (_, plan) = plan_for(
            "global KEEP;
             class P { field x; method init(a) { self.x = a; } }
             class C { field d; method init(a) { self.d = a; } }
             fn main() {
               var p = new P(1);
               KEEP = p;
               var c = new C(p);
               print c.d.x;
             }",
        );
        assert!(plan.entries.is_empty(), "{:?}", plan.entries);
        assert!(plan
            .rejected
            .iter()
            .any(|r| r.code == ReasonCode::UnsafeAssignment && r.detail.contains("store to")));
    }

    #[test]
    fn identity_comparison_rejects() {
        let (_, plan) = plan_for(
            "class P { field x; method init(a) { self.x = a; } }
             class C { field d; method init(a) { self.d = a; } }
             fn main() {
               var p = new P(1);
               var c = new C(p);
               print c.d === c.d;
             }",
        );
        assert!(plan.entries.is_empty());
    }

    #[test]
    fn array_of_points_is_planned() {
        let (_, plan) = plan_for(
            "class P { field x; field y; method init(a, b) { self.x = a; self.y = b; } }
             fn main() {
               var a = array(10);
               var i = 0;
               while (i < 10) { a[i] = new P(i, i); i = i + 1; }
               var s = 0; i = 0;
               while (i < 10) { s = s + a[i].x; i = i + 1; }
               print s;
             }",
        );
        assert_eq!(plan.array_sites.len(), 1, "{:?}", plan.array_sites);
    }

    #[test]
    fn mixed_element_array_is_not_planned() {
        let (_, plan) = plan_for(
            "class P { field x; method init(a) { self.x = a; } }
             class Q { field y; method init(a) { self.y = a; } }
             fn main() {
               var a = array(2);
               a[0] = new P(1);
               a[1] = new Q(2);
               print a[0].x;
             }",
        );
        assert!(plan.array_sites.is_empty());
    }

    #[test]
    fn recursive_class_is_not_planned() {
        // Cons cells with object tails would inline into themselves.
        let (_, plan) = plan_for(
            "class Cons { field head; field tail;
               method init(h, t) { self.head = h; self.tail = t; }
             }
             class P { field x; method init(a) { self.x = a; } }
             fn main() {
               var l = new Cons(new P(1), new Cons(new P(2), nil));
               print l.head.x;
             }",
        );
        // `tail` holds Cons-or-nil → rejected by the nil rule; `head` is
        // inlinable in principle.
        assert!(plan.entries.iter().all(|e| {
            let _ = e;
            true
        }));
        for e in &plan.entries {
            assert_ne!(e.child, e.declaring, "no self-nesting");
        }
    }

    #[test]
    fn same_pass_nesting_is_deferred() {
        // Rect inlines Point; Box inlines Rect — but not in the same pass.
        let (p, plan) = plan_for(
            "class Point { field x; method init(a) { self.x = a; } }
             class Rect { field ll; method init(a) { self.ll = a; } }
             class Box { field r; method init(a) { self.r = a; } }
             fn main() {
               var b = new Box(new Rect(new Point(1.0)));
               print b.r.ll.x;
             }",
        );
        let box_class = p.class_by_name("Box").unwrap();
        let r = p.interner.get("r").unwrap();
        assert!(
            plan.entry_for(box_class, r).is_none(),
            "Box.r must wait for pass 2"
        );
        let rect = p.class_by_name("Rect").unwrap();
        let ll = p.interner.get("ll").unwrap();
        assert!(
            plan.entry_for(rect, ll).is_some(),
            "rejected: {:?}",
            plan.rejected
        );
    }
}
