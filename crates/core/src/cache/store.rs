//! Persistent, crash-consistent disk tier for the artifact cache.
//!
//! [`DiskStore`] stores compiled artifacts content-addressed by
//! [`CacheKey`] so a restarted compile service serves warm artifacts
//! instead of cold-compiling its whole working set. The design goal is
//! *crash consistency without a database*: every on-disk structure is
//! either atomically replaced or append-only and checksummed, so any
//! interruption — kill -9, ENOSPC, torn sector, bit rot — leaves a state
//! recovery can classify and quarantine.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/
//!   journal               append-only manifest (checksummed records)
//!   objects/<key>.art     one envelope per artifact (content-addressed)
//!   objects/*.tmp         in-flight writes (never read as artifacts)
//!   quarantine/           sidelined corrupt files (never served)
//! ```
//!
//! # The `oi.artifact.v1` envelope
//!
//! Each entry file is a checksummed envelope around the serialized
//! [`LadderOutcome`]: magic string, format version, the full cache key
//! (both fingerprints), payload length, and a content checksum over the
//! payload bytes. Entries are written to a temp file, fsynced, then
//! renamed into place — a crash leaves either the old state or the new
//! state plus a quarantinable temp, never a half-visible artifact.
//!
//! # The manifest journal
//!
//! LRU recency and byte-budget state live in an append-only journal of
//! checksummed records (insert / evict / touch). A torn tail — the
//! normal result of killing the process mid-append — is detected by the
//! per-record checksum, truncated away, and repaired from the object
//! directory itself (valid orphan entries are re-adopted). The journal is
//! rewritten compacted on clean shutdown and after every recovery.
//!
//! # Recovery invariant
//!
//! [`DiskStore::open`] always reaches a serving state. Corruption is
//! never fatal: every damaged file is moved to `quarantine/`, counted in
//! the [`RecoveryReport`], and the store degrades toward an empty cache.
//! Only environmental errors (the directory cannot be created or the
//! journal cannot be opened for append) fail `open`.

use super::{Artifact, CacheKey};
use crate::fault::IoFault;
use crate::ladder::{Descent, LadderOutcome, Tier};
use crate::pipeline::Optimized;
use crate::report::{EffectivenessReport, FieldOutcome, ProvenanceStep};
use oi_support::codec::{DecodeError, Reader, Writer};
use oi_support::hash::{fingerprint, Fingerprint};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Envelope magic, first bytes of every entry file.
const MAGIC: &str = "oi.artifact.v1";
/// Envelope format version; a mismatch quarantines the entry.
const FORMAT_VERSION: u32 = 1;
/// Sanity bound on one journal record's payload (a record is ~50 bytes;
/// anything larger is framing corruption).
const MAX_RECORD_BYTES: u32 = 4096;

/// Why a file was quarantined — the detection lattice for storage faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// Magic string or structural framing did not parse.
    BadEnvelope,
    /// Envelope version differs from [`FORMAT_VERSION`].
    VersionSkew,
    /// Envelope key does not match the content address it was stored
    /// under.
    KeyMismatch,
    /// Payload shorter or longer than the envelope declares (torn write).
    LengthMismatch,
    /// Payload checksum mismatch (bit rot, torn write inside payload).
    ChecksumMismatch,
    /// Checksum held but the payload failed to decode (should only occur
    /// on version-compatible but buggy writers; treated identically).
    Undecodable,
}

impl Corruption {
    /// Stable name used in quarantine filenames and reports.
    pub fn name(self) -> &'static str {
        match self {
            Corruption::BadEnvelope => "bad-envelope",
            Corruption::VersionSkew => "version-skew",
            Corruption::KeyMismatch => "key-mismatch",
            Corruption::LengthMismatch => "length-mismatch",
            Corruption::ChecksumMismatch => "checksum-mismatch",
            Corruption::Undecodable => "undecodable",
        }
    }
}

/// What recovery found and did while opening a store directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Entries verified and kept serving.
    pub entries_kept: u64,
    /// Entry files quarantined (bad checksum, version skew, torn write,
    /// key mismatch, undecodable).
    pub quarantined: u64,
    /// `true` when the journal had a torn/corrupt tail that was truncated.
    pub journal_truncated: bool,
    /// Manifest records referencing entry files that no longer exist.
    pub stale_records: u64,
    /// Redundant insert records for keys already resident (replay keeps
    /// the newest).
    pub duplicate_records: u64,
    /// Valid entry files not referenced by the manifest (lost journal
    /// tail), re-adopted into the manifest.
    pub orphans_adopted: u64,
    /// In-flight temp files sidelined (crash or ENOSPC mid-write).
    pub torn_temps: u64,
}

impl RecoveryReport {
    /// `true` when recovery found any damage at all.
    pub fn found_damage(&self) -> bool {
        self.quarantined > 0
            || self.journal_truncated
            || self.stale_records > 0
            || self.orphans_adopted > 0
            || self.torn_temps > 0
    }
}

/// Point-in-time disk-tier counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Entries currently resident on disk.
    pub entries: usize,
    /// Envelope bytes currently resident.
    pub bytes: u64,
    /// The configured disk byte budget.
    pub max_bytes: u64,
    /// `load` calls that found and verified an entry.
    pub load_hits: u64,
    /// `load` calls that found nothing for the key.
    pub load_misses: u64,
    /// Entries found corrupt at load time, quarantined, and reported as
    /// misses (never served).
    pub corrupt_quarantined: u64,
    /// Artifacts persisted successfully.
    pub persists: u64,
    /// Persist attempts that failed (e.g. device full); the in-memory
    /// tier keeps serving, the disk tier just misses later.
    pub persist_failures: u64,
    /// Entries evicted to hold the disk byte budget.
    pub evictions: u64,
}

struct DiskEntry {
    bytes: u64,
    seq: u64,
}

struct DiskInner {
    manifest: BTreeMap<CacheKey, DiskEntry>,
    journal: File,
    seq: u64,
    bytes: u64,
    stats: DiskStats,
    fail_next_persist: bool,
}

/// The persistent artifact tier: content-addressed envelopes plus a
/// checksummed manifest journal, opened through crash recovery.
pub struct DiskStore {
    dir: PathBuf,
    max_bytes: u64,
    recovery: RecoveryReport,
    inner: Mutex<DiskInner>,
}

impl DiskStore {
    /// Opens (creating if needed) the store at `dir` under a disk byte
    /// budget, running crash recovery first.
    ///
    /// Recovery never refuses to start over corruption: damaged entries
    /// and temp files are sidelined into `quarantine/`, a torn journal
    /// tail is truncated, orphaned valid entries are re-adopted, and the
    /// journal is rewritten compacted. Only environmental failures
    /// (directory or journal cannot be created) return `Err`.
    pub fn open(dir: &Path, max_bytes: u64) -> io::Result<DiskStore> {
        fs::create_dir_all(objects_dir(dir))?;
        fs::create_dir_all(quarantine_dir(dir))?;
        let mut report = RecoveryReport::default();

        // 1. Replay the journal, truncating a torn tail.
        let journal_path = dir.join("journal");
        let raw = match fs::read(&journal_path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let replay = replay_journal(&raw);
        report.journal_truncated = replay.truncated;
        report.duplicate_records = replay.duplicates;

        // 2. Sweep the object directory: classify temp files, collect
        //    entry files by key.
        let mut on_disk: BTreeMap<CacheKey, PathBuf> = BTreeMap::new();
        for file in fs::read_dir(objects_dir(dir))? {
            let path = file?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".art") {
                match key_from_filename(name) {
                    Some(key) => {
                        on_disk.insert(key, path);
                    }
                    None => {
                        quarantine(dir, &path, "unaddressable");
                        report.quarantined += 1;
                    }
                }
            } else {
                // Temp files and any other debris: a crash or ENOSPC
                // mid-write. Sideline, never read.
                quarantine(dir, &path, "torn-temp");
                report.torn_temps += 1;
            }
        }

        // 3. Verify every manifest entry against its file.
        let mut manifest: BTreeMap<CacheKey, DiskEntry> = BTreeMap::new();
        let mut seq = 0u64;
        let mut bytes = 0u64;
        for (key, rec_seq) in replay.live {
            // Clamp untrusted replayed sequence numbers: a corrupt or
            // hostile journal must not be able to overflow the recency
            // counter later.
            let rec_seq = rec_seq.min(u64::MAX / 2);
            seq = seq.max(rec_seq);
            match on_disk.remove(&key) {
                None => report.stale_records += 1,
                Some(path) => match verify_entry(&path, &key) {
                    Ok(size) => {
                        bytes += size;
                        manifest.insert(
                            key,
                            DiskEntry {
                                bytes: size,
                                seq: rec_seq,
                            },
                        );
                        report.entries_kept += 1;
                    }
                    Err(why) => {
                        quarantine(dir, &path, why.name());
                        report.quarantined += 1;
                    }
                },
            }
        }

        // 4. Orphaned entry files (journal tail lost before the crash):
        //    adopt the valid ones, quarantine the rest.
        for (key, path) in on_disk {
            match verify_entry(&path, &key) {
                Ok(size) => {
                    seq += 1;
                    bytes += size;
                    manifest.insert(key, DiskEntry { bytes: size, seq });
                    report.orphans_adopted += 1;
                    report.entries_kept += 1;
                }
                Err(why) => {
                    quarantine(dir, &path, why.name());
                    report.quarantined += 1;
                }
            }
        }

        // 5. Rewrite the journal compacted: recovery results become the
        //    new durable baseline.
        let journal = rewrite_journal(&journal_path, &manifest)?;

        let stats = DiskStats {
            entries: manifest.len(),
            bytes,
            max_bytes,
            ..DiskStats::default()
        };
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            max_bytes,
            recovery: report,
            inner: Mutex::new(DiskInner {
                manifest,
                journal,
                seq,
                bytes,
                stats,
                fail_next_persist: false,
            }),
        })
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, DiskInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Loads and verifies the artifact for `key`.
    ///
    /// A verification or decode failure quarantines the entry and returns
    /// `None` — a corrupt artifact is never served; it costs one
    /// recompile.
    pub fn load(&self, key: &CacheKey) -> Option<Artifact> {
        let mut inner = self.locked();
        if !inner.manifest.contains_key(key) {
            inner.stats.load_misses += 1;
            return None;
        }
        let path = entry_path(&self.dir, key);
        match read_entry(&path, key) {
            Ok(outcome) => {
                inner.stats.load_hits += 1;
                inner.seq += 1;
                let seq = inner.seq;
                if let Some(e) = inner.manifest.get_mut(key) {
                    e.seq = seq;
                }
                append_record(&mut inner.journal, Record::Touch { key: *key, seq });
                Some(Artifact::new(outcome))
            }
            Err(why) => {
                quarantine(&self.dir, &path, why.name());
                if let Some(gone) = inner.manifest.remove(key) {
                    inner.bytes -= gone.bytes;
                }
                inner.stats.corrupt_quarantined += 1;
                inner.stats.load_misses += 1;
                let key = *key;
                append_record(&mut inner.journal, Record::Evict { key });
                inner.stats.entries = inner.manifest.len();
                inner.stats.bytes = inner.bytes;
                None
            }
        }
    }

    /// `true` when `key` is resident (without touching recency).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.locked().manifest.contains_key(key)
    }

    /// Persists an artifact: atomic temp-file write (fsync + rename),
    /// then a manifest insert record, then LRU eviction down to the byte
    /// budget. A failed write (e.g. device full) leaves the store state
    /// unchanged and is only counted — the caller keeps serving from
    /// memory.
    pub fn persist(&self, key: &CacheKey, artifact: &Artifact) -> io::Result<()> {
        let payload = encode_outcome(&artifact.outcome);
        let envelope = encode_envelope(key, &payload, FORMAT_VERSION);
        let mut inner = self.locked();
        match self.write_entry(&mut inner, key, &envelope) {
            Ok(()) => {}
            Err(e) => {
                inner.stats.persist_failures += 1;
                return Err(e);
            }
        }
        let size = envelope.len() as u64;
        inner.seq += 1;
        let seq = inner.seq;
        if let Some(old) = inner.manifest.remove(key) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += size;
        inner.manifest.insert(*key, DiskEntry { bytes: size, seq });
        inner.stats.persists += 1;
        append_record(
            &mut inner.journal,
            Record::Insert {
                key: *key,
                bytes: size,
                seq,
            },
        );
        // Evict stalest entries past the budget; never the just-inserted.
        while inner.bytes > self.max_bytes && inner.manifest.len() > 1 {
            let victim = inner
                .manifest
                .iter()
                .filter(|(k, _)| *k != key)
                .min_by_key(|(_, e)| e.seq)
                .map(|(k, _)| *k);
            match victim {
                Some(victim) => {
                    if let Some(gone) = inner.manifest.remove(&victim) {
                        inner.bytes -= gone.bytes;
                    }
                    let _ = fs::remove_file(entry_path(&self.dir, &victim));
                    inner.stats.evictions += 1;
                    append_record(&mut inner.journal, Record::Evict { key: victim });
                }
                None => break,
            }
        }
        inner.stats.entries = inner.manifest.len();
        inner.stats.bytes = inner.bytes;
        Ok(())
    }

    fn write_entry(
        &self,
        inner: &mut DiskInner,
        key: &CacheKey,
        envelope: &[u8],
    ) -> io::Result<()> {
        let tmp = objects_dir(&self.dir).join(format!("{}.tmp", key_filename_stem(key)));
        let final_path = entry_path(&self.dir, key);
        let mut f = File::create(&tmp)?;
        if inner.fail_next_persist {
            // Injected ENOSPC: half the envelope reaches the device, then
            // the write errors. The temp file is deliberately left behind
            // — exactly the debris a real device-full crash leaves — so
            // recovery's temp sweep is exercised.
            inner.fail_next_persist = false;
            let _ = f.write_all(&envelope[..envelope.len() / 2]);
            let _ = f.sync_all();
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected: no space left on device",
            ));
        }
        f.write_all(envelope)?;
        f.sync_all()?;
        fs::rename(&tmp, &final_path)?;
        // Durability of the rename itself: fsync the containing directory
        // (best effort; not all platforms allow opening directories).
        if let Ok(d) = File::open(objects_dir(&self.dir)) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Makes the next [`DiskStore::persist`] fail partway through its
    /// write, as if the device filled mid-stream. Chaos/testing hook.
    pub fn fail_next_persist(&self) {
        self.locked().fail_next_persist = true;
    }

    /// Flushes and rewrites the journal compacted — the clean-shutdown
    /// path (reused by the serve drain protocol).
    pub fn compact(&self) -> io::Result<()> {
        let mut inner = self.locked();
        inner.journal.sync_all().ok();
        let journal = rewrite_journal(&self.dir.join("journal"), &inner.manifest)?;
        inner.journal = journal;
        Ok(())
    }

    /// Current disk-tier counters and occupancy.
    pub fn stats(&self) -> DiskStats {
        let inner = self.locked();
        let mut stats = inner.stats;
        stats.entries = inner.manifest.len();
        stats.bytes = inner.bytes;
        stats.max_bytes = self.max_bytes;
        stats
    }

    /// Corrupts a **closed** store directory with one injected I/O fault
    /// class — the chaos driver's storage matrix. Returns a description
    /// of what was damaged. Fails if the directory does not contain
    /// enough state to express the fault (e.g. no entries yet).
    pub fn inject_io_fault(dir: &Path, fault: IoFault) -> io::Result<String> {
        inject(dir, fault)
    }
}

// ---------------------------------------------------------------------------
// Paths and content addressing.

fn objects_dir(dir: &Path) -> PathBuf {
    dir.join("objects")
}

fn quarantine_dir(dir: &Path) -> PathBuf {
    dir.join("quarantine")
}

fn key_filename_stem(key: &CacheKey) -> String {
    format!("{}{}", key.source.to_hex(), key.config.to_hex())
}

fn entry_path(dir: &Path, key: &CacheKey) -> PathBuf {
    objects_dir(dir).join(format!("{}.art", key_filename_stem(key)))
}

fn key_from_filename(name: &str) -> Option<CacheKey> {
    let hex = name.strip_suffix(".art")?;
    if hex.len() != 64 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let lane = |range: std::ops::Range<usize>| u64::from_str_radix(&hex[range], 16).ok();
    Some(CacheKey {
        source: Fingerprint(lane(0..16)?, lane(16..32)?),
        config: Fingerprint(lane(32..48)?, lane(48..64)?),
    })
}

/// Moves a damaged file into `quarantine/`, tagged with the detection
/// reason. Never deletes: the sidelined bytes stay available for
/// postmortem. Best-effort — a failed move falls back to deletion so the
/// corrupt file can never be picked up as an artifact again.
fn quarantine(dir: &Path, path: &Path, reason: &str) {
    static QUARANTINE_SEQ: AtomicU64 = AtomicU64::new(0);
    let n = QUARANTINE_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("unknown");
    let dest = quarantine_dir(dir).join(format!("{reason}-{n}-{name}"));
    if fs::rename(path, &dest).is_err() {
        let _ = fs::remove_file(path);
    }
}

// ---------------------------------------------------------------------------
// Envelope encode / verify / read.

fn encode_envelope(key: &CacheKey, payload: &[u8], version: u32) -> Vec<u8> {
    let ck = fingerprint(payload);
    let mut w = Writer::new();
    w.str(MAGIC);
    w.u32(version);
    w.u64(key.source.0);
    w.u64(key.source.1);
    w.u64(key.config.0);
    w.u64(key.config.1);
    w.usize(payload.len());
    w.u64(ck.0);
    w.u64(ck.1);
    w.raw(payload);
    w.into_bytes()
}

/// Parses and fully verifies an envelope, returning the payload slice.
fn parse_envelope<'a>(bytes: &'a [u8], expected: &CacheKey) -> Result<&'a [u8], Corruption> {
    let mut r = Reader::new(bytes);
    let magic = r.str().map_err(|_| Corruption::BadEnvelope)?;
    if magic != MAGIC {
        return Err(Corruption::BadEnvelope);
    }
    let version = r.u32().map_err(|_| Corruption::BadEnvelope)?;
    if version != FORMAT_VERSION {
        return Err(Corruption::VersionSkew);
    }
    let key = CacheKey {
        source: Fingerprint(
            r.u64().map_err(|_| Corruption::BadEnvelope)?,
            r.u64().map_err(|_| Corruption::BadEnvelope)?,
        ),
        config: Fingerprint(
            r.u64().map_err(|_| Corruption::BadEnvelope)?,
            r.u64().map_err(|_| Corruption::BadEnvelope)?,
        ),
    };
    if key != *expected {
        return Err(Corruption::KeyMismatch);
    }
    let len = r.usize().map_err(|_| Corruption::BadEnvelope)?;
    let ck = Fingerprint(
        r.u64().map_err(|_| Corruption::BadEnvelope)?,
        r.u64().map_err(|_| Corruption::BadEnvelope)?,
    );
    if r.remaining() != len {
        return Err(Corruption::LengthMismatch);
    }
    let payload = r.take(len).map_err(|_| Corruption::LengthMismatch)?;
    if fingerprint(payload) != ck {
        return Err(Corruption::ChecksumMismatch);
    }
    Ok(payload)
}

/// Structural verification only (no payload decode): the recovery scan.
fn verify_entry(path: &Path, expected: &CacheKey) -> Result<u64, Corruption> {
    let bytes = fs::read(path).map_err(|_| Corruption::BadEnvelope)?;
    parse_envelope(&bytes, expected)?;
    Ok(bytes.len() as u64)
}

/// Full verification + decode: the load path.
fn read_entry(path: &Path, expected: &CacheKey) -> Result<LadderOutcome, Corruption> {
    let bytes = fs::read(path).map_err(|_| Corruption::BadEnvelope)?;
    let payload = parse_envelope(&bytes, expected)?;
    decode_outcome(payload).map_err(|_| Corruption::Undecodable)
}

// ---------------------------------------------------------------------------
// Manifest journal.

enum Record {
    Insert { key: CacheKey, bytes: u64, seq: u64 },
    Evict { key: CacheKey },
    Touch { key: CacheKey, seq: u64 },
}

fn encode_record(rec: &Record) -> Vec<u8> {
    let mut body = Writer::new();
    let key = match rec {
        Record::Insert { key, bytes, seq } => {
            body.u8(1);
            body.u64(*bytes);
            body.u64(*seq);
            key
        }
        Record::Evict { key } => {
            body.u8(2);
            body.u64(0);
            body.u64(0);
            key
        }
        Record::Touch { key, seq } => {
            body.u8(3);
            body.u64(0);
            body.u64(*seq);
            key
        }
    };
    body.u64(key.source.0);
    body.u64(key.source.1);
    body.u64(key.config.0);
    body.u64(key.config.1);
    let body = body.into_bytes();
    let ck = fingerprint(&body);
    let mut w = Writer::new();
    w.u32(body.len() as u32);
    w.raw(&body);
    w.u64(ck.0);
    w.u64(ck.1);
    w.into_bytes()
}

/// Appends one record to the open journal. Best-effort: an append failure
/// (e.g. device full) degrades durability of recency/LRU state, not
/// correctness — recovery re-adopts orphans from the object directory.
fn append_record(journal: &mut File, rec: Record) {
    let _ = journal.write_all(&encode_record(&rec));
    let _ = journal.flush();
}

struct Replay {
    /// key → latest recency seq, in replay order.
    live: Vec<(CacheKey, u64)>,
    truncated: bool,
    duplicates: u64,
}

fn replay_journal(raw: &[u8]) -> Replay {
    let mut live: BTreeMap<CacheKey, u64> = BTreeMap::new();
    let mut truncated = false;
    let mut duplicates = 0u64;
    let mut r = Reader::new(raw);
    loop {
        if r.is_done() {
            break;
        }
        let rec = (|| -> Result<(u8, u64, u64, CacheKey), DecodeError> {
            let start = r.position();
            let len = r.u32()?;
            if len > MAX_RECORD_BYTES {
                return Err(DecodeError {
                    at: start,
                    what: "record length out of range",
                });
            }
            let body = r.take(len as usize)?;
            let ck = Fingerprint(r.u64()?, r.u64()?);
            if fingerprint(body) != ck {
                return Err(DecodeError {
                    at: start,
                    what: "record checksum mismatch",
                });
            }
            let mut b = Reader::new(body);
            let op = b.u8()?;
            let bytes = b.u64()?;
            let seq = b.u64()?;
            let key = CacheKey {
                source: Fingerprint(b.u64()?, b.u64()?),
                config: Fingerprint(b.u64()?, b.u64()?),
            };
            Ok((op, bytes, seq, key))
        })();
        match rec {
            Ok((1, _bytes, seq, key)) => {
                if live.insert(key, seq).is_some() {
                    duplicates += 1;
                }
            }
            Ok((2, _, _, key)) => {
                live.remove(&key);
            }
            Ok((3, _, seq, key)) => {
                if let Some(s) = live.get_mut(&key) {
                    *s = seq;
                }
            }
            Ok(_) => {
                // Unknown op: framing held but content is from the
                // future or corrupt — stop here, truncate the tail.
                truncated = true;
                break;
            }
            Err(_) => {
                truncated = true;
                break;
            }
        }
    }
    Replay {
        live: live.into_iter().collect(),
        truncated,
        duplicates,
    }
}

/// Atomically replaces the journal with a compacted one (one insert
/// record per live entry), returning it opened for append.
fn rewrite_journal(path: &Path, manifest: &BTreeMap<CacheKey, DiskEntry>) -> io::Result<File> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    for (key, e) in manifest {
        f.write_all(&encode_record(&Record::Insert {
            key: *key,
            bytes: e.bytes,
            seq: e.seq,
        }))?;
    }
    f.sync_all()?;
    fs::rename(&tmp, path)?;
    OpenOptions::new().append(true).open(path)
}

// ---------------------------------------------------------------------------
// Outcome (payload) codec.

fn tier_tag(t: Tier) -> u8 {
    match t {
        Tier::GuardedFull => 0,
        Tier::ReducedPrecision => 1,
        Tier::InliningOff => 2,
    }
}

fn tier_from_tag(tag: u8, at: usize) -> Result<Tier, DecodeError> {
    Ok(match tag {
        0 => Tier::GuardedFull,
        1 => Tier::ReducedPrecision,
        2 => Tier::InliningOff,
        _ => {
            return Err(DecodeError {
                at,
                what: "tier tag out of range",
            })
        }
    })
}

fn encode_rule(w: &mut Writer, rule: Option<u8>) {
    match rule {
        Some(r) => {
            w.bool(true);
            w.u8(r);
        }
        None => w.bool(false),
    }
}

fn decode_rule(r: &mut Reader<'_>) -> Result<Option<u8>, DecodeError> {
    Ok(if r.bool()? { Some(r.u8()?) } else { None })
}

/// Serializes a full [`LadderOutcome`] (program, effectiveness report,
/// tier/descent record) to the envelope payload bytes.
pub fn encode_outcome(o: &LadderOutcome) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(&oi_ir::serial::encode_program(&o.optimized.program));

    let rep = &o.optimized.report;
    w.str(&rep.tier);
    w.bool(rep.degraded);
    w.usize(rep.total_object_fields);
    w.usize(rep.ideal);
    w.usize(rep.cxx);
    w.usize(rep.fields_inlined);
    w.usize(rep.array_sites_inlined);
    w.usize(rep.retractions);
    w.usize(rep.outcomes.len());
    for fo in &rep.outcomes {
        w.str(&fo.name);
        w.bool(fo.inlined);
        w.str(&fo.reason);
        w.str(&fo.code);
        encode_rule(&mut w, fo.rule);
        w.str(&fo.detail);
    }
    w.usize(rep.provenance.len());
    for ps in &rep.provenance {
        w.usize(ps.pass);
        w.str(&ps.field);
        w.bool(ps.inlined);
        w.str(&ps.code);
        encode_rule(&mut w, ps.rule);
        w.str(&ps.detail);
    }

    w.usize(o.optimized.passes);
    w.usize(o.optimized.decisions.len());
    for d in &o.optimized.decisions {
        w.str(d);
    }

    w.u8(tier_tag(o.tier));
    w.usize(o.descents.len());
    for d in &o.descents {
        w.u8(tier_tag(d.from));
        w.u8(tier_tag(d.to));
        w.str(&d.reason);
    }
    w.bool(o.identity_fallback);
    w.into_bytes()
}

/// Decodes envelope payload bytes back into a [`LadderOutcome`].
/// Panic-free on arbitrary input.
pub fn decode_outcome(bytes: &[u8]) -> Result<LadderOutcome, DecodeError> {
    let mut r = Reader::new(bytes);
    let program = oi_ir::serial::decode_program(r.bytes()?)?;

    let tier_name = r.str()?;
    let degraded = r.bool()?;
    let total_object_fields = r.usize()?;
    let ideal = r.usize()?;
    let cxx = r.usize()?;
    let fields_inlined = r.usize()?;
    let array_sites_inlined = r.usize()?;
    let retractions = r.usize()?;
    let n = r.seq_len()?;
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        outcomes.push(FieldOutcome {
            name: r.str()?,
            inlined: r.bool()?,
            reason: r.str()?,
            code: r.str()?,
            rule: decode_rule(&mut r)?,
            detail: r.str()?,
        });
    }
    let n = r.seq_len()?;
    let mut provenance = Vec::with_capacity(n);
    for _ in 0..n {
        provenance.push(ProvenanceStep {
            pass: r.usize()?,
            field: r.str()?,
            inlined: r.bool()?,
            code: r.str()?,
            rule: decode_rule(&mut r)?,
            detail: r.str()?,
        });
    }

    let passes = r.usize()?;
    let n = r.seq_len()?;
    let mut decisions = Vec::with_capacity(n);
    for _ in 0..n {
        decisions.push(r.str()?);
    }

    let tier = tier_from_tag(r.u8()?, r.position())?;
    let n = r.seq_len()?;
    let mut descents = Vec::with_capacity(n);
    for _ in 0..n {
        descents.push(Descent {
            from: tier_from_tag(r.u8()?, r.position())?,
            to: tier_from_tag(r.u8()?, r.position())?,
            reason: r.str()?,
        });
    }
    let identity_fallback = r.bool()?;
    if !r.is_done() {
        return Err(DecodeError {
            at: r.position(),
            what: "trailing bytes after outcome",
        });
    }
    Ok(LadderOutcome {
        optimized: Optimized {
            program,
            report: EffectivenessReport {
                tier: tier_name,
                degraded,
                total_object_fields,
                ideal,
                cxx,
                fields_inlined,
                array_sites_inlined,
                retractions,
                outcomes,
                provenance,
            },
            passes,
            decisions,
        },
        tier,
        descents,
        identity_fallback,
    })
}

// ---------------------------------------------------------------------------
// Fault injection (chaos matrix).

/// Picks the first (lexicographically smallest) entry file in the store.
fn first_entry(dir: &Path) -> io::Result<(CacheKey, PathBuf)> {
    let mut entries: Vec<_> = fs::read_dir(objects_dir(dir))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "art"))
        .collect();
    entries.sort();
    for path in entries {
        if let Some(key) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(key_from_filename)
        {
            return Ok((key, path));
        }
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        "store has no entries to corrupt",
    ))
}

fn inject(dir: &Path, fault: IoFault) -> io::Result<String> {
    match fault {
        IoFault::TornWrite => {
            let (_, path) = first_entry(dir)?;
            let bytes = fs::read(&path)?;
            fs::write(&path, &bytes[..bytes.len() / 2])?;
            Ok(format!(
                "truncated {} to {} of {} bytes",
                path.display(),
                bytes.len() / 2,
                bytes.len()
            ))
        }
        IoFault::TruncatedJournalTail => {
            let path = dir.join("journal");
            let bytes = fs::read(&path)?;
            if bytes.len() < 8 {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "journal too short to tear",
                ));
            }
            fs::write(&path, &bytes[..bytes.len() - 7])?;
            Ok(format!(
                "cut 7 bytes off the journal tail ({})",
                bytes.len()
            ))
        }
        IoFault::BitFlipBody => {
            let (key, path) = first_entry(dir)?;
            let mut bytes = fs::read(&path)?;
            // Locate the payload: header is everything before it. Flip a
            // bit in the payload's middle.
            let payload_len = {
                let payload = parse_envelope(&bytes, &key).map_err(|c| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("pre-corrupt: {c:?}"))
                })?;
                payload.len()
            };
            let header_len = bytes.len() - payload_len;
            let at = header_len + payload_len / 2;
            bytes[at] ^= 0x10;
            fs::write(&path, &bytes)?;
            Ok(format!("flipped bit 4 of payload byte {at}"))
        }
        IoFault::BitFlipHeader => {
            let (_, path) = first_entry(dir)?;
            let mut bytes = fs::read(&path)?;
            // Byte 8 sits inside the magic string (after its u64 length
            // prefix): structural header corruption.
            bytes[8] ^= 0x10;
            fs::write(&path, &bytes)?;
            Ok("flipped bit 4 of header byte 8 (magic)".to_string())
        }
        IoFault::StaleManifestRecord => {
            let (key, _) = first_entry(dir)?;
            let ghost = CacheKey {
                source: Fingerprint(0xDEAD_BEEF, 0xFEED_FACE),
                config: key.config,
            };
            let mut journal = OpenOptions::new().append(true).open(dir.join("journal"))?;
            // A stale record (no file will ever match) plus a duplicate
            // insert of a surviving key.
            journal.write_all(&encode_record(&Record::Insert {
                key: ghost,
                bytes: 123,
                seq: u64::MAX - 1,
            }))?;
            journal.write_all(&encode_record(&Record::Insert {
                key,
                bytes: 123,
                seq: u64::MAX,
            }))?;
            Ok("appended stale + duplicate manifest records".to_string())
        }
        IoFault::EnospcMidWrite => {
            let (key, path) = first_entry(dir)?;
            let bytes = fs::read(&path)?;
            let tmp = objects_dir(dir).join(format!("{}.tmp", key_filename_stem(&key)));
            fs::write(&tmp, &bytes[..bytes.len() / 3])?;
            Ok(format!(
                "left a {}-byte orphan temp from a simulated device-full write",
                bytes.len() / 3
            ))
        }
        IoFault::VersionSkew => {
            let (key, path) = first_entry(dir)?;
            let bytes = fs::read(&path)?;
            let payload = parse_envelope(&bytes, &key)
                .map_err(|c| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("pre-corrupt: {c:?}"))
                })?
                .to_vec();
            // Internally consistent envelope from a "future" writer.
            fs::write(&path, encode_envelope(&key, &payload, FORMAT_VERSION + 1))?;
            Ok(format!(
                "rewrote entry at format version {}",
                FORMAT_VERSION + 1
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::config_fingerprint;
    use crate::ladder::{optimize_with_ladder, LadderConfig};
    use oi_support::Budget;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("oi-store-test-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn source(i: usize) -> String {
        format!(
            "class Point{i} {{ field x; field y;
               method init(a, b) {{ self.x = a; self.y = b; }}
             }}
             class Rect{i} {{ field ll; field ur;
               method init(a, b) {{ self.ll = new Point{i}(a, a + {i}); self.ur = new Point{i}(b, b + 3); }}
               method span() {{ return self.ur.x - self.ll.x + self.ur.y - self.ll.y; }}
             }}
             fn main() {{
               var r = new Rect{i}({i}, 10);
               print r.span();
             }}"
        )
    }

    fn compile(src: &str) -> LadderOutcome {
        let program = oi_ir::lower::compile(src).expect("test source compiles");
        optimize_with_ladder(&program, &LadderConfig::default(), &Budget::unlimited())
    }

    fn key_for(src: &str) -> CacheKey {
        let fp = config_fingerprint(&LadderConfig::default(), None, None);
        CacheKey::whole_program(src, fp)
    }

    /// Seeds a store with `n` compiled artifacts and shuts it down
    /// cleanly. Returns the keys with their expected program prints.
    fn seeded(dir: &Path, n: usize) -> Vec<(CacheKey, String)> {
        let store = DiskStore::open(dir, 1 << 30).unwrap();
        let mut keys = Vec::new();
        for i in 0..n {
            let src = source(i);
            let key = key_for(&src);
            let outcome = compile(&src);
            let expected = oi_ir::printer::print_program(&outcome.optimized.program);
            store.persist(&key, &Artifact::new(outcome)).unwrap();
            keys.push((key, expected));
        }
        store.compact().unwrap();
        keys
    }

    /// Reopens the store and asserts no corrupt artifact is ever served:
    /// every load either round-trips to the expected program or misses.
    fn assert_no_corrupt_serves(store: &DiskStore, keys: &[(CacheKey, String)]) -> (usize, usize) {
        let mut served = 0;
        let mut missed = 0;
        for (key, expected) in keys {
            match store.load(key) {
                Some(a) => {
                    assert_eq!(
                        &oi_ir::printer::print_program(&a.outcome.optimized.program),
                        expected,
                        "served artifact must be byte-equivalent"
                    );
                    served += 1;
                }
                None => missed += 1,
            }
        }
        (served, missed)
    }

    #[test]
    fn outcome_round_trips_through_the_payload_codec() {
        let src = source(0);
        let outcome = compile(&src);
        let bytes = encode_outcome(&outcome);
        let back = decode_outcome(&bytes).unwrap();
        assert_eq!(
            oi_ir::printer::print_program(&back.optimized.program),
            oi_ir::printer::print_program(&outcome.optimized.program)
        );
        assert_eq!(back.tier, outcome.tier);
        assert_eq!(back.identity_fallback, outcome.identity_fallback);
        assert_eq!(back.optimized.passes, outcome.optimized.passes);
        assert_eq!(back.optimized.decisions, outcome.optimized.decisions);
        assert_eq!(
            back.optimized.report.fields_inlined,
            outcome.optimized.report.fields_inlined
        );
        assert_eq!(
            back.optimized.report.outcomes.len(),
            outcome.optimized.report.outcomes.len()
        );
    }

    #[test]
    fn persist_load_round_trips_across_reopen() {
        let dir = temp_dir("roundtrip");
        let keys = seeded(&dir, 3);
        let store = DiskStore::open(&dir, 1 << 30).unwrap();
        assert!(!store.recovery().found_damage(), "{:?}", store.recovery());
        assert_eq!(store.stats().entries, 3);
        let (served, missed) = assert_no_corrupt_serves(&store, &keys);
        assert_eq!((served, missed), (3, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unclean_shutdown_still_recovers_from_orphans() {
        // Skip compact(): drop the store with only appended journal
        // records (plus renamed entry files). Everything must survive.
        let dir = temp_dir("unclean");
        {
            let store = DiskStore::open(&dir, 1 << 30).unwrap();
            let src = source(0);
            store
                .persist(&key_for(&src), &Artifact::new(compile(&src)))
                .unwrap();
            // no compact — simulated kill
        }
        let store = DiskStore::open(&dir, 1 << 30).unwrap();
        assert_eq!(store.stats().entries, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_budget_evicts_lru() {
        let dir = temp_dir("budget");
        let store = DiskStore::open(&dir, 1).unwrap(); // 1-byte budget
        for i in 0..3 {
            let src = source(i);
            store
                .persist(&key_for(&src), &Artifact::new(compile(&src)))
                .unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.entries, 1, "budget of 1 byte keeps only the newest");
        assert_eq!(stats.evictions, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_io_fault_class_is_detected_quarantined_and_survivable() {
        for fault in IoFault::ALL {
            let dir = temp_dir(fault.name());
            let keys = seeded(&dir, 2);
            DiskStore::inject_io_fault(&dir, fault)
                .unwrap_or_else(|e| panic!("{}: injection failed: {e}", fault.name()));
            let store = DiskStore::open(&dir, 1 << 30)
                .unwrap_or_else(|e| panic!("{}: recovery must serve, got {e}", fault.name()));
            let report = store.recovery();
            assert!(
                report.found_damage() || fault == IoFault::StaleManifestRecord,
                "{}: recovery must notice the damage: {report:?}",
                fault.name()
            );
            // Zero corrupt serves, ever.
            let (_, _) = assert_no_corrupt_serves(&store, &keys);
            // The store still accepts new work after recovery.
            let src = source(7);
            store
                .persist(&key_for(&src), &Artifact::new(compile(&src)))
                .unwrap();
            assert!(store.load(&key_for(&src)).is_some());
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn torn_write_is_quarantined_not_served() {
        let dir = temp_dir("torn");
        let keys = seeded(&dir, 2);
        DiskStore::inject_io_fault(&dir, IoFault::TornWrite).unwrap();
        let store = DiskStore::open(&dir, 1 << 30).unwrap();
        assert_eq!(store.recovery().quarantined, 1);
        let (served, missed) = assert_no_corrupt_serves(&store, &keys);
        assert_eq!((served, missed), (1, 1));
        // The sidelined file is preserved for postmortem.
        let q = fs::read_dir(quarantine_dir(&dir)).unwrap().count();
        assert_eq!(q, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_journal_tail_is_repaired_and_entries_readopted() {
        let dir = temp_dir("tail");
        let keys = seeded(&dir, 2);
        DiskStore::inject_io_fault(&dir, IoFault::TruncatedJournalTail).unwrap();
        let store = DiskStore::open(&dir, 1 << 30).unwrap();
        let report = store.recovery();
        assert!(report.journal_truncated);
        // The entry whose insert record was torn off is re-adopted from
        // its (valid) file.
        assert_eq!(report.entries_kept, 2, "{report:?}");
        let (served, missed) = assert_no_corrupt_serves(&store, &keys);
        assert_eq!((served, missed), (2, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_and_duplicate_manifest_records_are_counted_and_dropped() {
        let dir = temp_dir("stale");
        let keys = seeded(&dir, 2);
        DiskStore::inject_io_fault(&dir, IoFault::StaleManifestRecord).unwrap();
        let store = DiskStore::open(&dir, 1 << 30).unwrap();
        let report = store.recovery();
        assert_eq!(report.stale_records, 1, "{report:?}");
        assert_eq!(report.duplicate_records, 1, "{report:?}");
        let (served, missed) = assert_no_corrupt_serves(&store, &keys);
        assert_eq!((served, missed), (2, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_quarantines_without_refusing_start() {
        let dir = temp_dir("skew");
        let keys = seeded(&dir, 2);
        DiskStore::inject_io_fault(&dir, IoFault::VersionSkew).unwrap();
        let store = DiskStore::open(&dir, 1 << 30).unwrap();
        assert_eq!(store.recovery().quarantined, 1);
        let (served, missed) = assert_no_corrupt_serves(&store, &keys);
        assert_eq!((served, missed), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_mid_write_leaves_no_visible_damage() {
        let dir = temp_dir("enospc");
        let store = DiskStore::open(&dir, 1 << 30).unwrap();
        let src = source(0);
        let key = key_for(&src);
        let artifact = Artifact::new(compile(&src));
        store.fail_next_persist();
        let err = store.persist(&key, &artifact).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(store.stats().persist_failures, 1);
        assert!(store.load(&key).is_none(), "failed persist must not serve");
        // The retry succeeds and the orphan temp is swept on next open.
        store.persist(&key, &artifact).unwrap();
        assert!(store.load(&key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_time_corruption_quarantines_and_counts() {
        // Corrupt an entry *after* open (recovery saw it clean): the load
        // path itself must detect, quarantine, count, and miss.
        let dir = temp_dir("load-corrupt");
        let keys = seeded(&dir, 1);
        let store = DiskStore::open(&dir, 1 << 30).unwrap();
        DiskStore::inject_io_fault(&dir, IoFault::BitFlipBody).unwrap();
        assert!(store.load(&keys[0].0).is_none());
        let stats = store.stats();
        assert_eq!(stats.corrupt_quarantined, 1);
        assert_eq!(stats.entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_filenames_round_trip() {
        let src = source(3);
        let key = key_for(&src);
        let name = format!("{}.art", key_filename_stem(&key));
        assert_eq!(key_from_filename(&name), Some(key));
        assert_eq!(key_from_filename("nope.art"), None);
        assert_eq!(key_from_filename("deadbeef.tmp"), None);
    }
}
