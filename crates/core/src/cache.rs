//! Content-addressed artifact cache for the compile service.
//!
//! The compile server (`oic serve`) and the batch driver address optimized
//! artifacts by [`CacheKey`] — a pair of [`Fingerprint`]s: the raw *source
//! bytes* and the full *configuration/cost-model* the ladder would compile
//! them under. Two requests share an artifact only when both match, so a
//! changed inline threshold, analysis cap, VM cost constant, or start tier
//! can never serve a stale artifact, while byte-identical re-submissions
//! always hit.
//!
//! Keying is deliberately **byte**-addressed, not token-addressed: a
//! whitespace-only edit changes the source fingerprint and misses. That is
//! the conservative end of the design space — a miss costs one recompile,
//! a wrong hit costs a wrong program.
//!
//! The key anticipates per-method granularity: [`CacheKey::scoped`]
//! derives a method-level key from the whole-program key, the hook a
//! future Hybrid-Inlining-style incremental summary cache (PAPERS.md,
//! arXiv 2210.14436) will use to cache per-method analysis summaries
//! under the same addressing scheme. This PR caches whole artifacts only.
//!
//! Eviction is least-recently-used under a byte budget: each [`Artifact`]
//! carries a modeled byte footprint (the optimized program's code bytes
//! plus fixed per-entry overhead), and inserting past the budget evicts
//! the stalest entries first. Artifacts are handed out as
//! [`std::sync::Arc`] clones — a hit never deep-copies the program, so
//! concurrent batch workers and the server share one allocation.
//!
//! The [`store`] submodule adds the persistent tier: a crash-consistent
//! on-disk store of checksummed artifact envelopes behind the same
//! [`CacheKey`] addressing, so a restarted service warm-starts instead of
//! recompiling its working set.

pub mod store;

use crate::ladder::LadderConfig;
use crate::ladder::LadderOutcome;
use oi_support::hash::{Fingerprint, Hasher};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// The content address of one compiled artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    /// Fingerprint of the raw source bytes.
    pub source: Fingerprint,
    /// Fingerprint of the complete compile configuration (ladder knobs,
    /// analysis caps, optimizer thresholds, VM cost model) — see
    /// [`config_fingerprint`].
    pub config: Fingerprint,
}

impl CacheKey {
    /// The whole-program key for `source` compiled under `config`.
    pub fn whole_program(source: &str, config: Fingerprint) -> CacheKey {
        CacheKey {
            source: oi_support::hash::fingerprint(source.as_bytes()),
            config,
        }
    }

    /// Derives a per-method key from this whole-program key — the
    /// granularity hook for future incremental summary caching. Not used
    /// for artifact addressing yet.
    pub fn scoped(&self, method: &str) -> CacheKey {
        CacheKey {
            source: self.source.scoped(method),
            config: self.config,
        }
    }
}

/// Fingerprints every configuration knob that can change the optimized
/// artifact: the inline/opt/analysis configs, ladder oracle + start tier,
/// firewall retraction budget and sanitizer level, and the VM cost model
/// and cache geometry (the cost model steers devirtualization and
/// explosion decisions, so it is part of the artifact's identity).
///
/// Extra service-level knobs that bound the compile (`max_rounds`,
/// `deadline_ms` analysis budgets) are folded in too: a compile that ran
/// under a tighter budget may have degraded, so it must not alias an
/// unbudgeted one.
pub fn config_fingerprint(
    ladder: &LadderConfig,
    max_rounds: Option<u64>,
    deadline_ms: Option<u64>,
) -> Fingerprint {
    let mut h = Hasher::new();
    h.write_str("oi.cache.config.v1"); // domain-separates future revisions

    let inline = &ladder.inline;
    h.write_bool(inline.object_fields);
    h.write_bool(inline.array_elements);
    h.write_str(&format!("{:?}", inline.array_layout));
    h.write_bool(inline.check_assignments);
    h.write_u64(inline.max_passes as u64);
    h.write_str(&format!("{:?}", inline.fault));

    let opt = &inline.opt;
    h.write_u64(opt.inline_threshold as u64);
    h.write_u64(opt.max_inline_rounds as u64);
    h.write_bool(opt.enable_inlining);
    h.write_bool(opt.enable_dead_alloc_removal);
    h.write_bool(opt.enable_ctor_explosion);
    h.write_u64(opt.explode_threshold as u64);

    let an = &inline.analysis;
    h.write_bool(an.track_tags);
    h.write_u64(an.max_contours_per_method as u64);
    h.write_u64(an.max_ocontours_per_site as u64);
    h.write_u64(an.max_tag_path as u64);
    h.write_u64(an.max_tags_per_value as u64);
    h.write_u64(an.max_rounds as u64);

    h.write_bool(ladder.oracle);
    h.write_str(ladder.start.name());
    h.write_u64(ladder.firewall.max_retractions as u64);
    h.write_str(&format!("{:?}", ladder.firewall.fault));
    h.write_str(&format!("{:?}", ladder.firewall.checked));

    let vm = &ladder.firewall.vm;
    let c = &vm.cost;
    for v in [
        c.arith,
        c.float_arith,
        c.sqrt,
        c.mov,
        c.heap_read,
        c.heap_write,
        c.cache_miss,
        c.alloc_base,
        c.alloc_word,
        c.dyn_dispatch,
        c.static_call,
        c.call_arg,
        c.branch,
        c.lea,
        c.print,
    ] {
        h.write_u64(v);
    }
    h.write_u64(vm.cache.size_bytes as u64);
    h.write_u64(vm.cache.line_bytes as u64);
    h.write_u64(vm.cache.ways as u64);
    h.write_u64(vm.max_instructions);
    h.write_u64(vm.max_depth as u64);
    h.write_u64(vm.max_heap_words);
    h.write_u64(vm.alloc_header_words);

    h.write_u64(max_rounds.unwrap_or(0));
    h.write_bool(max_rounds.is_some());
    h.write_u64(deadline_ms.unwrap_or(0));
    h.write_bool(deadline_ms.is_some());
    h.finish()
}

/// Fixed modeled per-entry overhead in bytes (key, metadata, report), so
/// even an empty program charges something against the budget.
const ENTRY_OVERHEAD_BYTES: usize = 1024;

/// One cached compile result: the full ladder outcome plus its modeled
/// byte footprint.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// The ladder's result for this key (program + effectiveness report +
    /// tier/descent record).
    pub outcome: LadderOutcome,
    /// Modeled bytes charged against the cache budget.
    pub bytes: usize,
}

impl Artifact {
    /// Wraps a ladder outcome, deriving its budget footprint from the
    /// optimized program's modeled code size.
    pub fn new(outcome: LadderOutcome) -> Artifact {
        let size = oi_ir::size::measure(&outcome.optimized.program);
        Artifact {
            outcome,
            bytes: size.code_bytes + ENTRY_OVERHEAD_BYTES,
        }
    }
}

/// Point-in-time cache counters (monotonic except `entries`/`bytes`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an artifact.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Artifacts inserted.
    pub insertions: u64,
    /// Cumulative modeled bytes across all insertions (monotonic; pairs
    /// with `evictions` to characterize churn under the budget).
    pub inserted_bytes: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Modeled bytes currently resident.
    pub bytes: usize,
    /// The configured byte budget.
    pub max_bytes: usize,
}

struct Entry {
    artifact: Arc<Artifact>,
    last_used: u64,
}

struct CacheInner {
    entries: BTreeMap<CacheKey, Entry>,
    clock: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
    inserted_bytes: u64,
}

/// A thread-safe LRU artifact cache under a byte budget.
pub struct ArtifactCache {
    inner: Mutex<CacheInner>,
    max_bytes: usize,
}

impl ArtifactCache {
    /// An empty cache bounded to `max_bytes` of modeled artifact bytes.
    pub fn new(max_bytes: usize) -> ArtifactCache {
        ArtifactCache {
            inner: Mutex::new(CacheInner {
                entries: BTreeMap::new(),
                clock: 0,
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                insertions: 0,
                inserted_bytes: 0,
            }),
            max_bytes,
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // Batch workers contain panics per job; a panic while holding the
        // lock must not poison the cache for the rest of the fleet.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `key`, bumping its recency on a hit. The returned `Arc`
    /// shares the resident artifact — no clone of the program.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Artifact>> {
        let mut inner = self.locked();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = clock;
                inner.hits += 1;
                Some(Arc::clone(&inner.entries[key].artifact))
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts an artifact under `key`, evicting least-recently-used
    /// entries until the byte budget holds, and returns the shared handle.
    /// The just-inserted entry is never evicted, so a single artifact
    /// larger than the whole budget still caches (alone).
    pub fn insert(&self, key: CacheKey, artifact: Artifact) -> Arc<Artifact> {
        let shared = Arc::new(artifact);
        let mut inner = self.locked();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.entries.remove(&key) {
            inner.bytes -= old.artifact.bytes;
        }
        inner.bytes += shared.bytes;
        inner.insertions += 1;
        inner.inserted_bytes += shared.bytes as u64;
        inner.entries.insert(
            key,
            Entry {
                artifact: Arc::clone(&shared),
                last_used: clock,
            },
        );
        while inner.bytes > self.max_bytes && inner.entries.len() > 1 {
            let stalest = inner
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match stalest {
                Some(victim) => {
                    let gone = inner.entries.remove(&victim).expect("victim resident");
                    inner.bytes -= gone.artifact.bytes;
                    inner.evictions += 1;
                }
                None => break,
            }
        }
        shared
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.locked();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            insertions: inner.insertions,
            inserted_bytes: inner.inserted_bytes,
            entries: inner.entries.len(),
            bytes: inner.bytes,
            max_bytes: self.max_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::{optimize_with_ladder, LadderConfig};
    use oi_support::Budget;

    const SOURCE: &str = "
        global KEEP;
        class Point { field x; field y;
          method init(a, b) { self.x = a; self.y = b; }
        }
        class Rect { field ll; field ur;
          method init(a, b) { self.ll = new Point(a, a + 1); self.ur = new Point(b, b + 3); }
          method span() { return self.ur.x - self.ll.x + self.ur.y - self.ll.y; }
        }
        fn main() {
          var r = new Rect(1, 10);
          KEEP = r;
          print KEEP.span();
        }";

    fn compile(source: &str) -> LadderOutcome {
        let program = oi_ir::lower::compile(source).expect("test source compiles");
        optimize_with_ladder(&program, &LadderConfig::default(), &Budget::unlimited())
    }

    fn artifact_sized(bytes: usize) -> Artifact {
        let mut artifact = Artifact::new(compile(SOURCE));
        artifact.bytes = bytes;
        artifact
    }

    #[test]
    fn key_is_stable_for_identical_source_and_config() {
        let fp = config_fingerprint(&LadderConfig::default(), None, None);
        let a = CacheKey::whole_program(SOURCE, fp);
        let b = CacheKey::whole_program(SOURCE, fp);
        assert_eq!(a, b);
        let cache = ArtifactCache::new(1 << 20);
        cache.insert(a, Artifact::new(compile(SOURCE)));
        assert!(cache.get(&b).is_some(), "same source+config must hit");
    }

    #[test]
    fn byte_different_whitespace_misses() {
        // Token-identical but byte-different: an extra space. The cache is
        // byte-addressed, so this must miss.
        let respaced = SOURCE.replace("field x;", "field  x;");
        assert_ne!(SOURCE, respaced);
        let fp = config_fingerprint(&LadderConfig::default(), None, None);
        let cache = ArtifactCache::new(1 << 20);
        cache.insert(
            CacheKey::whole_program(SOURCE, fp),
            Artifact::new(compile(SOURCE)),
        );
        assert!(
            cache.get(&CacheKey::whole_program(&respaced, fp)).is_none(),
            "byte-different source must miss"
        );
    }

    #[test]
    fn config_fingerprint_sees_every_knob_family() {
        let base = LadderConfig::default();
        let fp = config_fingerprint(&base, None, None);

        let mut threshold = base;
        threshold.inline.opt.inline_threshold += 1;
        assert_ne!(fp, config_fingerprint(&threshold, None, None));

        let mut analysis = base;
        analysis.inline.analysis.max_contours_per_method -= 1;
        assert_ne!(fp, config_fingerprint(&analysis, None, None));

        let mut cost = base;
        cost.firewall.vm.cost.cache_miss += 1;
        assert_ne!(fp, config_fingerprint(&cost, None, None));

        let mut tier = base;
        tier.start = crate::ladder::Tier::InliningOff;
        assert_ne!(fp, config_fingerprint(&tier, None, None));

        let mut oracle = base;
        oracle.oracle = false;
        assert_ne!(fp, config_fingerprint(&oracle, None, None));

        // Budget knobs are part of the identity, and None != Some(0).
        assert_ne!(fp, config_fingerprint(&base, Some(0), None));
        assert_ne!(fp, config_fingerprint(&base, None, Some(500)));
        assert_eq!(fp, config_fingerprint(&base, None, None));
    }

    #[test]
    fn lru_evicts_stalest_at_byte_budget() {
        let fp = config_fingerprint(&LadderConfig::default(), None, None);
        let key = |i: u32| CacheKey::whole_program(&format!("src-{i}"), fp);
        let cache = ArtifactCache::new(3_000);
        cache.insert(key(0), artifact_sized(1_000));
        cache.insert(key(1), artifact_sized(1_000));
        cache.insert(key(2), artifact_sized(1_000));
        assert_eq!(cache.stats().entries, 3);
        // Touch 0 so 1 becomes the LRU victim.
        assert!(cache.get(&key(0)).is_some());
        cache.insert(key(3), artifact_sized(1_000));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 3);
        assert!(stats.bytes <= 3_000);
        assert!(cache.get(&key(1)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn oversized_single_artifact_still_caches_alone() {
        let fp = config_fingerprint(&LadderConfig::default(), None, None);
        let key = CacheKey::whole_program("big", fp);
        let cache = ArtifactCache::new(100);
        cache.insert(key, artifact_sized(10_000));
        assert!(cache.get(&key).is_some(), "never evicts the just-inserted");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn oversized_artifact_is_pinned_only_until_the_next_insert() {
        // The pinning contract: an over-budget entry is admitted and
        // served (a compile is never wasted), but it is the first LRU
        // victim once anything else arrives — the budget reasserts itself
        // instead of one whale squatting in the cache forever.
        let fp = config_fingerprint(&LadderConfig::default(), None, None);
        let whale = CacheKey::whole_program("whale", fp);
        let minnow = CacheKey::whole_program("minnow", fp);
        let cache = ArtifactCache::new(100);
        cache.insert(whale, artifact_sized(10_000));
        assert!(cache.get(&whale).is_some(), "oversized entry is served");
        cache.insert(minnow, artifact_sized(50));
        let stats = cache.stats();
        assert!(cache.get(&whale).is_none(), "whale evicted on next insert");
        assert!(cache.get(&minnow).is_some());
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= 100, "budget holds again: {}", stats.bytes);
    }

    #[test]
    fn inserted_bytes_accumulates_across_evictions_and_replacements() {
        let fp = config_fingerprint(&LadderConfig::default(), None, None);
        let key = |i: u32| CacheKey::whole_program(&format!("src-{i}"), fp);
        let cache = ArtifactCache::new(1_500);
        cache.insert(key(0), artifact_sized(1_000));
        cache.insert(key(1), artifact_sized(1_000)); // evicts key(0)
        cache.insert(key(1), artifact_sized(200)); // replaces in place
        let stats = cache.stats();
        assert_eq!(stats.inserted_bytes, 2_200, "monotonic, counts churn");
        assert_eq!(stats.bytes, 200, "resident bytes reflect the survivor");
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.insertions, 3);
    }

    #[test]
    fn hit_shares_the_arc_no_artifact_clone() {
        let fp = config_fingerprint(&LadderConfig::default(), None, None);
        let key = CacheKey::whole_program(SOURCE, fp);
        let cache = ArtifactCache::new(1 << 20);
        let inserted = cache.insert(key, Artifact::new(compile(SOURCE)));
        let hit_a = cache.get(&key).expect("hit");
        let hit_b = cache.get(&key).expect("hit");
        assert!(
            Arc::ptr_eq(&inserted, &hit_a),
            "hit returns the same allocation"
        );
        assert!(Arc::ptr_eq(&hit_a, &hit_b));
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn reinsert_replaces_and_accounts_bytes() {
        let fp = config_fingerprint(&LadderConfig::default(), None, None);
        let key = CacheKey::whole_program(SOURCE, fp);
        let cache = ArtifactCache::new(1 << 20);
        cache.insert(key, artifact_sized(1_000));
        cache.insert(key, artifact_sized(2_000));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 2_000);
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn scoped_keys_differ_per_method_but_share_config() {
        let fp = config_fingerprint(&LadderConfig::default(), None, None);
        let whole = CacheKey::whole_program(SOURCE, fp);
        let a = whole.scoped("Rect.area");
        let b = whole.scoped("Rect.perimeter");
        assert_ne!(a, b);
        assert_ne!(a, whole);
        assert_eq!(a, whole.scoped("Rect.area"), "scoped keys are stable");
        assert_eq!(a.config, whole.config);
    }

    #[test]
    fn stats_reconcile_with_operations() {
        let fp = config_fingerprint(&LadderConfig::default(), None, None);
        let cache = ArtifactCache::new(1 << 20);
        let key = CacheKey::whole_program(SOURCE, fp);
        assert!(cache.get(&key).is_none());
        cache.insert(key, Artifact::new(compile(SOURCE)));
        assert!(cache.get(&key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }
}
