//! The soundness firewall: a differential oracle plus graceful
//! per-decision retraction.
//!
//! Dolby's transformation is only legal when use specialization (§4.1) and
//! assignment specialization (§4.2) jointly prove that inlining cannot
//! change observable aliasing. This reproduction has no mechanized proof of
//! those analyses, so the firewall checks each compiled program
//! *empirically*: it runs the baseline and the inlined build under the
//! instrumented VM and compares observable behavior — printed output,
//! termination status, and a layout-independent allocation census. When the
//! builds disagree (or the transformed IR fails verification), it bisects
//! over the applied inlining decisions, retracts the culprit with rule-5
//! ([`ReasonCode::Retracted`]) provenance, re-runs the transformation, and
//! returns a correct program instead of aborting — precision degrades,
//! soundness does not.
//!
//! [`ReasonCode::Retracted`]: crate::decision::ReasonCode::Retracted

use crate::pipeline::{
    try_baseline_budgeted, try_optimize_budgeted, InlineConfig, Optimized, PipelineError,
};
use oi_ir::Program;
use oi_support::trace::{self, kv};
use oi_support::Budget;
use oi_vm::{run, CheckLevel, RunResult, VmConfig, VmError};
use std::collections::BTreeSet;

pub use crate::fault::Fault;

/// Firewall configuration.
#[derive(Clone, Copy, Debug)]
pub struct FirewallConfig {
    /// VM limits for the oracle runs. Keep the budgets tight when driving
    /// the firewall from a fuzzer.
    pub vm: VmConfig,
    /// Upper bound on retraction rounds (each round retracts at least one
    /// decision, so this also bounds pipeline re-runs). `0` disables
    /// repair entirely: the oracle still runs, but divergences surface in
    /// [`Guarded::divergences`] instead of being bisected away — the
    /// degradation ladder uses this to descend a tier instead.
    pub max_retractions: usize,
    /// Test-only fault injection; `None` in production.
    pub fault: Option<Fault>,
    /// Sanitizer level for the *inlined* oracle run. The baseline run is
    /// never checked (its heap has no inline regions to validate). Any
    /// sanitizer finding is an oracle rejection ([`Divergence::Sanitizer`])
    /// and is bisected/retracted like an output mismatch, so bugs that
    /// corrupt inline state without changing printed output cannot escape.
    pub checked: CheckLevel,
}

impl Default for FirewallConfig {
    fn default() -> Self {
        Self {
            vm: VmConfig::default(),
            max_retractions: 32,
            fault: None,
            checked: CheckLevel::Full,
        }
    }
}

/// One observable disagreement between the baseline and inlined builds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Divergence {
    /// Printed output differs.
    Output {
        /// What the baseline printed.
        baseline: String,
        /// What the inlined build printed.
        optimized: String,
    },
    /// Termination status differs (ok vs. error, or different errors).
    Status {
        /// Baseline status description.
        baseline: String,
        /// Inlined-build status description.
        optimized: String,
    },
    /// The inlined build allocated *more* objects in total than the
    /// baseline — inlining and scalar replacement only ever merge or
    /// remove allocations, so growth is layout confusion, not
    /// optimization. (The check is deliberately total, not per-class:
    /// inlining legally *shifts* allocations between classes — an inlined
    /// child whose interior escapes can materialize a container the
    /// baseline scalar-replaced.)
    Census {
        /// Always `"<total>"` — kept as a field for schema stability.
        class: String,
        /// Baseline total allocation count.
        baseline: u64,
        /// Inlined-build total allocation count.
        optimized: u64,
    },
    /// The checked VM reported sanitizer findings in the inlined run —
    /// an inline-object invariant was violated even if the printed output
    /// happened to match.
    Sanitizer {
        /// Total findings (including those past the report cap).
        count: u64,
        /// Rendered first finding, for diagnostics.
        first: String,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Output {
                baseline,
                optimized,
            } => write!(
                f,
                "output mismatch: baseline {:?} vs inlined {:?}",
                truncated(baseline),
                truncated(optimized)
            ),
            Divergence::Status {
                baseline,
                optimized,
            } => write!(
                f,
                "status mismatch: baseline {baseline} vs inlined {optimized}"
            ),
            Divergence::Census {
                class,
                baseline,
                optimized,
            } => write!(
                f,
                "allocation census mismatch for {class}: baseline {baseline} vs inlined {optimized}"
            ),
            Divergence::Sanitizer { count, first } => {
                write!(f, "sanitizer reported {count} finding(s): {first}")
            }
        }
    }
}

fn truncated(s: &str) -> String {
    const LIMIT: usize = 120;
    if s.len() <= LIMIT {
        s.to_owned()
    } else {
        let cut = (0..=LIMIT)
            .rev()
            .find(|&i| s.is_char_boundary(i))
            .unwrap_or(0);
        format!("{}…", &s[..cut])
    }
}

/// The firewall's verdict on one program.
#[derive(Clone, Debug)]
pub struct Guarded {
    /// The (possibly degraded) optimized build. When every decision had to
    /// be retracted this is effectively the baseline transformation.
    pub optimized: Optimized,
    /// The baseline build the oracle compared against.
    pub baseline_program: Program,
    /// The baseline run the oracle compared against.
    pub baseline_run: Result<RunResult, VmError>,
    /// Decision keys retracted, in retraction order. Empty on a healthy
    /// compile.
    pub retracted: Vec<String>,
    /// Divergences still observable in the returned program. Non-empty
    /// only when retraction could not repair the disagreement (a bug
    /// outside the decision set, e.g. in devirtualization) — the caller
    /// must fall back to the baseline program.
    pub divergences: Vec<Divergence>,
    /// What the oracle saw on the *first* probe, before any retraction —
    /// how the bug announced itself (a verification failure is synthesized
    /// into a status divergence). Empty on a healthy compile. The chaos
    /// driver classifies detections from this: the repaired program's
    /// [`Guarded::divergences`] are empty precisely when retraction
    /// succeeded.
    pub initial_divergences: Vec<Divergence>,
}

impl Guarded {
    /// `true` when the returned optimized program is observably equivalent
    /// to the baseline.
    pub fn is_equivalent(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Compares two runs and lists every observable divergence.
///
/// Runs that end in a resource limit (instruction budget, stack depth,
/// heap words) are indeterminate: a legal transformation shifts resource
/// use, so hitting a budget on either side proves nothing and yields no
/// divergence.
pub fn compare_runs(
    base: &Result<RunResult, VmError>,
    opt: &Result<RunResult, VmError>,
) -> Vec<Divergence> {
    if matches!(base, Err(e) if e.is_resource_limit())
        || matches!(opt, Err(e) if e.is_resource_limit())
    {
        return Vec::new();
    }
    match (base, opt) {
        (Ok(b), Ok(o)) => {
            let mut out = Vec::new();
            if let Some(san) = &o.sanitizer {
                if !san.is_clean() {
                    out.push(Divergence::Sanitizer {
                        count: san.total_findings,
                        first: san
                            .findings
                            .first()
                            .map(|f| f.to_string())
                            .unwrap_or_default(),
                    });
                }
            }
            if b.output != o.output {
                out.push(Divergence::Output {
                    baseline: b.output.clone(),
                    optimized: o.output.clone(),
                });
            }
            out.extend(compare_census(b, o));
            out
        }
        (Err(b), Err(o)) => {
            if b == o {
                Vec::new()
            } else {
                vec![Divergence::Status {
                    baseline: format!("error: {b}"),
                    optimized: format!("error: {o}"),
                }]
            }
        }
        (Ok(_), Err(o)) => vec![Divergence::Status {
            baseline: "ok".to_owned(),
            optimized: format!("error: {o}"),
        }],
        (Err(b), Ok(_)) => vec![Divergence::Status {
            baseline: format!("error: {b}"),
            optimized: "ok".to_owned(),
        }],
    }
}

/// Layout-independent census check: the inlined build may never allocate
/// *more* objects in total than the baseline. Inline allocation and
/// scalar replacement merge or remove allocations; nothing adds them.
/// The comparison is total rather than per-class because inlining shifts
/// allocations between classes legally (see [`Divergence::Census`]).
fn compare_census(base: &RunResult, opt: &RunResult) -> Vec<Divergence> {
    let total = |r: &RunResult| r.allocation_census.iter().map(|(_, n)| *n).sum::<u64>();
    let (b, o) = (total(base), total(opt));
    if o > b {
        vec![Divergence::Census {
            class: "<total>".to_owned(),
            baseline: b,
            optimized: o,
        }]
    } else {
        Vec::new()
    }
}

/// Builds the inlined program under a denylist and applies the configured
/// fault, if any. Rewrite-pass faults ([`Fault::SkipUseRedirect`],
/// [`Fault::DropAssignCopy`]) are threaded into the pipeline itself; the
/// rest corrupt the built program post-hoc.
fn build(
    program: &Program,
    config: &InlineConfig,
    fw: &FirewallConfig,
    denied: &BTreeSet<String>,
    budget: &Budget,
) -> Result<Optimized, PipelineError> {
    let mut cfg = *config;
    cfg.fault = fw.fault.filter(|f| f.is_pipeline_fault());
    let mut opt = try_optimize_budgeted(program, &cfg, denied, budget)?;
    match fw.fault {
        Some(Fault::CompactFirstLayoutSlots) => {
            for layout in opt.program.layouts.iter_mut() {
                let max = layout.slots.iter().copied().max().unwrap_or(0);
                let compact: Vec<usize> = (0..layout.slots.len())
                    .map(|i| layout.slots.first().copied().unwrap_or(0) + i)
                    .collect();
                // Only corrupt a layout where the compacted form is (a) different
                // — i.e. the true layout is non-contiguous — and (b) still in
                // bounds for the container (`max` is a known-valid slot).
                if layout.array_kind.is_none()
                    && layout.slots.len() >= 2
                    && compact != layout.slots
                    && *compact.last().expect("len >= 2") <= max
                {
                    layout.slots = compact;
                    break;
                }
            }
        }
        Some(Fault::OffByOneSlotRewrite) => {
            // Shift one slot of the first applicable object layout down by
            // one. The target slot is chosen so it stays in bounds and does
            // not collide with another slot of the *same* layout, so the
            // program keeps running — reads just resolve one word off.
            'layouts: for layout in opt.program.layouts.iter_mut() {
                if layout.array_kind.is_some() {
                    continue;
                }
                for j in 0..layout.slots.len() {
                    let s = layout.slots[j];
                    if s >= 1 && !layout.slots.contains(&(s - 1)) {
                        layout.slots[j] = s - 1;
                        break 'layouts;
                    }
                }
            }
        }
        _ => {}
    }
    Ok(opt)
}

/// Applied decisions of a build that are still eligible for retraction.
fn candidates(opt: &Optimized, denied: &BTreeSet<String>) -> Vec<String> {
    opt.decisions
        .iter()
        .filter(|d| !denied.contains(*d))
        .cloned()
        .collect()
}

/// Runs the full pipeline behind the differential oracle.
///
/// On a healthy compile this is `baseline` + `optimize` + two VM runs. On
/// a divergence (or an IR verification failure in the transformed build),
/// the firewall bisects the applied decision set to isolate a culprit,
/// permanently denies it, and rebuilds, repeating until the oracle passes
/// or the decision set is exhausted.
///
/// # Errors
///
/// Returns [`PipelineError`] only for failures retraction cannot reach: a
/// diverging analysis, an invalid *baseline* build, or a transformed build
/// that stays invalid with every decision denied.
pub fn optimize_guarded(
    program: &Program,
    config: &InlineConfig,
    fw: &FirewallConfig,
) -> Result<Guarded, PipelineError> {
    let budget = Budget::unlimited();
    optimize_guarded_budgeted(program, config, fw, &budget)
}

/// [`optimize_guarded`] under a resource [`Budget`] shared by every
/// analysis pass, including the rebuilds bisection performs. Analysis
/// exhaustion degrades precision (the result is marked degraded) rather
/// than failing, so the retraction loop keeps making progress on its
/// remaining budget.
///
/// # Errors
///
/// See [`optimize_guarded`].
pub fn optimize_guarded_budgeted(
    program: &Program,
    config: &InlineConfig,
    fw: &FirewallConfig,
    budget: &Budget,
) -> Result<Guarded, PipelineError> {
    let baseline_program = try_baseline_budgeted(program, &config.opt, budget)?;
    let baseline_run = run(&baseline_program, &fw.vm);

    let mut denied: BTreeSet<String> = BTreeSet::new();
    let mut retracted: Vec<String> = Vec::new();

    // The inlined probe runs under the configured sanitizer level; the
    // baseline stays unchecked (nothing inline to validate, and keeping it
    // plain preserves its metrics for callers that report them).
    let checked_vm = VmConfig {
        checked: fw.checked,
        ..fw.vm
    };

    // `healthy` = builds, verifies, and the oracle finds no divergence.
    // Returning the outcome lets the top loop reuse the probe's work.
    let probe = |denied: &BTreeSet<String>| -> Result<(Optimized, Vec<Divergence>), PipelineError> {
        let opt = build(program, config, fw, denied, budget)?;
        let opt_run = run(&opt.program, &checked_vm);
        let divs = compare_runs(&baseline_run, &opt_run);
        Ok((opt, divs))
    };

    // Final (optimized build, remaining divergences) pair for the Guarded
    // result; `None` means the retraction budget ran out mid-bisection.
    let mut settled: Option<(Optimized, Vec<Divergence>)> = None;
    // First-probe divergences, before any retraction (for provenance and
    // the chaos detection table).
    let mut initial: Option<Vec<Divergence>> = None;
    for round in 0..fw.max_retractions {
        // Candidate set for retraction this round: from the build itself
        // when it runs, or from the InvalidIr error when it does not.
        let all: Vec<String> = match probe(&denied) {
            Ok((opt, divs)) => {
                if initial.is_none() {
                    initial = Some(divs.clone());
                }
                if divs.is_empty() {
                    settled = Some((opt, Vec::new()));
                    break;
                }
                let all = candidates(&opt, &denied);
                if all.is_empty() {
                    // Divergence with zero retractable decisions: the bug is
                    // outside the decision set — surface it, don't loop.
                    settled = Some((opt, divs));
                    break;
                }
                all
            }
            Err(PipelineError::InvalidIr {
                stage,
                errors,
                decisions,
            }) => {
                if initial.is_none() {
                    initial = Some(vec![Divergence::Status {
                        baseline: "ok".to_owned(),
                        optimized: format!("invalid IR at {stage}: {}", errors.join("; ")),
                    }]);
                }
                let all: Vec<String> = decisions
                    .iter()
                    .filter(|d| !denied.contains(*d))
                    .cloned()
                    .collect();
                if all.is_empty() {
                    // Even the fully-denied build fails verification —
                    // nothing left to retract; propagate the error.
                    return Err(PipelineError::InvalidIr {
                        stage,
                        errors,
                        decisions,
                    });
                }
                all
            }
            Err(e) => return Err(e),
        };
        let mut healthy = |extra: &[String]| -> bool {
            let mut trial = denied.clone();
            trial.extend(extra.iter().cloned());
            matches!(probe(&trial), Ok((_, divs)) if divs.is_empty())
        };
        // Precondition for the split search: denying every candidate heals.
        let culprits: Vec<String> = if healthy(&all) {
            isolate(&mut healthy, all)
        } else {
            // No subset of decisions explains the divergence (the fault is
            // elsewhere, e.g. devirt). Deny everything; the next round
            // returns the maximally-degraded program with its divergences.
            all
        };
        for c in &culprits {
            trace::event(
                "firewall.retract",
                vec![kv("decision", c.clone()), kv("round", round)],
            );
        }
        denied.extend(culprits.iter().cloned());
        retracted.extend(culprits);
    }
    let (opt, divergences) = match settled {
        Some(pair) => pair,
        // Retraction budget exhausted (or zero); return whatever the final
        // denylist produces, divergences and all.
        None => {
            let (opt, divs) = probe(&denied)?;
            if initial.is_none() {
                initial = Some(divs.clone());
            }
            (opt, divs)
        }
    };
    let mut guarded = Guarded {
        optimized: opt,
        baseline_program,
        baseline_run,
        retracted,
        divergences,
        initial_divergences: initial.unwrap_or_default(),
    };
    guarded.optimized.report.retractions = guarded.retracted.len();
    Ok(guarded)
}

/// Greedy delta-debugging over the decision set: repeatedly halve,
/// recursing into whichever half heals the program alone. When neither
/// half alone heals (multiple interacting culprits), the whole current set
/// is retracted — coarse, but sound and terminating.
fn isolate(healthy: &mut impl FnMut(&[String]) -> bool, mut set: Vec<String>) -> Vec<String> {
    while set.len() > 1 {
        let mid = set.len() / 2;
        let (a, b) = (set[..mid].to_vec(), set[mid..].to_vec());
        if healthy(&a) {
            set = a;
        } else if healthy(&b) {
            set = b;
        } else {
            return set;
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use oi_ir::lower::compile;

    // The global store keeps the Rect on the heap (otherwise scalar
    // replacement erases every allocation and the layout table is never
    // consulted, making layout faults unobservable).
    const RECT: &str = "
        global KEEP;
        class Point { field x; field y;
          method init(a, b) { self.x = a; self.y = b; }
        }
        class Rect { field ll; field ur;
          method init(a, b) { self.ll = new Point(a, a + 1); self.ur = new Point(b, b + 3); }
          method span() { return self.ur.x - self.ll.x + self.ur.y - self.ll.y; }
        }
        fn main() {
          var r = new Rect(1, 10);
          KEEP = r;
          print KEEP.ll.x;
          print KEEP.ll.y;
          print KEEP.span();
        }";

    #[test]
    fn healthy_program_passes_without_retraction() {
        let p = compile(RECT).unwrap();
        let g = optimize_guarded(&p, &InlineConfig::default(), &FirewallConfig::default()).unwrap();
        assert!(g.is_equivalent());
        assert!(g.retracted.is_empty());
        assert_eq!(g.optimized.report.retractions, 0);
        assert_eq!(g.optimized.report.fields_inlined, 2);
    }

    #[test]
    fn injected_layout_bug_is_caught_and_retracted() {
        let p = compile(RECT).unwrap();
        let fw = FirewallConfig {
            fault: Some(Fault::CompactFirstLayoutSlots),
            ..Default::default()
        };
        let g = optimize_guarded(&p, &InlineConfig::default(), &fw).unwrap();
        // The oracle caught the miscompilation and the pipeline degraded
        // instead of aborting: the surviving program is equivalent.
        assert!(g.is_equivalent(), "divergences: {:?}", g.divergences);
        assert!(
            !g.retracted.is_empty(),
            "the culprit decision must be retracted"
        );
        assert_eq!(g.optimized.report.retractions, g.retracted.len());
        // The final build really runs like the baseline.
        let base = g.baseline_run.as_ref().unwrap();
        let opt = run(&g.optimized.program, &VmConfig::default()).unwrap();
        assert_eq!(base.output, opt.output);
        // Rule-5 provenance names the retracted decision.
        assert!(
            g.optimized
                .report
                .provenance
                .iter()
                .any(|s| s.code == "retracted" && s.rule == Some(5)),
            "{:?}",
            g.optimized.report.provenance
        );
    }

    #[test]
    fn retraction_is_minimal_for_a_single_culprit() {
        // Two independently inlinable fields; the fault corrupts exactly
        // one layout, so bisection must retract one decision and keep the
        // other inlined.
        let p = compile(RECT).unwrap();
        let fw = FirewallConfig {
            fault: Some(Fault::CompactFirstLayoutSlots),
            ..Default::default()
        };
        let g = optimize_guarded(&p, &InlineConfig::default(), &fw).unwrap();
        assert_eq!(g.retracted.len(), 1, "retracted: {:?}", g.retracted);
        assert_eq!(
            g.optimized.report.fields_inlined, 1,
            "the innocent field stays inlined: {:?}",
            g.optimized.report.outcomes
        );
    }

    #[test]
    fn starved_budget_still_yields_an_oracle_equivalent_program() {
        // One round and one contour: the analysis freezes almost at once
        // and completes with globally widened contours. The resulting
        // program must still run and match the baseline observably.
        let p = compile(RECT).unwrap();
        let budget = Budget::unlimited().with_rounds(1).with_contours(1);
        let g = optimize_guarded_budgeted(
            &p,
            &InlineConfig::default(),
            &FirewallConfig::default(),
            &budget,
        )
        .unwrap();
        assert!(g.is_equivalent(), "divergences: {:?}", g.divergences);
        assert!(g.retracted.is_empty());
        assert!(g.optimized.report.degraded);
        assert!(
            g.optimized
                .report
                .provenance
                .iter()
                .any(|s| s.code == "budget-exhausted"),
            "{:?}",
            g.optimized.report.provenance
        );
        let opt = run(&g.optimized.program, &VmConfig::default()).unwrap();
        assert_eq!(g.baseline_run.as_ref().unwrap().output, opt.output);
    }

    #[test]
    fn zero_retraction_budget_surfaces_divergences() {
        let p = compile(RECT).unwrap();
        let fw = FirewallConfig {
            fault: Some(Fault::CompactFirstLayoutSlots),
            max_retractions: 0,
            ..Default::default()
        };
        let g = optimize_guarded(&p, &InlineConfig::default(), &fw).unwrap();
        assert!(
            !g.is_equivalent(),
            "repair is disabled; the fault must show"
        );
        assert!(g.retracted.is_empty());
    }

    #[test]
    fn oracle_accepts_matching_runtime_errors() {
        // Both builds fail the same way at runtime; that is equivalence.
        let p = compile("fn main() { var x = nil; print x.f; }").unwrap();
        let g = optimize_guarded(&p, &InlineConfig::default(), &FirewallConfig::default()).unwrap();
        assert!(g.is_equivalent());
        assert!(g.baseline_run.is_err());
    }

    #[test]
    fn census_regression_is_a_divergence() {
        let mk = |census: Vec<(&str, u64)>| RunResult {
            output: String::new(),
            metrics: Default::default(),
            allocation_census: census.into_iter().map(|(c, n)| (c.to_owned(), n)).collect(),
            heap_census: Default::default(),
            profile: None,
            sanitizer: None,
        };
        let base = Ok(mk(vec![("Point", 2), ("<array>", 1)]));
        // Fewer or shifted allocations: not a divergence (inlining merges
        // allocations and can move them between classes).
        let opt = Ok(mk(vec![("Rect", 1), ("<array-inline>", 1)]));
        assert_eq!(compare_runs(&base, &opt), vec![]);
        // More allocations in total than the baseline: layout confusion.
        let opt = Ok(mk(vec![("Point", 4)]));
        let divs = compare_runs(&base, &opt);
        assert!(
            matches!(&divs[..], [Divergence::Census { class, baseline: 3, optimized: 4 }] if class == "<total>"),
            "{divs:?}"
        );
    }

    #[test]
    fn resource_limits_are_indeterminate() {
        let base = Err(VmError::InstructionLimit);
        let opt = Ok(RunResult {
            output: "1\n".into(),
            metrics: Default::default(),
            allocation_census: vec![],
            heap_census: Default::default(),
            profile: None,
            sanitizer: None,
        });
        assert_eq!(compare_runs(&base, &opt), vec![]);
    }

    // A Rect whose children arrive as constructor *arguments*: the stores
    // take the §5.4 pass-by-value copy path (no in-place construction),
    // which is where `Fault::DropAssignCopy` bites. Every child field is
    // read back so a dropped copy is observable.
    const COPY: &str = "
        global KEEP;
        class Point { field x; field y;
          method init(a, b) { self.x = a; self.y = b; }
        }
        class Rect { field ll; field ur;
          method init(a, b) { self.ll = a; self.ur = b; }
        }
        fn main() {
          var r = new Rect(new Point(1, 2), new Point(3, 4));
          KEEP = r;
          print KEEP.ll.x;
          print KEEP.ll.y;
          print KEEP.ur.x;
          print KEEP.ur.y;
        }";

    /// Injects `fault`, asserts the combined sanitizer+oracle net catches
    /// it on the first probe, that retraction repairs the program, and
    /// that the repaired build runs baseline-equal. Returns the verdict
    /// for fault-specific assertions.
    fn catch_and_repair(src: &str, fault: Fault) -> Guarded {
        let p = compile(src).unwrap();
        let fw = FirewallConfig {
            fault: Some(fault),
            ..Default::default()
        };
        let g = optimize_guarded(&p, &InlineConfig::default(), &fw).unwrap();
        assert!(
            !g.initial_divergences.is_empty(),
            "{fault:?} escaped the oracle entirely"
        );
        assert!(
            g.is_equivalent(),
            "{fault:?} not repaired: {:?}",
            g.divergences
        );
        assert!(!g.retracted.is_empty(), "{fault:?}: no culprit retracted");
        let base = g.baseline_run.as_ref().unwrap();
        let opt = run(&g.optimized.program, &VmConfig::default()).unwrap();
        assert_eq!(
            base.output, opt.output,
            "{fault:?}: repair not baseline-equal"
        );
        g
    }

    #[test]
    fn skip_use_redirect_fault_is_caught_and_repaired() {
        // The stale load names a field restructuring removed, so the
        // faulted build dies at runtime: a status divergence.
        let g = catch_and_repair(RECT, Fault::SkipUseRedirect);
        assert!(
            g.initial_divergences
                .iter()
                .any(|d| matches!(d, Divergence::Status { .. })),
            "{:?}",
            g.initial_divergences
        );
    }

    #[test]
    fn off_by_one_slot_fault_is_caught_by_the_sanitizer() {
        // The shifted slot stays inside the container, so the canary
        // check — not a crash — is what notices the wrong offset.
        let g = catch_and_repair(RECT, Fault::OffByOneSlotRewrite);
        assert!(
            g.initial_divergences
                .iter()
                .any(|d| matches!(d, Divergence::Sanitizer { .. })),
            "expected a sanitizer finding, got {:?}",
            g.initial_divergences
        );
    }

    #[test]
    fn drop_assign_copy_fault_is_caught_by_poison_tracking() {
        // The uncopied slot reads back as nil, which diverges — but the
        // sanitizer additionally flags the read of a never-initialized
        // inline slot as poison, which would hold even if the output
        // happened to match.
        let g = catch_and_repair(COPY, Fault::DropAssignCopy);
        assert!(
            g.initial_divergences
                .iter()
                .any(|d| matches!(d, Divergence::Sanitizer { .. })),
            "expected a poison finding, got {:?}",
            g.initial_divergences
        );
    }

    // Two classes answering the same selector: the shape where a wrong
    // devirtualization target is expressible (retargeting `A::get` to
    // `B::get` reads a field the receiver's class does not have).
    const SIBLINGS: &str = "
        global KEEP;
        class A { field v; method init(a) { self.v = a; } method get() { return self.v; } }
        class B { field w; method init(a) { self.w = a + 100; } method get() { return self.w; } }
        class Box { field a; field b;
          method init(x, y) { self.a = x; self.b = y; }
        }
        fn main() {
          var box = new Box(new A(1), new B(2));
          KEEP = box;
          print KEEP.a.get();
          print KEEP.b.get();
        }";

    #[test]
    fn wrong_devirt_target_fault_is_caught_and_repaired() {
        catch_and_repair(SIBLINGS, Fault::WrongDevirtTarget);
    }

    #[test]
    fn checked_probe_finds_no_fault_in_healthy_compiles() {
        // The default firewall now probes under Full checking; a healthy
        // compile of both fixtures must stay finding-free.
        for src in [RECT, COPY] {
            let p = compile(src).unwrap();
            let g =
                optimize_guarded(&p, &InlineConfig::default(), &FirewallConfig::default()).unwrap();
            assert!(g.is_equivalent(), "{:?}", g.divergences);
            assert!(
                g.initial_divergences.is_empty(),
                "{:?}",
                g.initial_divergences
            );
            assert!(g.retracted.is_empty());
        }
    }

    #[test]
    fn resource_limits_in_checked_mode_stay_indeterminate() {
        // Starve the oracle runs of instructions under Full checking: both
        // builds hit the limit, the oracle calls it indeterminate, and no
        // spurious sanitizer finding surfaces as a divergence.
        let p = compile(RECT).unwrap();
        let fw = FirewallConfig {
            vm: VmConfig {
                max_instructions: 10,
                ..VmConfig::default()
            },
            ..Default::default()
        };
        let g = optimize_guarded(&p, &InlineConfig::default(), &fw).unwrap();
        assert!(matches!(g.baseline_run, Err(VmError::InstructionLimit)));
        assert!(g.is_equivalent(), "{:?}", g.divergences);
        assert!(g.initial_divergences.is_empty());
        assert!(g.retracted.is_empty());
    }

    #[test]
    fn depth_and_heap_limits_in_checked_mode_stay_indeterminate() {
        // Same interplay through the two other resource axes: a recursion
        // that overflows the depth budget and an allocation loop that
        // overflows the heap budget, each compared under Full checking.
        let deep = "fn f(n) { return f(n + 1); } fn main() { print f(0); }";
        let hungry = "
            global KEEP;
            class P { field x; method init(a) { self.x = a; } }
            fn main() {
              var i = 0;
              while (i < 100000) { KEEP = new P(i); i = i + 1; }
              print KEEP.x;
            }";
        for (src, cfg) in [
            (
                deep,
                VmConfig {
                    max_depth: 16,
                    ..VmConfig::default()
                },
            ),
            (
                hungry,
                VmConfig {
                    max_heap_words: 64,
                    ..VmConfig::default()
                },
            ),
        ] {
            let p = compile(src).unwrap();
            let fw = FirewallConfig {
                vm: cfg,
                ..Default::default()
            };
            let g = optimize_guarded(&p, &InlineConfig::default(), &fw).unwrap();
            assert!(
                g.baseline_run
                    .as_ref()
                    .is_err_and(|e| e.is_resource_limit()),
                "{:?}",
                g.baseline_run
            );
            assert!(g.is_equivalent(), "{:?}", g.divergences);
            assert!(g.initial_divergences.is_empty());
        }
    }
}
