//! Devirtualization: `Send` → `CallStatic` where the analysis proves a
//! unique target.
//!
//! Both the baseline ("Concert without inlining") and the object-inlined
//! configuration run this pass, so the performance delta in Figure 17 comes
//! from inline allocation itself, not from dispatch removal.

use oi_analysis::AnalysisResult;
use oi_ir::{Instr, Program};

/// Rewrites monomorphic sends into static calls. Returns the number of
/// sends devirtualized.
pub fn devirtualize(program: &mut Program, result: &AnalysisResult) -> usize {
    let mut count = 0;
    for mid in program.methods.ids().collect::<Vec<_>>() {
        let blocks: Vec<_> = program.methods[mid].blocks.ids().collect();
        for bb in blocks {
            for idx in 0..program.methods[mid].blocks[bb].instrs.len() {
                let instr = &program.methods[mid].blocks[bb].instrs[idx];
                let Instr::Send {
                    dst, recv, args, ..
                } = instr
                else {
                    continue;
                };
                let (dst, recv, args) = (*dst, *recv, args.clone());
                let Some(target) = result.devirt_target(mid, bb, idx) else {
                    continue;
                };
                if program.methods[target].param_count as usize != args.len() {
                    continue;
                }
                program.methods[mid].blocks[bb].instrs[idx] = Instr::CallStatic {
                    dst,
                    method: target,
                    recv,
                    args,
                };
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use oi_analysis::{analyze, AnalysisConfig};
    use oi_ir::lower::compile;

    #[test]
    fn monomorphic_sends_become_static() {
        let mut p = compile(
            "class A { method m() { return 41; } }
             fn main() { var a = new A(); print a.m() + 1; }",
        )
        .unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        let n = devirtualize(&mut p, &r);
        assert_eq!(n, 1);
        oi_ir::verify::verify(&p).unwrap();
        let sends = p.methods[p.entry]
            .instrs()
            .filter(|(_, _, i)| matches!(i, Instr::Send { .. }))
            .count();
        assert_eq!(sends, 0);
        // Behavior unchanged.
        let out = oi_vm::run(&p, &oi_vm::VmConfig::default()).unwrap();
        assert_eq!(out.output, "42\n");
    }

    #[test]
    fn polymorphic_sends_survive() {
        let mut p = compile(
            "class A { method m() { return 1; } }
             class B : A { method m() { return 2; } }
             fn pick(c) { return c.m(); }
             fn main() { print pick(new A()); print pick(new B()); }",
        )
        .unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        devirtualize(&mut p, &r);
        let pick = p.method_by_name("$Main", "pick").unwrap();
        let sends = p.methods[pick]
            .instrs()
            .filter(|(_, _, i)| matches!(i, Instr::Send { .. }))
            .count();
        assert_eq!(sends, 1, "polymorphic call must stay dynamic");
        let out = oi_vm::run(&p, &oi_vm::VmConfig::default()).unwrap();
        assert_eq!(out.output, "1\n2\n");
    }
}
