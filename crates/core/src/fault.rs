//! The systematic fault-injection matrix.
//!
//! The firewall exists to catch transformation bugs, but a healthy tree
//! has none to catch — so tests and the `oic chaos` driver inject one
//! here. Each variant models a representative bug in one pass of Dolby's
//! §5 transformation pipeline (restructuring, use redirection, assignment
//! specialization, devirtualization); together they cover every pass the
//! chaos detection table exercises. A fault is applied to every rebuilt
//! candidate program (deterministically), exactly as a real transformation
//! bug would be — so bisection and retraction see the same failure shape a
//! genuine miscompilation would present.

/// A deliberate miscompilation seam for testing the oracle and sanitizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// §5.2 restructuring: recompute the first applicable object layout's
    /// slots as if the child's fields were spliced contiguously from the
    /// replacement slot — the classic bug of using the child's local field
    /// offsets instead of the container's splice positions. When the true
    /// layout is non-contiguous (a sibling's storage sits between the
    /// spliced fields) this makes two children share a container slot,
    /// which no per-layout consistency check can see but the oracle can.
    CompactFirstLayoutSlots,
    /// §5.3 use redirection: leave the first redirectable load
    /// un-redirected, as if use specialization missed one access. The
    /// stale `GetField` names a field restructuring removed, so the
    /// faulted build fails at runtime — a status divergence for the
    /// oracle.
    SkipUseRedirect,
    /// §5.3 rewrite: shift one slot of the first applicable inline layout
    /// down by one — a wrong inline-offset computation. The shifted slot
    /// stays inside the container so nothing crashes; the checked VM sees
    /// the off-by-one against the restructured field names (the canary
    /// check), and reads through the wrong slot diverge observably.
    OffByOneSlotRewrite,
    /// §5.4 assignment specialization: omit the final field copy of the
    /// first pass-by-value store expansion. The uncopied inline slot is
    /// never initialized — exactly what the sanitizer's poison tracking
    /// exists to catch, and invisible to layout consistency checks.
    DropAssignCopy,
    /// Devirtualization: retarget the first static call to a
    /// same-selector, same-arity method of a different class. Applied only
    /// when inlining decisions exist, modeling a devirt bug triggered by
    /// inline-exposed monomorphism (so retraction heals it, as it would a
    /// real one).
    WrongDevirtTarget,
}

impl Fault {
    /// Every fault class, in pipeline order — the chaos driver's matrix.
    pub const ALL: [Fault; 5] = [
        Fault::CompactFirstLayoutSlots,
        Fault::SkipUseRedirect,
        Fault::OffByOneSlotRewrite,
        Fault::DropAssignCopy,
        Fault::WrongDevirtTarget,
    ];

    /// Stable kebab-case name: the CLI argument and report key.
    pub fn name(self) -> &'static str {
        match self {
            Fault::CompactFirstLayoutSlots => "compact-first-layout-slots",
            Fault::SkipUseRedirect => "skip-use-redirect",
            Fault::OffByOneSlotRewrite => "off-by-one-slot-rewrite",
            Fault::DropAssignCopy => "drop-assign-copy",
            Fault::WrongDevirtTarget => "wrong-devirt-target",
        }
    }

    /// Parses a [`Fault::name`] back into the variant.
    pub fn parse(s: &str) -> Option<Fault> {
        Fault::ALL.iter().copied().find(|f| f.name() == s)
    }

    /// `true` for faults applied *inside* the pipeline's transformation
    /// passes (threaded through
    /// [`crate::pipeline::InlineConfig::fault`]) rather than post-hoc on
    /// the built program.
    pub(crate) fn is_pipeline_fault(self) -> bool {
        matches!(
            self,
            Fault::SkipUseRedirect | Fault::DropAssignCopy | Fault::WrongDevirtTarget
        )
    }
}

/// A storage-corruption or crash class injected against the persistent
/// artifact store (`crate::cache::store`).
///
/// Where [`Fault`] models transformation bugs caught by the firewall,
/// these model what a disk, filesystem, or interrupted process can do to
/// the on-disk artifact tier. The chaos driver injects each class into a
/// freshly written store directory and requires recovery to detect it,
/// quarantine the damage, and reach a serving state without ever serving
/// a corrupt artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// Crash after rename but before the entry's data hit disk: the final
    /// `.art` file exists at its content address but is truncated.
    TornWrite,
    /// Crash mid-append to the manifest journal: the last record is cut
    /// off, leaving a partial frame at the tail.
    TruncatedJournalTail,
    /// Silent single-bit corruption inside an entry's payload (the
    /// serialized program bytes), past the envelope header.
    BitFlipBody,
    /// Silent single-bit corruption inside an entry's envelope header
    /// (magic, version, key, length, or stored checksum).
    BitFlipHeader,
    /// A manifest record referencing an entry file that no longer exists
    /// (stale), alongside a duplicate insert for a surviving key.
    StaleManifestRecord,
    /// Device-full while streaming a new entry: the write aborts partway,
    /// leaving an orphan temp file and no manifest record.
    EnospcMidWrite,
    /// An entry written by a different (future) format version: the
    /// envelope is internally consistent but its version tag is skewed.
    VersionSkew,
}

impl IoFault {
    /// Every I/O fault class — the storage half of the chaos matrix.
    pub const ALL: [IoFault; 7] = [
        IoFault::TornWrite,
        IoFault::TruncatedJournalTail,
        IoFault::BitFlipBody,
        IoFault::BitFlipHeader,
        IoFault::StaleManifestRecord,
        IoFault::EnospcMidWrite,
        IoFault::VersionSkew,
    ];

    /// Stable kebab-case name: the CLI argument and report key.
    pub fn name(self) -> &'static str {
        match self {
            IoFault::TornWrite => "torn-write",
            IoFault::TruncatedJournalTail => "truncated-journal-tail",
            IoFault::BitFlipBody => "bit-flip-body",
            IoFault::BitFlipHeader => "bit-flip-header",
            IoFault::StaleManifestRecord => "stale-manifest-record",
            IoFault::EnospcMidWrite => "enospc-mid-write",
            IoFault::VersionSkew => "version-skew",
        }
    }

    /// Parses an [`IoFault::name`] back into the variant.
    pub fn parse(s: &str) -> Option<IoFault> {
        IoFault::ALL.iter().copied().find(|f| f.name() == s)
    }
}

/// Retargets the first static call whose callee has a same-selector,
/// same-arity sibling on another class — the [`Fault::WrongDevirtTarget`]
/// injection, run right after a transformation pass produced static calls
/// (before cleanup can inline them away). The enclosing method is excluded
/// as a target so the injected bug misbehaves instead of merely recursing
/// into a resource limit (which the oracle rightly calls indeterminate).
/// Returns `true` when a call was retargeted.
pub(crate) fn wrong_devirt_target(p: &mut oi_ir::Program) -> bool {
    use oi_ir::Instr;
    let method_ids: Vec<_> = p.methods.ids().collect();
    for mid in method_ids {
        let block_ids: Vec<_> = p.methods[mid].blocks.ids().collect();
        for bb in block_ids {
            for i in 0..p.methods[mid].blocks[bb].instrs.len() {
                let Instr::CallStatic { method, .. } = &p.methods[mid].blocks[bb].instrs[i] else {
                    continue;
                };
                let method = *method;
                let (name, arity, class) = {
                    let m = &p.methods[method];
                    (m.name, m.param_count, m.class)
                };
                let sibling = p.methods.ids().find(|&m2| {
                    m2 != method
                        && m2 != mid
                        && p.methods[m2].name == name
                        && p.methods[m2].param_count == arity
                        && p.methods[m2].class != class
                });
                if let Some(m2) = sibling {
                    if let Instr::CallStatic { method, .. } =
                        &mut p.methods[mid].blocks[bb].instrs[i]
                    {
                        *method = m2;
                    }
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for f in Fault::ALL {
            assert_eq!(Fault::parse(f.name()), Some(f), "{f:?}");
        }
        assert_eq!(Fault::parse("no-such-fault"), None);
    }

    #[test]
    fn io_fault_names_round_trip() {
        for f in IoFault::ALL {
            assert_eq!(IoFault::parse(f.name()), Some(f), "{f:?}");
        }
        assert_eq!(IoFault::parse("no-such-fault"), None);
        let mut names: Vec<_> = IoFault::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), IoFault::ALL.len());
    }

    #[test]
    fn matrix_covers_every_variant_once() {
        let mut names: Vec<_> = Fault::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Fault::ALL.len());
    }
}
