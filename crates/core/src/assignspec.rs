//! Assignment specialization (paper §4.2).
//!
//! Copying an object's contents into its container is only safe when it
//! cannot change observable aliasing. The paper's criterion: the value
//! assigned to the inlined field must be **passable by value** — at every
//! path it is created locally (or itself received by value), it is not
//! stored into any other persistent location, and it is not used after the
//! assignment. This module implements the paper's predicates:
//!
//! - [`AssignSpec::store_ok`] — `PassByValue` at a specific store,
//! - `NoStore` over callees a value is passed to (internal),
//! - `CallByValue` over all call sites of a method parameter (internal,
//!   co-inductive: cycles in the call graph assume safety and are refuted
//!   by any concrete violation).
//!
//! All predicates are parameterized by the candidate field `f`: the store
//! into `f` itself is the assignment being specialized, so it does not
//! count as "storing the value elsewhere" — but no use may follow it.

use oi_analysis::AnalysisResult;
use oi_ir::{BlockId, Instr, MethodId, Program, Temp, Terminator};
use oi_support::Symbol;
use std::collections::{HashMap, HashSet};

/// A position within a method body.
pub type Loc = (BlockId, usize);

#[derive(Clone, Copy, PartialEq, Eq)]
enum Tri {
    True,
    False,
    InProgress,
}

/// The assignment-specialization analysis. Memoizes `NoStore` and
/// `CallByValue` queries across candidate checks.
pub struct AssignSpec<'a> {
    program: &'a Program,
    result: &'a AnalysisResult,
    nostore_memo: HashMap<(MethodId, u32, Option<Symbol>), Tri>,
    cbv_memo: HashMap<(MethodId, u32, Symbol), Tri>,
    fresh_memo: HashMap<MethodId, Tri>,
    /// Per-method cache of blocks reachable from each block's successors.
    reach_cache: HashMap<MethodId, Vec<HashSet<BlockId>>>,
}

impl<'a> AssignSpec<'a> {
    /// Creates the analysis over a program and its flow-analysis result.
    pub fn new(program: &'a Program, result: &'a AnalysisResult) -> Self {
        Self {
            program,
            result,
            nostore_memo: HashMap::new(),
            cbv_memo: HashMap::new(),
            fresh_memo: HashMap::new(),
            reach_cache: HashMap::new(),
        }
    }

    /// `PassByValue` for the value `src` stored into candidate field `f` at
    /// `loc` in `method`: may the store be specialized into a copy?
    pub fn store_ok(&mut self, method: MethodId, loc: Loc, src: Temp, f: Symbol) -> bool {
        self.pass_by_value(method, Some(loc), src, f)
    }

    /// The paper's `PassByValue(p, v)`: `v` is only ever consumed at
    /// `consumer` (a store to `f` when `Some`, or the end of the method when
    /// `None`, for call-argument positions where the consumer is the call
    /// itself and has already been accounted for by the caller).
    fn pass_by_value(
        &mut self,
        method: MethodId,
        consumer: Option<Loc>,
        v: Temp,
        f: Symbol,
    ) -> bool {
        let group = self.alias_group(method, v);

        // 1. Every definition of the group is a local creation, an internal
        //    move, or a by-value parameter.
        let body = &self.program.methods[method];
        let param_range = 0..=(body.param_count as usize);
        let mut param_members = Vec::new();
        for &t in &group {
            if param_range.contains(&t.index()) {
                param_members.push(t);
            }
        }
        for (bb, idx, instr) in body.instrs() {
            let Some(dst) = instr.dst() else { continue };
            if !group.contains(&dst) {
                continue;
            }
            match instr {
                Instr::New { .. } => {} // LocalCreation
                Instr::Move { src, .. } if group.contains(src) => {}
                // A constant definition (e.g. the nil arm of a conditional)
                // is harmless: nil has no aliases to change.
                Instr::Const { .. } => {}
                // A call result is "effectively created locally" when every
                // callee returns a freshly created, never-stored object
                // (the paper's CreatedLocally extended through returns).
                Instr::Send { .. } | Instr::CallStatic { .. } => {
                    let targets = self.call_targets(method, bb, idx);
                    if targets.is_empty() || !targets.iter().all(|&t| self.returns_fresh(t)) {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        for p in param_members {
            // `self` (temp 0) is never passed by value.
            if p.index() == 0 {
                return false;
            }
            let param_idx = (p.index() - 1) as u32;
            if !self.call_by_value(method, param_idx, f) {
                return false;
            }
        }

        // 2. Classify every use of the group.
        let uses = self.uses_of_group(method, &group, Some(f));
        for (uloc, kind) in uses {
            if Some(uloc) == consumer {
                // The store being specialized; re-execution of the store for
                // the same definition would create two copies of one object,
                // so the store must be fresh per iteration (defended below).
                continue;
            }
            if let Some(consumer_loc) = consumer {
                let (abb, ai) = consumer_loc;
                let (ubb, ui) = uloc;
                if ubb == abb && ui > ai {
                    return false; // straight-line use after the store
                }
                // Loop-carried paths: harmless only when the use's block
                // freshly redefines the temps before the use.
                if self.is_after(method, consumer_loc, uloc) && !self.shielded(method, &group, uloc)
                {
                    return false; // UsesAfter must be empty
                }
            }
            match kind {
                UseKind::MoveInternal => {}
                UseKind::Read => {}
                UseKind::Mutate => {}
                UseKind::Print => {}
                UseKind::StoreElsewhere
                | UseKind::Identity
                | UseKind::Escape
                | UseKind::ReturnEscape => return false,
                UseKind::CandidateStore => {
                    // A *different* store to the candidate field consuming
                    // the same value: two inline copies of one object.
                    return false;
                }
                UseKind::CallArg {
                    callee_targets,
                    arg_idx,
                } => {
                    for target in callee_targets {
                        if !self.no_store(target, arg_idx, Some(f)) {
                            return false;
                        }
                    }
                }
                UseKind::CallRecv { callee_targets } => {
                    for target in callee_targets {
                        if !self.no_store_self(target) {
                            return false;
                        }
                    }
                }
            }
        }

        // 3. Freshness across loop iterations: if the consuming store sits
        //    in a CFG cycle, the definition must be renewed in the same
        //    block before the store (otherwise iteration 2 would copy an
        //    object that iteration 1 already inlined — aliasing change).
        if let Some((bb, idx)) = consumer {
            if self.block_in_cycle(method, bb) {
                let fresh_in_block = self.program.methods[method].blocks[bb]
                    .instrs
                    .iter()
                    .take(idx)
                    .any(|i| matches!(i, Instr::New { dst, .. } if group.contains(dst)));
                let any_new_def = self.program.methods[method]
                    .instrs()
                    .any(|(_, _, i)| matches!(i, Instr::New { dst, .. } if group.contains(dst)));
                if any_new_def && !fresh_in_block {
                    return false;
                }
            }
        }
        true
    }

    /// The paper's `CallByValue(v)`: parameter `param_idx` of `method` is
    /// passed by value from every call site.
    fn call_by_value(&mut self, method: MethodId, param_idx: u32, f: Symbol) -> bool {
        match self.cbv_memo.get(&(method, param_idx, f)) {
            Some(Tri::True) | Some(Tri::InProgress) => return true, // co-inductive
            Some(Tri::False) => return false,
            None => {}
        }
        self.cbv_memo
            .insert((method, param_idx, f), Tri::InProgress);
        let callers = self.result.callers_of(self.program, method);
        let mut ok = !callers.is_empty();
        if callers.is_empty() {
            // No observed callers: the entry method's params (there are
            // none) or dead code. Safe vacuously.
            ok = true;
        }
        for site in callers {
            let Some(&arg) = site.args.get(param_idx as usize) else {
                ok = false;
                break;
            };
            if !self.pass_by_value(site.method, Some((site.bb, site.idx)), arg, f) {
                ok = false;
                break;
            }
        }
        self.cbv_memo.insert(
            (method, param_idx, f),
            if ok { Tri::True } else { Tri::False },
        );
        ok
    }

    /// The paper's `NoStore(c, v)`: `method` never stores its
    /// `param_idx`-th parameter into persistent state (a store into
    /// candidate field `f` counts as the specialized assignment and instead
    /// requires no uses after it).
    fn no_store(&mut self, method: MethodId, param_idx: u32, f: Option<Symbol>) -> bool {
        match self.nostore_memo.get(&(method, param_idx, f)) {
            Some(Tri::True) | Some(Tri::InProgress) => return true,
            Some(Tri::False) => return false,
            None => {}
        }
        self.nostore_memo
            .insert((method, param_idx, f), Tri::InProgress);

        let param = Temp::new(1 + param_idx as usize);
        let group = self.alias_group(method, param);
        let mut ok = true;

        // Redefinitions other than internal moves spoil tracking.
        for (_, _, instr) in self.program.methods[method].instrs() {
            let Some(dst) = instr.dst() else { continue };
            if group.contains(&dst)
                && !matches!(instr, Instr::Move { src, .. } if group.contains(src))
                && dst != param
            {
                // Another value flows into an alias temp: the group is a
                // may-alias overapproximation, so this is fine for NoStore
                // purposes (extra uses only make us more conservative).
            }
        }

        let mut candidate_store: Option<Loc> = None;
        let uses = self.uses_of_group(method, &group, f);
        for (uloc, kind) in &uses {
            match kind {
                UseKind::MoveInternal | UseKind::Read | UseKind::Mutate | UseKind::Print => {}
                UseKind::StoreElsewhere
                | UseKind::Identity
                | UseKind::Escape
                | UseKind::ReturnEscape => {
                    ok = false;
                    break;
                }
                UseKind::CandidateStore => {
                    if candidate_store.is_some() {
                        ok = false; // stored twice
                        break;
                    }
                    candidate_store = Some(*uloc);
                }
                UseKind::CallArg {
                    callee_targets,
                    arg_idx,
                } => {
                    for &target in callee_targets {
                        if !self.no_store(target, *arg_idx, f) {
                            ok = false;
                            break;
                        }
                    }
                    if !ok {
                        break;
                    }
                }
                UseKind::CallRecv { callee_targets } => {
                    for &target in callee_targets {
                        if !self.no_store_self(target) {
                            ok = false;
                            break;
                        }
                    }
                    if !ok {
                        break;
                    }
                }
            }
        }
        // If the parameter *is* consumed by the candidate store here, no use
        // may follow it (this is the mutator-method case: `self.f = p;`).
        if ok {
            if let Some(store_loc) = candidate_store {
                for (uloc, _) in &uses {
                    if *uloc != store_loc && self.is_after(method, store_loc, *uloc) {
                        ok = false;
                        break;
                    }
                }
                if ok && self.block_in_cycle(method, store_loc.0) {
                    // Parameters are bound once per activation; a looping
                    // store would copy the same object repeatedly.
                    ok = false;
                }
            }
        }

        self.nostore_memo.insert(
            (method, param_idx, f),
            if ok { Tri::True } else { Tri::False },
        );
        ok
    }

    /// `NoStore` for the receiver: `method` never stores `self` into
    /// persistent state (mutating `self`'s own fields is fine) and never
    /// returns or identity-compares it. Co-inductive like the others.
    fn no_store_self(&mut self, method: MethodId) -> bool {
        // Reuse the memo with a parameter index that cannot collide with
        // declared parameters: u32::MAX encodes "self".
        match self.nostore_memo.get(&(method, u32::MAX, None)) {
            Some(Tri::True) | Some(Tri::InProgress) => return true,
            Some(Tri::False) => return false,
            None => {}
        }
        self.nostore_memo
            .insert((method, u32::MAX, None), Tri::InProgress);

        let group = self.alias_group(method, Temp::new(0));
        let mut ok = true;
        for (_, kind) in self.uses_of_group(method, &group, None) {
            match kind {
                UseKind::MoveInternal | UseKind::Read | UseKind::Mutate | UseKind::Print => {}
                UseKind::StoreElsewhere
                | UseKind::Identity
                | UseKind::Escape
                | UseKind::ReturnEscape
                | UseKind::CandidateStore => {
                    ok = false;
                    break;
                }
                UseKind::CallArg {
                    callee_targets,
                    arg_idx,
                } => {
                    for t in callee_targets {
                        if !self.no_store(t, arg_idx, None) {
                            ok = false;
                            break;
                        }
                    }
                    if !ok {
                        break;
                    }
                }
                UseKind::CallRecv { callee_targets } => {
                    for t in callee_targets {
                        if !self.no_store_self(t) {
                            ok = false;
                            break;
                        }
                    }
                    if !ok {
                        break;
                    }
                }
            }
        }
        self.nostore_memo.insert(
            (method, u32::MAX, None),
            if ok { Tri::True } else { Tri::False },
        );
        ok
    }

    /// Returns `true` when every value `method` returns is a locally
    /// created object (or nil) that the method never stores into persistent
    /// state — so the caller may treat the result as created locally.
    /// Co-inductive across the call graph.
    pub fn returns_fresh(&mut self, method: MethodId) -> bool {
        match self.fresh_memo.get(&method) {
            Some(Tri::True) | Some(Tri::InProgress) => return true,
            Some(Tri::False) => return false,
            None => {}
        }
        self.fresh_memo.insert(method, Tri::InProgress);

        let body = &self.program.methods[method];
        // Collect all returned temps and union their alias groups.
        let mut group: HashSet<Temp> = HashSet::new();
        for block in body.blocks.iter() {
            if let Terminator::Return(t) = block.term {
                group.extend(self.alias_group(method, t));
            }
        }
        let mut ok = true;
        // Defs must be local creations, constants, internal moves, or calls
        // that themselves return fresh.
        let defs: Vec<(oi_ir::BlockId, usize, Instr)> = self.program.methods[method]
            .instrs()
            .filter(|(_, _, i)| i.dst().is_some_and(|d| group.contains(&d)))
            .map(|(b, x, i)| (b, x, i.clone()))
            .collect();
        for (bb, idx, instr) in defs {
            match &instr {
                Instr::New { .. } | Instr::Const { .. } => {}
                Instr::Move { src, .. } if group.contains(src) => {}
                Instr::Send { .. } | Instr::CallStatic { .. } => {
                    let targets = self.call_targets(method, bb, idx);
                    if targets.is_empty() {
                        ok = false;
                    }
                    for t in targets {
                        if !self.returns_fresh(t) {
                            ok = false;
                            break;
                        }
                    }
                }
                // Loads and other producers alias the caller's world.
                _ => ok = false,
            }
            if !ok {
                break;
            }
        }
        // Any parameter (or self) in the group aliases the caller.
        if ok {
            let params = 0..=(self.program.methods[method].param_count as usize);
            if group.iter().any(|t| params.contains(&t.index())) {
                ok = false;
            }
        }
        // Uses must not store or identity-compare the value.
        if ok {
            for (_, kind) in self.uses_of_group(method, &group, None) {
                match kind {
                    UseKind::MoveInternal | UseKind::Read | UseKind::Mutate | UseKind::Print => {}
                    // Returning the value is precisely what this predicate
                    // is about; any other escape disqualifies.
                    UseKind::ReturnEscape => {}
                    UseKind::Escape
                    | UseKind::StoreElsewhere
                    | UseKind::Identity
                    | UseKind::CandidateStore => {
                        ok = false;
                        break;
                    }
                    UseKind::CallArg {
                        callee_targets,
                        arg_idx,
                    } => {
                        for t in callee_targets {
                            if !self.no_store(t, arg_idx, None) {
                                ok = false;
                                break;
                            }
                        }
                        if !ok {
                            break;
                        }
                    }
                    UseKind::CallRecv { callee_targets } => {
                        for t in callee_targets {
                            if !self.no_store_self(t) {
                                ok = false;
                                break;
                            }
                        }
                        if !ok {
                            break;
                        }
                    }
                }
            }
        }

        self.fresh_memo
            .insert(method, if ok { Tri::True } else { Tri::False });
        ok
    }

    // -- plumbing ---------------------------------------------------------

    /// Temps connected to `t` through `Move` instructions (both directions —
    /// a sound overapproximation of may-alias for locals).
    fn alias_group(&self, method: MethodId, t: Temp) -> HashSet<Temp> {
        let body = &self.program.methods[method];
        let mut group: HashSet<Temp> = std::iter::once(t).collect();
        loop {
            let mut grew = false;
            for (_, _, instr) in body.instrs() {
                if let Instr::Move { dst, src } = instr {
                    if group.contains(dst) && group.insert(*src) {
                        grew = true;
                    }
                    if group.contains(src) && group.insert(*dst) {
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        group
    }

    /// Classified uses of any temp in `group` within `method`. Stores into
    /// the candidate field `f` are [`UseKind::CandidateStore`]; stores into
    /// any other field are [`UseKind::StoreElsewhere`].
    fn uses_of_group(
        &self,
        method: MethodId,
        group: &HashSet<Temp>,
        f: Option<Symbol>,
    ) -> Vec<(Loc, UseKind)> {
        let body = &self.program.methods[method];
        let mut out = Vec::new();
        for (bb, idx, instr) in body.instrs() {
            let loc = (bb, idx);
            match instr {
                Instr::Move { src, dst } => {
                    if group.contains(src) {
                        let kind = if group.contains(dst) {
                            UseKind::MoveInternal
                        } else {
                            // Copy into an untracked temp: the group closure
                            // includes it, so this cannot happen; defensive.
                            UseKind::Escape
                        };
                        out.push((loc, kind));
                    }
                }
                Instr::GetField { obj, .. } => {
                    if group.contains(obj) {
                        out.push((loc, UseKind::Read));
                    }
                }
                Instr::SetField { obj, field, src } => {
                    if group.contains(src) {
                        let kind = if Some(*field) == f {
                            UseKind::CandidateStore
                        } else {
                            UseKind::StoreElsewhere
                        };
                        out.push((loc, kind));
                    }
                    if group.contains(obj) {
                        out.push((loc, UseKind::Mutate));
                    }
                }
                Instr::ArrayGet { arr, idx: i, .. } => {
                    if group.contains(arr) || group.contains(i) {
                        out.push((loc, UseKind::Read));
                    }
                }
                Instr::ArraySet { arr, idx: i, src } => {
                    if group.contains(src) {
                        // When checking an array-element candidate, the
                        // store into the array is the specialized
                        // assignment; the `$elem` sentinel selects that
                        // mode.
                        let is_elem_candidate = self.program.interner.get("$elem").is_some()
                            && self.program.interner.get("$elem") == f;
                        let kind = if is_elem_candidate {
                            UseKind::CandidateStore
                        } else {
                            UseKind::StoreElsewhere
                        };
                        out.push((loc, kind));
                    }
                    if group.contains(arr) || group.contains(i) {
                        out.push((loc, UseKind::Mutate));
                    }
                }
                Instr::SetGlobal { src, .. } => {
                    if group.contains(src) {
                        out.push((loc, UseKind::StoreElsewhere));
                    }
                }
                Instr::Binary { op, lhs, rhs, .. } => {
                    if group.contains(lhs) || group.contains(rhs) {
                        if matches!(
                            op,
                            oi_ir::BinOp::RefEq | oi_ir::BinOp::Eq | oi_ir::BinOp::Ne
                        ) {
                            out.push((loc, UseKind::Identity));
                        } else {
                            out.push((loc, UseKind::Read));
                        }
                    }
                }
                Instr::Unary { src, .. } => {
                    if group.contains(src) {
                        out.push((loc, UseKind::Read));
                    }
                }
                Instr::Send { recv, args, .. } | Instr::CallStatic { recv, args, .. } => {
                    if group.contains(recv) {
                        // Receiver position: fine as long as no callee
                        // stores `self` into persistent state (constructor
                        // calls after explosion are the common case).
                        let targets = self.call_targets(method, bb, idx);
                        if targets.is_empty() {
                            out.push((loc, UseKind::Escape));
                        } else {
                            out.push((
                                loc,
                                UseKind::CallRecv {
                                    callee_targets: targets,
                                },
                            ));
                        }
                    }
                    for (ai, a) in args.iter().enumerate() {
                        if group.contains(a) {
                            let targets = self.call_targets(method, bb, idx);
                            if targets.is_empty() {
                                out.push((loc, UseKind::Escape));
                            } else {
                                out.push((
                                    loc,
                                    UseKind::CallArg {
                                        callee_targets: targets,
                                        arg_idx: ai as u32,
                                    },
                                ));
                            }
                        }
                    }
                }
                Instr::New { args, .. } => {
                    for (ai, a) in args.iter().enumerate() {
                        if group.contains(a) {
                            let targets = self.call_targets(method, bb, idx);
                            if targets.is_empty() {
                                out.push((loc, UseKind::Escape));
                            } else {
                                out.push((
                                    loc,
                                    UseKind::CallArg {
                                        callee_targets: targets,
                                        arg_idx: ai as u32,
                                    },
                                ));
                            }
                        }
                    }
                }
                Instr::CallBuiltin { args, .. } => {
                    if args.iter().any(|a| group.contains(a)) {
                        out.push((loc, UseKind::Read));
                    }
                }
                Instr::Print { src } => {
                    if group.contains(src) {
                        out.push((loc, UseKind::Print));
                    }
                }
                Instr::NewArray { len, .. } | Instr::NewArrayInline { len, .. } => {
                    if group.contains(len) {
                        out.push((loc, UseKind::Read));
                    }
                }
                Instr::MakeInterior { obj, .. } => {
                    if group.contains(obj) {
                        out.push((loc, UseKind::Read));
                    }
                }
                Instr::MakeInteriorElem { arr, idx: i, .. } => {
                    if group.contains(arr) || group.contains(i) {
                        out.push((loc, UseKind::Read));
                    }
                }
                Instr::Const { .. } | Instr::GetGlobal { .. } => {}
            }
        }
        // Terminator uses.
        for (bb, block) in body.blocks.iter_enumerated() {
            match &block.term {
                Terminator::Return(t) if group.contains(t) => {
                    out.push(((bb, block.instrs.len()), UseKind::ReturnEscape));
                }
                Terminator::Branch { cond, .. } if group.contains(cond) => {
                    out.push(((bb, block.instrs.len()), UseKind::Read));
                }
                _ => {}
            }
        }
        out
    }

    /// Possible callee methods of a call-shaped instruction.
    fn call_targets(&self, method: MethodId, bb: BlockId, idx: usize) -> Vec<MethodId> {
        let instr = &self.program.methods[method].blocks[bb].instrs[idx];
        match instr {
            Instr::CallStatic { method: m, .. } => vec![*m],
            Instr::Send { .. } => self
                .result
                .send_targets(method, bb, idx)
                .into_iter()
                .collect(),
            Instr::New { class, .. } => self
                .program
                .interner
                .get("init")
                .and_then(|s| self.program.lookup_method(*class, s))
                .into_iter()
                .collect(),
            _ => vec![],
        }
    }

    /// A loop-carried "use after the store" is harmless when the used temps
    /// are freshly defined earlier in the use's own block: the back edge
    /// reaches the definitions before the use, so the use never observes
    /// the copied-away object of a previous iteration.
    fn shielded(&mut self, method: MethodId, group: &HashSet<Temp>, uloc: Loc) -> bool {
        let (ubb, ui) = uloc;
        let block = &self.program.methods[method].blocks[ubb];
        // Which group temps does the use read?
        let mut used = Vec::new();
        if ui < block.instrs.len() {
            block.instrs[ui].uses(&mut used);
        } else {
            block.term.uses(&mut used);
        }
        used.retain(|t| group.contains(t));
        if used.is_empty() {
            return false;
        }
        // Linear scan: a temp is "fresh" once (re)defined from a New this
        // block, transitively through moves of fresh temps; any other
        // definition un-freshens it.
        let mut fresh: HashSet<Temp> = HashSet::new();
        for instr in &block.instrs[..ui.min(block.instrs.len())] {
            match instr {
                Instr::New { dst, .. } => {
                    fresh.insert(*dst);
                }
                Instr::Move { dst, src } => {
                    if fresh.contains(src) {
                        fresh.insert(*dst);
                    } else {
                        fresh.remove(dst);
                    }
                }
                other => {
                    if let Some(d) = other.dst() {
                        fresh.remove(&d);
                    }
                }
            }
        }
        used.iter().all(|t| fresh.contains(t))
    }

    /// Whether `after` executes after `anchor` on some path (conservatively
    /// including loop re-entries of the anchor block).
    fn is_after(&mut self, method: MethodId, anchor: Loc, after: Loc) -> bool {
        let (abb, ai) = anchor;
        let (ubb, ui) = after;
        if abb == ubb && ui > ai {
            return true;
        }
        self.reachable_from_exit(method, abb).contains(&ubb)
    }

    fn block_in_cycle(&mut self, method: MethodId, bb: BlockId) -> bool {
        self.reachable_from_exit(method, bb).contains(&bb)
    }

    fn reachable_from_exit(&mut self, method: MethodId, bb: BlockId) -> &HashSet<BlockId> {
        let sets = self.reach_cache.entry(method).or_insert_with(|| {
            let body = &self.program.methods[method];
            body.blocks
                .ids()
                .map(|b| {
                    let mut seen = HashSet::new();
                    let mut stack: Vec<BlockId> = body.blocks[b].term.successors();
                    while let Some(x) = stack.pop() {
                        if !body.blocks.contains_id(x) || !seen.insert(x) {
                            continue;
                        }
                        stack.extend(body.blocks[x].term.successors());
                    }
                    seen
                })
                .collect()
        });
        &sets[bb.index()]
    }
}

/// Classification of a use.
#[derive(Clone, Debug, PartialEq, Eq)]
enum UseKind {
    /// A move between group temps.
    MoveInternal,
    /// A read (field load through it, arithmetic, branch, builtin).
    Read,
    /// A mutation of the object's own state (store *into* it) — benign
    /// before the copy.
    Mutate,
    /// Printed (identity-free formatting).
    Print,
    /// Stored into an array, global, or a non-candidate field.
    StoreElsewhere,
    /// Compared by identity.
    Identity,
    /// Escapes beyond what we track (receiver position, unresolvable call).
    Escape,
    /// Returned to the caller.
    ReturnEscape,
    /// Stored into the candidate field itself.
    CandidateStore,
    /// Passed as an argument to resolvable callees.
    CallArg {
        /// All possible callees.
        callee_targets: Vec<MethodId>,
        /// Which declared argument position.
        arg_idx: u32,
    },
    /// Used as the receiver of resolvable callees.
    CallRecv {
        /// All possible callees.
        callee_targets: Vec<MethodId>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use oi_analysis::{analyze, AnalysisConfig};
    use oi_ir::lower::compile;

    fn setup(src: &str) -> (Program, AnalysisResult) {
        let p = compile(src).unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        (p, r)
    }

    /// Finds the (method, loc, src) of the first store to field `f`.
    fn find_store(p: &Program, f: &str) -> (MethodId, Loc, Temp) {
        let fsym = p.interner.get(f).unwrap();
        for (mid, m) in p.methods.iter_enumerated() {
            for (bb, idx, instr) in m.instrs() {
                if let Instr::SetField { field, src, .. } = instr {
                    if *field == fsym {
                        return (mid, (bb, idx), *src);
                    }
                }
            }
        }
        panic!("no store to {f}");
    }

    #[test]
    fn constructor_store_of_fresh_arg_is_by_value() {
        let (p, r) = setup(
            "class P { field x; method init(a) { self.x = a; } }
             class R { field ll; method init(q) { self.ll = q; } }
             fn main() { var r = new R(new P(1)); print r.ll.x; }",
        );
        let f = p.interner.get("ll").unwrap();
        let (m, loc, src) = find_store(&p, "ll");
        let mut spec = AssignSpec::new(&p, &r);
        assert!(spec.store_ok(m, loc, src, f));
    }

    #[test]
    fn aliased_argument_is_rejected() {
        // The stored value is also kept in a global: aliasing would change.
        let (p, r) = setup(
            "global KEEP;
             class P { field x; method init(a) { self.x = a; } }
             class R { field ll; method init(q) { self.ll = q; } }
             fn main() { var p = new P(1); KEEP = p; var r = new R(p); print r.ll.x; }",
        );
        let f = p.interner.get("ll").unwrap();
        let (m, loc, src) = find_store(&p, "ll");
        let mut spec = AssignSpec::new(&p, &r);
        assert!(!spec.store_ok(m, loc, src, f));
    }

    #[test]
    fn use_after_store_is_rejected() {
        let (p, r) = setup(
            "class P { field x; method init(a) { self.x = a; } }
             class R { field ll; method init(q) { self.ll = q; } }
             fn main() { var p = new P(1); var r = new R(p); p.x = 2; print r.ll.x; }",
        );
        let f = p.interner.get("ll").unwrap();
        let (m, loc, src) = find_store(&p, "ll");
        let mut spec = AssignSpec::new(&p, &r);
        assert!(!spec.store_ok(m, loc, src, f));
    }

    #[test]
    fn value_from_field_load_is_rejected() {
        // Storing a value that came from another object's field: not a
        // local creation, cannot pass by value.
        let (p, r) = setup(
            "class P { field x; method init(a) { self.x = a; } }
             class R { field ll; method init(q) { self.ll = q; } }
             class L { field head; method init(h) { self.head = h; } }
             fn main() {
               var r = new R(new P(1));
               var l = new L(r.ll);
               print 1;
             }",
        );
        let f = p.interner.get("head").unwrap();
        let (m, loc, src) = find_store(&p, "head");
        let mut spec = AssignSpec::new(&p, &r);
        assert!(!spec.store_ok(m, loc, src, f));
    }

    #[test]
    fn identity_use_is_rejected() {
        let (p, r) = setup(
            "class P { field x; method init(a) { self.x = a; } }
             class R { field ll; method init(q) { self.ll = q; } }
             fn main() { var p = new P(1); var r = new R(p); print 1; print p === p; }",
        );
        let f = p.interner.get("ll").unwrap();
        let (m, loc, src) = find_store(&p, "ll");
        let mut spec = AssignSpec::new(&p, &r);
        assert!(
            !spec.store_ok(m, loc, src, f),
            "identity comparison must reject"
        );
    }

    #[test]
    fn fresh_per_iteration_store_in_loop_is_ok() {
        let (p, r) = setup(
            "class P { field x; method init(a) { self.x = a; } }
             class R { field ll; method init(q) { self.ll = q; } }
             fn main() {
               var i = 0;
               while (i < 3) { var r = new R(new P(i)); print r.ll.x; i = i + 1; }
             }",
        );
        let f = p.interner.get("ll").unwrap();
        let (m, loc, src) = find_store(&p, "ll");
        let mut spec = AssignSpec::new(&p, &r);
        assert!(spec.store_ok(m, loc, src, f));
    }

    #[test]
    fn stale_store_in_loop_is_rejected() {
        // One Point object stored into many containers across iterations.
        let (p, r) = setup(
            "class P { field x; method init(a) { self.x = a; } }
             class R { field ll; method init(q) { self.ll = q; } }
             fn consume(r) { return r; }
             fn main() {
               var p = new P(1);
               var i = 0;
               while (i < 3) { consume(new R(p)); i = i + 1; }
             }",
        );
        let f = p.interner.get("ll").unwrap();
        let (m, loc, src) = find_store(&p, "ll");
        let mut spec = AssignSpec::new(&p, &r);
        assert!(!spec.store_ok(m, loc, src, f));
    }
}
