//! The end-to-end optimization pipelines.
//!
//! [`optimize`] is the paper's full system: analyze (with tags), decide,
//! restructure, rewrite, devirtualize, clean up — iterated so that children
//! whose own layout changed in pass *n* can be inlined into their containers
//! in pass *n + 1* (nested inlining, e.g. an array of rectangles whose
//! points were inlined first).
//!
//! [`baseline`] is "Concert without object inlining": the same analysis
//! framework (without tag sensitivity), devirtualization and cleanups, but
//! no inline allocation. Figure 17 normalizes against it.

use crate::decision::{
    array_decision_key, decide_denying, field_decision_key, DecisionConfig, InlinePlan,
};
use crate::report::EffectivenessReport;
use oi_analysis::{try_analyze_budgeted, AnalysisConfig, AnalysisResult};
use oi_ir::opt::{optimize as run_opts, OptConfig};
use oi_ir::{ArrayLayoutKind, Program};
use oi_support::trace::{self, kv};
use oi_support::{Budget, OiError};
use std::collections::BTreeSet;

/// A recoverable pipeline failure: the graceful-degradation path used by
/// the soundness firewall and the fuzz harness instead of panicking.
#[derive(Clone, Debug)]
pub enum PipelineError {
    /// The abstract interpretation did not converge.
    Analysis(OiError),
    /// A transformation stage produced IR that fails verification.
    InvalidIr {
        /// Stage that produced the bad program (`"transform"`,
        /// `"finalize"`, `"baseline"`).
        stage: &'static str,
        /// Rendered verifier diagnostics.
        errors: Vec<String>,
        /// Decision keys applied up to (and including) the failing pass —
        /// the candidate set the firewall bisects over.
        decisions: Vec<String>,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Analysis(e) => write!(f, "{e}"),
            PipelineError::InvalidIr { stage, errors, .. } => {
                write!(f, "{stage} produced invalid IR: {}", errors.join("; "))
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Runs `f` under a timed trace span that records the program's
/// instruction count before and after the stage.
fn staged<T>(name: &str, p: &mut Program, f: impl FnOnce(&mut Program) -> T) -> T {
    let mut span = trace::span(name);
    if trace::is_enabled() {
        span.field("instrs_before", p.total_instrs().into());
    }
    let out = f(p);
    if trace::is_enabled() {
        span.field("instrs_after", p.total_instrs().into());
    }
    out
}

/// Configuration for the full object-inlining pipeline.
#[derive(Clone, Copy, Debug)]
pub struct InlineConfig {
    /// Inline object fields (§5.2–§5.4).
    pub object_fields: bool,
    /// Inline array elements (§5.3).
    pub array_elements: bool,
    /// Layout for inlined arrays; the paper's OOPACK result uses parallel
    /// ("Fortran style") layout.
    pub array_layout: ArrayLayoutKind,
    /// Verify the aliasing-safety of stores (disable only for ablation).
    pub check_assignments: bool,
    /// Maximum transformation passes (nested inlining depth + 1).
    pub max_passes: usize,
    /// Post-pass cleanup configuration.
    pub opt: OptConfig,
    /// Analysis sensitivity knobs.
    pub analysis: AnalysisConfig,
    /// Rewrite-pass fault injection (`None` in production): applied inside
    /// [`crate::rewrite::apply`] so the injected bug lives exactly where a
    /// real use-redirection or assignment-specialization bug would. The
    /// firewall sets this from its own fault knob; see
    /// [`crate::fault::Fault`].
    pub fault: Option<crate::fault::Fault>,
}

impl Default for InlineConfig {
    fn default() -> Self {
        Self {
            object_fields: true,
            array_elements: true,
            array_layout: ArrayLayoutKind::Interleaved,
            check_assignments: true,
            max_passes: 3,
            opt: OptConfig::default(),
            analysis: AnalysisConfig::default(),
            fault: None,
        }
    }
}

/// The result of the object-inlining pipeline.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The transformed, cleaned-up program.
    pub program: Program,
    /// Effectiveness counters (Figure 14).
    pub report: EffectivenessReport,
    /// How many passes performed a transformation.
    pub passes: usize,
    /// Stable keys of every inlining decision that was applied, in
    /// application order — the set the soundness firewall bisects over
    /// when the differential oracle rejects this program.
    pub decisions: Vec<String>,
}

/// Runs the full object-inlining pipeline on a copy of `program`.
///
/// # Panics
///
/// Panics if the transformation produces IR that fails verification — a
/// bug in the transformation, not a property of the input. Callers that
/// must survive such bugs (the soundness firewall, the fuzz harness) use
/// [`try_optimize`] / [`try_optimize_denying`] instead.
pub fn optimize(program: &Program, config: &InlineConfig) -> Optimized {
    match try_optimize(program, config) {
        Ok(o) => o,
        Err(e) => panic!("{e}"),
    }
}

/// Non-panicking [`optimize`].
///
/// # Errors
///
/// Returns [`PipelineError`] when a transformation pass produces IR that
/// fails verification (analysis-resource exhaustion degrades the result
/// instead of failing — see [`try_optimize_budgeted`]).
pub fn try_optimize(program: &Program, config: &InlineConfig) -> Result<Optimized, PipelineError> {
    try_optimize_denying(program, config, &BTreeSet::new())
}

/// [`try_optimize`] with a firewall denylist: decisions named in `denied`
/// (see [`field_decision_key`] / [`array_decision_key`]) are withdrawn
/// from every pass and recorded as rule-5 retractions in the report.
///
/// # Errors
///
/// Returns [`PipelineError`] when the analysis diverges or a
/// transformation pass produces IR that fails verification; the error
/// carries the decision keys applied so far so the caller can bisect.
pub fn try_optimize_denying(
    program: &Program,
    config: &InlineConfig,
    denied: &BTreeSet<String>,
) -> Result<Optimized, PipelineError> {
    let budget = Budget::unlimited();
    try_optimize_budgeted(program, config, denied, &budget)
}

/// [`try_optimize_denying`] under a resource [`Budget`] shared by every
/// analysis pass. Budget exhaustion never fails the pipeline: the analysis
/// freezes and completes with globally widened contours, the result is
/// marked [`EffectivenessReport::degraded`], and a `budget-exhausted`
/// provenance step names the exhausted dimension.
///
/// # Errors
///
/// Returns [`PipelineError`] when a transformation pass produces IR that
/// fails verification (carrying the decision keys applied so far for
/// bisection), or on an internal analysis bug.
pub fn try_optimize_budgeted(
    program: &Program,
    config: &InlineConfig,
    denied: &BTreeSet<String>,
    budget: &Budget,
) -> Result<Optimized, PipelineError> {
    let mut p = program.clone();
    let mut report = EffectivenessReport::default();
    let (ideal, cxx) = EffectivenessReport::count_annotations(&p);
    report.ideal = ideal;
    report.cxx = cxx;

    let decision_config = DecisionConfig {
        object_fields: config.object_fields,
        array_elements: config.array_elements,
        array_layout: config.array_layout,
        check_assignments: config.check_assignments,
    };

    let mut passes = 0;
    let mut inlined_fields: BTreeSet<String> = Default::default();
    let mut decisions: Vec<String> = Vec::new();
    let mut first_pass_total = None;
    let mut devirt_faulted = false;
    for pass in 0..config.max_passes.max(1) {
        let _pass_span = trace::span_with("pipeline.pass", vec![kv("pass", pass)]);
        let result = {
            let _s = trace::span("pipeline.analyze");
            try_analyze_budgeted(&p, &config.analysis, budget).map_err(PipelineError::Analysis)?
        };
        note_degraded(&result, &mut report, pass);
        if first_pass_total.is_none() {
            first_pass_total = Some(crate::decision::object_holding_fields(&p, &result).len());
        }
        let mut plan: InlinePlan = {
            let _s = trace::span("pipeline.decide");
            decide_denying(&p, &result, &decision_config, denied)
        };
        if trace::is_enabled() {
            trace::event(
                "pipeline.plan",
                vec![
                    kv("pass", pass),
                    kv("fields_to_inline", plan.entries.len()),
                    kv("array_sites", plan.array_sites.len()),
                    kv("rejected", plan.rejected.len()),
                ],
            );
        }
        trace::counter("pipeline.fields_planned", plan.entries.len() as i64);
        trace::counter("pipeline.fields_rejected", plan.rejected.len() as i64);
        // Devirtualize with the same analysis (indices are preserved by
        // in-place replacement, so the plan's instruction facts stay valid).
        staged("pipeline.devirt", &mut p, |p| {
            crate::devirt::devirtualize(p, &result)
        });
        let has_new_work = !plan.entries.is_empty()
            || plan.array_sites.values().any(|a| !a.pre_existing)
            || plan.array_sites.values().any(|a| a.pre_existing);
        if !has_new_work
            || (plan.entries.is_empty()
                && plan.array_sites.values().all(|a| a.pre_existing)
                && pass + 1 >= config.max_passes.max(1))
        {
            record_rejections(&p, &plan, &mut report, pass);
            staged("pipeline.cleanup", &mut p, |p| run_opts(p, &config.opt));
            break;
        }
        for e in &plan.entries {
            let key = field_decision_key(&p, e.declaring, e.field);
            if inlined_fields.insert(key.clone()) {
                decisions.push(key);
            }
        }
        for (site, a) in &plan.array_sites {
            if !a.pre_existing {
                decisions.push(array_decision_key(*site));
            }
        }
        report.array_sites_inlined += plan
            .array_sites
            .values()
            .filter(|a| !a.pre_existing)
            .count();
        record_outcomes(&p, &plan, &mut report, pass);
        staged("pipeline.restructure", &mut p, |p| {
            crate::restructure::apply(p, &mut plan)
        });
        staged("pipeline.rewrite", &mut p, |p| {
            crate::rewrite::apply(p, &result, &plan, config.fault)
        });
        // The devirt fault fires here — after the pass produced static
        // calls (devirtualized sends and in-place constructor calls),
        // before cleanup can inline them away — and only on a pass that
        // inlines something, modeling a devirt bug triggered by
        // inline-exposed monomorphism (denying every decision therefore
        // heals it).
        if matches!(config.fault, Some(crate::fault::Fault::WrongDevirtTarget))
            && !devirt_faulted
            && !plan.entries.is_empty()
        {
            devirt_faulted = crate::fault::wrong_devirt_target(&mut p);
        }
        {
            let _s = trace::span("pipeline.verify");
            verified(&p, "transform", &decisions)?;
        }
        staged("pipeline.cleanup", &mut p, |p| run_opts(p, &config.opt));
        passes = pass + 1;
    }
    // A final devirtualization round: inlining exposes monomorphic sends on
    // interior receivers.
    {
        let _s = trace::span("pipeline.finalize");
        let result = {
            let _s = trace::span("pipeline.analyze");
            try_analyze_budgeted(&p, &config.analysis, budget).map_err(PipelineError::Analysis)?
        };
        note_degraded(&result, &mut report, passes);
        staged("pipeline.devirt", &mut p, |p| {
            crate::devirt::devirtualize(p, &result)
        });
        staged("pipeline.cleanup", &mut p, |p| run_opts(p, &config.opt));
        let _v = trace::span("pipeline.verify");
        verified(&p, "finalize", &decisions)?;
    }

    report.total_object_fields = first_pass_total.unwrap_or(0);
    report.fields_inlined = inlined_fields.len();
    report.retractions = report
        .provenance
        .iter()
        .filter(|s| s.code == "retracted")
        .map(|s| s.field.as_str())
        .collect::<BTreeSet<_>>()
        .len();
    Ok(Optimized {
        program: p,
        report,
        passes,
        decisions,
    })
}

/// Marks the report degraded (once) when an analysis pass exhausted its
/// budget, recording the dimension as an explainable provenance step.
fn note_degraded(result: &AnalysisResult, report: &mut EffectivenessReport, pass: usize) {
    if !result.degraded || report.degraded {
        return;
    }
    report.degraded = true;
    let dim = result.exhausted.map_or("rounds", |d| d.name());
    report.provenance.push(crate::report::ProvenanceStep {
        pass,
        field: "<pipeline>".to_owned(),
        inlined: false,
        code: "budget-exhausted".to_owned(),
        rule: None,
        detail: format!("analysis budget exhausted ({dim}); contours globally widened"),
    });
}

/// Checks `p` against the IR verifier, turning failures into a
/// [`PipelineError::InvalidIr`] carrying the decisions applied so far.
fn verified(p: &Program, stage: &'static str, decisions: &[String]) -> Result<(), PipelineError> {
    if let Err(errors) = oi_ir::verify::verify(p) {
        return Err(PipelineError::InvalidIr {
            stage,
            errors: errors.into_iter().map(|e| e.message).collect(),
            decisions: decisions.to_vec(),
        });
    }
    Ok(())
}

/// The comparison configuration: identical analysis framework and cleanups,
/// no object inlining.
///
/// # Panics
///
/// Panics if the pipeline produces IR that fails verification; see
/// [`try_baseline`] for the non-panicking form.
pub fn baseline(program: &Program, opt: &OptConfig) -> Program {
    match try_baseline(program, opt) {
        Ok(p) => p,
        Err(e) => panic!("{e}"),
    }
}

/// Non-panicking [`baseline`].
///
/// # Errors
///
/// Returns [`PipelineError`] when the analysis diverges or the cleaned-up
/// program fails verification.
pub fn try_baseline(program: &Program, opt: &OptConfig) -> Result<Program, PipelineError> {
    let budget = Budget::unlimited();
    try_baseline_budgeted(program, opt, &budget)
}

/// [`try_baseline`] under a resource [`Budget`]; exhaustion degrades the
/// analysis (coarser devirtualization) instead of failing.
///
/// # Errors
///
/// Returns [`PipelineError`] when the cleaned-up program fails
/// verification or on an internal analysis bug.
pub fn try_baseline_budgeted(
    program: &Program,
    opt: &OptConfig,
    budget: &Budget,
) -> Result<Program, PipelineError> {
    let mut p = program.clone();
    for round in 0..2usize {
        let _s = trace::span_with("pipeline.baseline_round", vec![kv("round", round)]);
        let result = {
            let _s = trace::span("pipeline.analyze");
            try_analyze_budgeted(&p, &AnalysisConfig::without_tags(), budget)
                .map_err(PipelineError::Analysis)?
        };
        staged("pipeline.devirt", &mut p, |p| {
            crate::devirt::devirtualize(p, &result)
        });
        staged("pipeline.cleanup", &mut p, |p| run_opts(p, opt));
    }
    verified(&p, "baseline", &[])?;
    Ok(p)
}

fn record_outcomes(p: &Program, plan: &InlinePlan, report: &mut EffectivenessReport, pass: usize) {
    for e in &plan.entries {
        let name = format!(
            "{}.{}",
            p.interner.resolve(p.classes[e.declaring].name),
            p.interner.resolve(e.field)
        );
        report.provenance.push(crate::report::ProvenanceStep {
            pass,
            field: name.clone(),
            inlined: true,
            code: "inlined".to_owned(),
            rule: None,
            detail: format!(
                "child {} inlined into {} container(s)",
                p.interner.resolve(p.classes[e.child].name),
                e.containers.len()
            ),
        });
        report.outcomes.push(crate::report::FieldOutcome {
            name,
            inlined: true,
            reason: String::new(),
            code: String::new(),
            rule: None,
            detail: String::new(),
        });
    }
    record_rejections(p, plan, report, pass);
}

fn record_rejections(
    p: &Program,
    plan: &InlinePlan,
    report: &mut EffectivenessReport,
    pass: usize,
) {
    let _ = p;
    for r in &plan.rejected {
        report.provenance.push(crate::report::ProvenanceStep {
            pass,
            field: r.field.clone(),
            inlined: false,
            code: r.code.code().to_owned(),
            rule: Some(r.code.rule()),
            detail: r.detail.clone(),
        });
        if report.outcomes.iter().any(|o| o.name == r.field) {
            continue;
        }
        report.outcomes.push(crate::report::FieldOutcome {
            name: r.field.clone(),
            inlined: false,
            reason: r.code.summary().to_owned(),
            code: r.code.code().to_owned(),
            rule: Some(r.code.rule()),
            detail: r.detail.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oi_ir::lower::compile;
    use oi_vm::{run, VmConfig};

    const RECT_PROGRAM: &str = "
        class Point { field x; field y;
          method init(a, b) { self.x = a; self.y = b; }
          method area(p) { return abs2(self.x - p.x) * abs2(self.y - p.y); }
        }
        class Rectangle { field lower_left @inline_ideal @inline_cxx; field upper_right @inline_ideal @inline_cxx;
          method init(a, b) { self.lower_left = new Point(a, a); self.upper_right = new Point(b, b); }
          method area() { return self.lower_left.area(self.upper_right); }
        }
        fn abs2(v) { if (v < 0.0) { return 0.0 - v; } return v; }
        fn main() {
          var r = new Rectangle(1.0, 4.0);
          print r.area();
        }";

    #[test]
    fn optimize_preserves_output_and_reduces_memory_traffic() {
        let p = compile(RECT_PROGRAM).unwrap();
        let base = baseline(&p, &OptConfig::default());
        let opt = optimize(&p, &InlineConfig::default());
        let base_run = run(&base, &VmConfig::default()).unwrap();
        let opt_run = run(&opt.program, &VmConfig::default()).unwrap();
        assert_eq!(base_run.output, opt_run.output);
        assert_eq!(opt.report.fields_inlined, 2, "{:?}", opt.report.outcomes);
        assert!(
            opt_run.metrics.allocations < base_run.metrics.allocations,
            "inlining removes the Point allocations: {} vs {}",
            opt_run.metrics.allocations,
            base_run.metrics.allocations
        );
        assert!(opt_run.metrics.cycles < base_run.metrics.cycles);
    }

    #[test]
    fn nested_inlining_happens_across_passes() {
        // The global store keeps the container observable, so the nesting
        // cannot be scalar-replaced away and must inline across passes.
        let p = compile(
            "global KEEP;
             class Point { field x; method init(a) { self.x = a; } }
             class Rect { field ll; method init(a) { self.ll = new Point(a); } }
             class Boxy { field r; method init(a) { self.r = new Rect(a); } }
             fn main() {
               var b = new Boxy(7);
               KEEP = b;
               print b.r.ll.x;
               print KEEP.r.ll.x;
             }",
        )
        .unwrap();
        let opt = optimize(&p, &InlineConfig::default());
        assert!(
            opt.passes >= 2,
            "nested inlining takes two passes, got {}",
            opt.passes
        );
        assert_eq!(opt.report.fields_inlined, 2, "{:?}", opt.report.outcomes);
        let out = run(&opt.program, &VmConfig::default()).unwrap();
        assert_eq!(out.output, "7\n7\n");
    }

    #[test]
    fn baseline_and_optimized_agree_on_cons_lists() {
        let src = "
            class Cons { field head; field tail;
              method init(h, t) { self.head = h; self.tail = t; }
            }
            fn sum(l) { var t = 0; var c = l;
              while (!(c === nil)) { t = t + c.head; c = c.tail; }
              return t; }
            fn main() {
              var l = nil;
              var i = 0;
              while (i < 100) { l = new Cons(i, l); i = i + 1; }
              print sum(l);
            }";
        let p = compile(src).unwrap();
        let base = baseline(&p, &OptConfig::default());
        let opt = optimize(&p, &InlineConfig::default());
        assert_eq!(
            run(&base, &VmConfig::default()).unwrap().output,
            run(&opt.program, &VmConfig::default()).unwrap().output
        );
    }

    #[test]
    fn report_counts_annotations() {
        let p = compile(RECT_PROGRAM).unwrap();
        let opt = optimize(&p, &InlineConfig::default());
        assert_eq!(opt.report.ideal, 2);
        assert_eq!(opt.report.cxx, 2);
        assert!(opt.report.total_object_fields >= 2);
    }

    #[test]
    fn disabling_object_fields_inlines_nothing() {
        let p = compile(RECT_PROGRAM).unwrap();
        let config = InlineConfig {
            object_fields: false,
            array_elements: false,
            ..Default::default()
        };
        let opt = optimize(&p, &config);
        assert_eq!(opt.report.fields_inlined, 0);
        assert_eq!(opt.report.array_sites_inlined, 0);
    }
}
