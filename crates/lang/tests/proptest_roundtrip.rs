//! Property: printing a parsed program and re-parsing it yields the same
//! structure (print∘parse is idempotent up to spans).

use oi_lang::ast::*;
use oi_lang::{parse, printer::print_program};
use oi_support::Span;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Simple, keyword-free identifiers.
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        oi_lang::token::TokenKind::keyword(s).is_none()
    })
}

fn literal_expr() -> impl Strategy<Value = Expr> {
    let sp = Span::dummy();
    prop_oneof![
        any::<i32>().prop_map(move |n| Expr::new(ExprKind::Int(n as i64), sp)),
        // Finite floats only: NaN never round-trips through text.
        (-1.0e6f64..1.0e6).prop_map(move |x| Expr::new(ExprKind::Float(x), sp)),
        any::<bool>().prop_map(move |b| Expr::new(ExprKind::Bool(b), sp)),
        Just(Expr::new(ExprKind::Nil, sp)),
        "[a-zA-Z0-9 _.!?]{0,12}".prop_map(move |s| Expr::new(ExprKind::Str(s), sp)),
        ident().prop_map(move |v| Expr::new(ExprKind::Var(v), sp)),
    ]
}

fn expr(depth: u32) -> BoxedStrategy<Expr> {
    let sp = Span::dummy();
    if depth == 0 {
        return literal_expr().boxed();
    }
    let sub = expr(depth - 1);
    prop_oneof![
        literal_expr(),
        (sub.clone(), ident()).prop_map(move |(o, f)| Expr::new(
            ExprKind::Field { obj: Box::new(o), field: f },
            sp
        )),
        (sub.clone(), sub.clone(), prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Lt),
            Just(BinOp::RefEq),
            Just(BinOp::And),
        ])
        .prop_map(move |(l, r, op)| Expr::new(
            ExprKind::Binary { op, lhs: Box::new(l), rhs: Box::new(r) },
            sp
        )),
        (sub.clone(), proptest::collection::vec(sub.clone(), 0..3), ident()).prop_map(
            move |(r, args, name)| Expr::new(
                ExprKind::Call { recv: Some(Box::new(r)), name, args },
                sp
            )
        ),
        (sub.clone(), sub.clone()).prop_map(move |(a, i)| Expr::new(
            ExprKind::Index { arr: Box::new(a), index: Box::new(i) },
            sp
        )),
        (sub.clone()).prop_map(move |o| Expr::new(
            ExprKind::Unary { op: UnOp::Neg, operand: Box::new(o) },
            sp
        )),
        proptest::collection::vec(sub, 0..3)
            .prop_map(move |elems| Expr::new(ExprKind::ArrayLit(elems), sp)),
    ]
    .boxed()
}

fn stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let sp = Span::dummy();
    let e = expr(2);
    if depth == 0 {
        return prop_oneof![
            (ident(), e.clone()).prop_map(move |(n, v)| Stmt::Var { name: n, init: v, span: sp }),
            e.clone().prop_map(move |v| Stmt::Print { value: v, span: sp }),
            e.clone()
                .prop_map(move |v| Stmt::Return { value: Some(v), span: sp }),
        ]
        .boxed();
    }
    let inner = proptest::collection::vec(stmt(depth - 1), 0..4);
    prop_oneof![
        (ident(), e.clone()).prop_map(move |(n, v)| Stmt::Var { name: n, init: v, span: sp }),
        e.clone().prop_map(move |v| Stmt::Print { value: v, span: sp }),
        (ident(), e.clone()).prop_map(move |(n, v)| Stmt::Assign {
            target: Expr::new(ExprKind::Var(n), sp),
            value: v,
            span: sp
        }),
        (e.clone(), inner.clone(), inner.clone()).prop_map(move |(c, t, f)| Stmt::If {
            cond: c,
            then_block: Block { stmts: t },
            else_block: Some(Block { stmts: f }),
            span: sp
        }),
        (e.clone(), inner).prop_map(move |(c, b)| Stmt::While {
            cond: c,
            body: Block { stmts: b },
            span: sp
        }),
    ]
    .boxed()
}

fn program() -> impl Strategy<Value = Program> {
    let sp = Span::dummy();
    let field = (ident(), proptest::collection::vec(ident(), 0..2)).prop_map(
        move |(name, annotations)| FieldDecl { name, annotations, span: sp },
    );
    let method = (ident(), proptest::collection::vec(ident(), 0..3),
                  proptest::collection::vec(stmt(1), 0..5))
        .prop_map(move |(name, params, stmts)| MethodDecl {
            name,
            params,
            body: Block { stmts },
            span: sp,
        });
    let class = (ident(), proptest::collection::vec(field, 0..4),
                 proptest::collection::vec(method, 0..3))
        .prop_map(move |(name, fields, methods)| ClassDecl {
            name: format!("C{name}"),
            parent: None,
            fields,
            methods,
            span: sp,
        });
    let function = (ident(), proptest::collection::vec(ident(), 0..3),
                    proptest::collection::vec(stmt(2), 0..6))
        .prop_map(move |(name, params, stmts)| FnDecl {
            name,
            params,
            body: Block { stmts },
            span: sp,
        });
    (
        proptest::collection::vec(class, 0..3),
        proptest::collection::vec(function, 1..4),
        proptest::collection::vec(ident(), 0..2),
    )
        .prop_map(move |(classes, functions, globals)| Program {
            classes,
            functions,
            globals: globals
                .into_iter()
                .map(|g| GlobalDecl { name: format!("G{g}"), span: sp })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn print_parse_roundtrip(p in program()) {
        let printed = print_program(&p);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("{}\n--- printed ---\n{printed}", e.render(&printed)));
        let reprinted = print_program(&reparsed);
        prop_assert_eq!(printed, reprinted);
    }

    #[test]
    fn lexer_never_panics(s in "\\PC{0,100}") {
        let _ = oi_lang::lexer::lex(&s);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }
}
