//! Property: printing a parsed program and re-parsing it yields the same
//! structure (print∘parse is idempotent up to spans).
//!
//! Random programs come from the in-repo seeded PRNG, so every failure
//! reproduces from the seed printed in its message.

use oi_lang::ast::*;
use oi_lang::{parse, printer::print_program};
use oi_support::rng::XorShift64;
use oi_support::Span;

/// A random simple, keyword-free identifier.
fn ident(rng: &mut XorShift64) -> String {
    loop {
        let id = rng.ident(7);
        if oi_lang::token::TokenKind::keyword(&id).is_none() {
            return id;
        }
    }
}

fn literal_expr(rng: &mut XorShift64) -> Expr {
    let sp = Span::dummy();
    match rng.below(6) {
        0 => Expr::new(
            ExprKind::Int(rng.range_i64(i32::MIN as i64, i32::MAX as i64)),
            sp,
        ),
        // Finite floats only: NaN never round-trips through text.
        1 => {
            let x = (rng.range_i64(-1_000_000, 1_000_000) as f64) / 16.0;
            Expr::new(ExprKind::Float(x), sp)
        }
        2 => Expr::new(ExprKind::Bool(rng.chance(1, 2)), sp),
        3 => Expr::new(ExprKind::Nil, sp),
        4 => {
            let len = rng.below(13);
            let s: String = (0..len)
                .map(|_| *rng.pick(b"abcXYZ019 _.!?") as char)
                .collect();
            Expr::new(ExprKind::Str(s), sp)
        }
        _ => Expr::new(ExprKind::Var(ident(rng)), sp),
    }
}

fn expr(rng: &mut XorShift64, depth: u32) -> Expr {
    let sp = Span::dummy();
    if depth == 0 || rng.chance(1, 4) {
        return literal_expr(rng);
    }
    match rng.below(6) {
        0 => Expr::new(
            ExprKind::Field {
                obj: Box::new(expr(rng, depth - 1)),
                field: ident(rng),
            },
            sp,
        ),
        1 => {
            let op = *rng.pick(&[
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Lt,
                BinOp::RefEq,
                BinOp::And,
            ]);
            Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(expr(rng, depth - 1)),
                    rhs: Box::new(expr(rng, depth - 1)),
                },
                sp,
            )
        }
        2 => {
            let args = (0..rng.below(3)).map(|_| expr(rng, depth - 1)).collect();
            Expr::new(
                ExprKind::Call {
                    recv: Some(Box::new(expr(rng, depth - 1))),
                    name: ident(rng),
                    args,
                },
                sp,
            )
        }
        3 => Expr::new(
            ExprKind::Index {
                arr: Box::new(expr(rng, depth - 1)),
                index: Box::new(expr(rng, depth - 1)),
            },
            sp,
        ),
        4 => Expr::new(
            ExprKind::Unary {
                op: UnOp::Neg,
                operand: Box::new(expr(rng, depth - 1)),
            },
            sp,
        ),
        _ => {
            let elems = (0..rng.below(3)).map(|_| expr(rng, depth - 1)).collect();
            Expr::new(ExprKind::ArrayLit(elems), sp)
        }
    }
}

fn stmt(rng: &mut XorShift64, depth: u32) -> Stmt {
    let sp = Span::dummy();
    let leaf_arms = 3;
    let arms = if depth == 0 { leaf_arms } else { 5 };
    match rng.below(arms) {
        0 => Stmt::Var {
            name: ident(rng),
            init: expr(rng, 2),
            span: sp,
        },
        1 => Stmt::Print {
            value: expr(rng, 2),
            span: sp,
        },
        2 if depth == 0 => Stmt::Return {
            value: Some(expr(rng, 2)),
            span: sp,
        },
        2 => Stmt::Assign {
            target: Expr::new(ExprKind::Var(ident(rng)), sp),
            value: expr(rng, 2),
            span: sp,
        },
        3 => {
            let then_block = Block {
                stmts: (0..rng.below(4)).map(|_| stmt(rng, depth - 1)).collect(),
            };
            let else_block = Block {
                stmts: (0..rng.below(4)).map(|_| stmt(rng, depth - 1)).collect(),
            };
            Stmt::If {
                cond: expr(rng, 2),
                then_block,
                else_block: Some(else_block),
                span: sp,
            }
        }
        _ => Stmt::While {
            cond: expr(rng, 2),
            body: Block {
                stmts: (0..rng.below(4)).map(|_| stmt(rng, depth - 1)).collect(),
            },
            span: sp,
        },
    }
}

fn program(rng: &mut XorShift64) -> Program {
    let sp = Span::dummy();
    let classes = (0..rng.below(3))
        .map(|_| {
            let fields = (0..rng.below(4))
                .map(|_| FieldDecl {
                    name: ident(rng),
                    annotations: (0..rng.below(2)).map(|_| ident(rng)).collect(),
                    span: sp,
                })
                .collect();
            let methods = (0..rng.below(3))
                .map(|_| MethodDecl {
                    name: ident(rng),
                    params: (0..rng.below(3)).map(|_| ident(rng)).collect(),
                    body: Block {
                        stmts: (0..rng.below(5)).map(|_| stmt(rng, 1)).collect(),
                    },
                    span: sp,
                })
                .collect();
            ClassDecl {
                name: format!("C{}", ident(rng)),
                parent: None,
                fields,
                methods,
                span: sp,
            }
        })
        .collect();
    let functions = (0..1 + rng.below(3))
        .map(|_| FnDecl {
            name: ident(rng),
            params: (0..rng.below(3)).map(|_| ident(rng)).collect(),
            body: Block {
                stmts: (0..rng.below(6)).map(|_| stmt(rng, 2)).collect(),
            },
            span: sp,
        })
        .collect();
    let globals = (0..rng.below(2))
        .map(|_| GlobalDecl {
            name: format!("G{}", ident(rng)),
            span: sp,
        })
        .collect();
    Program {
        classes,
        functions,
        globals,
    }
}

#[test]
fn print_parse_roundtrip() {
    for seed in 0..128u64 {
        let mut rng = XorShift64::new(seed);
        let p = program(&mut rng);
        let printed = print_program(&p);
        let reparsed = parse(&printed).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: {}\n--- printed ---\n{printed}",
                e.render(&printed)
            )
        });
        let reprinted = print_program(&reparsed);
        assert_eq!(printed, reprinted, "seed {seed}");
    }
}

/// A random string over a mix of ASCII, operators, and multi-byte chars —
/// deliberately mostly invalid syntax.
fn random_soup(rng: &mut XorShift64, max_len: usize) -> String {
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| match rng.below(12) {
            0 => '{',
            1 => '}',
            2 => '"',
            3 => '\\',
            4 => '\n',
            5 => '=',
            6 => '.',
            7 => 'é',
            8 => '🦀',
            _ => (b' ' + rng.below(95) as u8) as char,
        })
        .collect()
}

#[test]
fn lexer_never_panics() {
    for seed in 0..256u64 {
        let mut rng = XorShift64::new(seed);
        let s = random_soup(&mut rng, 100);
        let _ = oi_lang::lexer::lex(&s);
    }
}

#[test]
fn parser_never_panics() {
    for seed in 0..256u64 {
        let mut rng = XorShift64::new(seed);
        let s = random_soup(&mut rng, 200);
        let _ = parse(&s);
    }
}
