//! Hand-written lexer for Izzy.
//!
//! Supports `//` line comments and `/* ... */` block comments (non-nesting).

use crate::token::{Token, TokenKind};
use oi_support::{Diagnostic, Span};

/// Splits `source` into tokens, ending with a single [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`Diagnostic`] on malformed input: stray characters, unterminated
/// strings or block comments, or malformed numeric literals.
///
/// # Examples
///
/// ```
/// use oi_lang::lexer::lex;
/// use oi_lang::token::TokenKind;
/// let toks = lex("x = 1;")?;
/// assert_eq!(toks.len(), 5); // x, =, 1, ;, EOF
/// assert_eq!(toks[2].kind, TokenKind::Int(1));
/// # Ok::<(), oi_support::Diagnostic>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let c = self.bytes[self.pos];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.pos += 2;
                    loop {
                        if self.pos + 1 >= self.bytes.len() {
                            return Err(Diagnostic::error(
                                "unterminated block comment",
                                self.span_from(start),
                            ));
                        }
                        if self.bytes[self.pos] == b'*' && self.bytes[self.pos + 1] == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                b'0'..=b'9' => self.number(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                b'"' => self.string(start)?,
                _ => self.punct(start)?,
            }
        }
        let end = self.src.len() as u32;
        self.tokens.push(Token {
            kind: TokenKind::Eof,
            span: Span::new(end, end),
        });
        Ok(self.tokens)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn span_from(&self, start: usize) -> Span {
        Span::new(start as u32, self.pos as u32)
    }

    fn emit(&mut self, kind: TokenKind, start: usize) {
        let span = self.span_from(start);
        self.tokens.push(Token { kind, span });
    }

    fn number(&mut self, start: usize) -> Result<(), Diagnostic> {
        while matches!(self.peek(0), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        // A `.` only starts a fraction if followed by a digit, so `2.abs()`
        // still lexes as int, dot, ident.
        if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(b'0'..=b'9')) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(0), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let mut look = 1;
            if matches!(self.peek(1), Some(b'+' | b'-')) {
                look = 2;
            }
            if matches!(self.peek(look), Some(b'0'..=b'9')) {
                is_float = true;
                self.pos += look;
                while matches!(self.peek(0), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[start..self.pos];
        let kind = if is_float {
            TokenKind::Float(text.parse().map_err(|_| {
                Diagnostic::error(
                    format!("invalid float literal `{text}`"),
                    self.span_from(start),
                )
            })?)
        } else {
            TokenKind::Int(text.parse().map_err(|_| {
                Diagnostic::error(
                    format!("invalid integer literal `{text}`"),
                    self.span_from(start),
                )
            })?)
        };
        self.emit(kind, start);
        Ok(())
    }

    fn ident(&mut self, start: usize) {
        while matches!(
            self.peek(0),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_owned()));
        self.emit(kind, start);
    }

    fn string(&mut self, start: usize) -> Result<(), Diagnostic> {
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.peek(0) {
                None | Some(b'\n') => {
                    return Err(Diagnostic::error(
                        "unterminated string literal",
                        self.span_from(start),
                    ));
                }
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    let esc = self.peek(1).ok_or_else(|| {
                        Diagnostic::error("unterminated string literal", self.span_from(start))
                    })?;
                    value.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'"' => '"',
                        b'\\' => '\\',
                        other => {
                            return Err(Diagnostic::error(
                                format!("unknown escape `\\{}`", other as char),
                                self.span_from(start),
                            ));
                        }
                    });
                    self.pos += 2;
                }
                Some(_) => {
                    // Advance by one full UTF-8 character.
                    let ch = self.src[self.pos..].chars().next().expect("in-bounds char");
                    value.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        self.emit(TokenKind::Str(value), start);
        Ok(())
    }

    fn punct(&mut self, start: usize) -> Result<(), Diagnostic> {
        let c = self.bytes[self.pos];
        let (kind, width) = match (c, self.peek(1), self.peek(2)) {
            (b'=', Some(b'='), Some(b'=')) => (TokenKind::EqEqEq, 3),
            (b'=', Some(b'='), _) => (TokenKind::EqEq, 2),
            (b'=', _, _) => (TokenKind::Eq, 1),
            (b'!', Some(b'='), _) => (TokenKind::NotEq, 2),
            (b'!', _, _) => (TokenKind::Bang, 1),
            (b'<', Some(b'='), _) => (TokenKind::Le, 2),
            (b'<', _, _) => (TokenKind::Lt, 1),
            (b'>', Some(b'='), _) => (TokenKind::Ge, 2),
            (b'>', _, _) => (TokenKind::Gt, 1),
            (b'&', Some(b'&'), _) => (TokenKind::AndAnd, 2),
            (b'|', Some(b'|'), _) => (TokenKind::OrOr, 2),
            (b'(', _, _) => (TokenKind::LParen, 1),
            (b')', _, _) => (TokenKind::RParen, 1),
            (b'{', _, _) => (TokenKind::LBrace, 1),
            (b'}', _, _) => (TokenKind::RBrace, 1),
            (b'[', _, _) => (TokenKind::LBracket, 1),
            (b']', _, _) => (TokenKind::RBracket, 1),
            (b',', _, _) => (TokenKind::Comma, 1),
            (b';', _, _) => (TokenKind::Semi, 1),
            (b':', _, _) => (TokenKind::Colon, 1),
            (b'.', _, _) => (TokenKind::Dot, 1),
            (b'@', _, _) => (TokenKind::At, 1),
            (b'+', _, _) => (TokenKind::Plus, 1),
            (b'-', _, _) => (TokenKind::Minus, 1),
            (b'*', _, _) => (TokenKind::Star, 1),
            (b'/', _, _) => (TokenKind::Slash, 1),
            (b'%', _, _) => (TokenKind::Percent, 1),
            _ => {
                self.pos += 1;
                return Err(Diagnostic::error(
                    format!("unexpected character `{}`", c as char),
                    self.span_from(start),
                ));
            }
        };
        self.pos += width;
        self.emit(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("class Point field x"),
            vec![
                T::Class,
                T::Ident("Point".into()),
                T::Field,
                T::Ident("x".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 3.5 1e3 7.0e-2"),
            vec![
                T::Int(42),
                T::Float(3.5),
                T::Float(1000.0),
                T::Float(0.07),
                T::Eof
            ]
        );
    }

    #[test]
    fn int_dot_method_is_not_float() {
        assert_eq!(
            kinds("2.abs"),
            vec![T::Int(2), T::Dot, T::Ident("abs".into()), T::Eof]
        );
    }

    #[test]
    fn lexes_multichar_operators() {
        assert_eq!(
            kinds("= == === != <= >= && ||"),
            vec![
                T::Eq,
                T::EqEq,
                T::EqEqEq,
                T::NotEq,
                T::Le,
                T::Ge,
                T::AndAnd,
                T::OrOr,
                T::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("1 // comment\n 2 /* block\nstill */ 3"),
            vec![T::Int(1), T::Int(2), T::Int(3), T::Eof]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(kinds(r#""a\nb""#), vec![T::Str("a\nb".into()), T::Eof]);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn rejects_stray_character() {
        let err = lex("a # b").unwrap_err();
        assert!(err.message.contains('#'));
    }

    #[test]
    fn spans_point_at_tokens() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, oi_support::Span::new(0, 2));
        assert_eq!(toks[1].span, oi_support::Span::new(3, 5));
    }
}
