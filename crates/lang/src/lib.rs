#![warn(missing_docs)]
//! Front end for *Izzy*, the uniform-object-model language used by the
//! object-inlining reproduction.
//!
//! Izzy plays the role of ICC++ in the paper: a small object-oriented
//! language in which **every object is accessed through a reference** and all
//! calls are dynamically dispatched, so that inline allocation is purely the
//! compiler's job. A flavor of the paper's running example:
//!
//! ```text
//! class Point {
//!     field x; field y;
//!     method init(x, y) { self.x = x; self.y = y; }
//!     method abs() { return sqrt(self.x * self.x + self.y * self.y); }
//! }
//! class Rectangle {
//!     field lower_left; field upper_right;
//!     method init(ll, ur) { self.lower_left = ll; self.upper_right = ur; }
//!     method area() { return self.lower_left.area(self.upper_right); }
//! }
//! ```
//!
//! The crate exposes a [`lexer`], a recursive-descent [`parser`] producing
//! the [`ast`] types, and field annotations (`@inline_ideal`, `@inline_cxx`)
//! used to record the paper's Figure 14 ground truth in benchmark sources.
//!
//! # Examples
//!
//! ```
//! let source = "fn main() { print 1 + 2; }";
//! let program = oi_lang::parse(source)?;
//! assert_eq!(program.functions.len(), 1);
//! # Ok::<(), oi_support::Diagnostic>(())
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::Program;
pub use parser::parse;
