//! Token definitions for the Izzy lexer.

use oi_support::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier such as `Rectangle` or `lower_left`.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A string literal (without quotes, escapes resolved).
    Str(String),

    // Keywords.
    /// `class`
    Class,
    /// `field`
    Field,
    /// `method`
    Method,
    /// `fn`
    Fn,
    /// `global`
    Global,
    /// `var`
    Var,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `print`
    Print,
    /// `new`
    New,
    /// `self`
    SelfKw,
    /// `true`
    True,
    /// `false`
    False,
    /// `nil`
    Nil,
    /// `array`
    Array,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `@`
    At,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `===` (reference identity)
    EqEqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Maps an identifier to a keyword kind, if it is one.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "class" => TokenKind::Class,
            "field" => TokenKind::Field,
            "method" => TokenKind::Method,
            "fn" => TokenKind::Fn,
            "global" => TokenKind::Global,
            "var" => TokenKind::Var,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "return" => TokenKind::Return,
            "print" => TokenKind::Print,
            "new" => TokenKind::New,
            "self" => TokenKind::SelfKw,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "nil" => TokenKind::Nil,
            "array" => TokenKind::Array,
            _ => return None,
        })
    }

    /// Short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Float(x) => format!("float `{x}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::Eof => "end of input".to_owned(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    fn lexeme(&self) -> &'static str {
        match self {
            TokenKind::Class => "class",
            TokenKind::Field => "field",
            TokenKind::Method => "method",
            TokenKind::Fn => "fn",
            TokenKind::Global => "global",
            TokenKind::Var => "var",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::Return => "return",
            TokenKind::Print => "print",
            TokenKind::New => "new",
            TokenKind::SelfKw => "self",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::Nil => "nil",
            TokenKind::Array => "array",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Colon => ":",
            TokenKind::Dot => ".",
            TokenKind::At => "@",
            TokenKind::Eq => "=",
            TokenKind::EqEq => "==",
            TokenKind::EqEqEq => "===",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Bang => "!",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Ident(_)
            | TokenKind::Int(_)
            | TokenKind::Float(_)
            | TokenKind::Str(_)
            | TokenKind::Eof => {
                unreachable!("lexeme called on variable token")
            }
        }
    }
}

/// A token with its source location.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it occurred.
    pub span: Span,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("class"), Some(TokenKind::Class));
        assert_eq!(TokenKind::keyword("self"), Some(TokenKind::SelfKw));
        assert_eq!(TokenKind::keyword("Rectangle"), None);
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::EqEqEq.describe(), "`===`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
