//! Abstract syntax tree for Izzy.
//!
//! The AST is deliberately plain: names are still strings (interning and
//! resolution happen during lowering to IR in `oi-ir`), and every node carries
//! a [`Span`] for diagnostics.

use oi_support::Span;

/// A parsed compilation unit.
///
/// # Examples
///
/// ```
/// let p = oi_lang::parse("class A { field f; } fn main() { }")?;
/// assert_eq!(p.classes[0].name, "A");
/// assert_eq!(p.functions[0].name, "main");
/// # Ok::<(), oi_support::Diagnostic>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Class declarations, in source order.
    pub classes: Vec<ClassDecl>,
    /// Free functions (lowered as methods of an implicit `$Main` class).
    pub functions: Vec<FnDecl>,
    /// Global variable declarations.
    pub globals: Vec<GlobalDecl>,
}

/// A `class Name : Parent { ... }` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Superclass name, if any.
    pub parent: Option<String>,
    /// Declared fields, in layout order.
    pub fields: Vec<FieldDecl>,
    /// Declared methods.
    pub methods: Vec<MethodDecl>,
    /// Source location of the declaration header.
    pub span: Span,
}

/// A `field name @anno...;` declaration.
///
/// Annotations record evaluation ground truth (paper Figure 14):
/// `@inline_ideal` marks a field hand-determined to be inlinable given
/// aliasing constraints, and `@inline_cxx` marks a field that the original
/// C++ sources declared inline.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Raw annotation names (without the `@`).
    pub annotations: Vec<String>,
    /// Source location.
    pub span: Span,
}

impl FieldDecl {
    /// Returns `true` if the field carries `@anno`.
    pub fn has_annotation(&self, anno: &str) -> bool {
        self.annotations.iter().any(|a| a == anno)
    }
}

/// A `method name(params) { ... }` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodDecl {
    /// Method selector.
    pub name: String,
    /// Parameter names (excluding the implicit `self`).
    pub params: Vec<String>,
    /// Method body.
    pub body: Block,
    /// Source location of the header.
    pub span: Span,
}

/// A free `fn name(params) { ... }` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Function body.
    pub body: Block,
    /// Source location of the header.
    pub span: Span,
}

/// A `global NAME;` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalDecl {
    /// Global variable name.
    pub name: String,
    /// Source location.
    pub span: Span,
}

/// A `{ ... }` statement sequence.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `var name = init;`
    Var {
        /// Variable name.
        name: String,
        /// Initializer.
        init: Expr,
        /// Source location.
        span: Span,
    },
    /// `place = value;` where `place` is a variable, field, index or global.
    Assign {
        /// Assignment target (must be a place expression).
        target: Expr,
        /// Value to store.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// An expression evaluated for effect, e.g. a call.
    Expr(Expr),
    /// `if (cond) { ... } else { ... }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Optional else branch.
        else_block: Option<Block>,
        /// Source location of the `if`.
        span: Span,
    },
    /// `while (cond) { ... }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source location of the `while`.
        span: Span,
    },
    /// `return expr?;`
    Return {
        /// Returned value; `nil` if omitted.
        value: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// `print expr;`
    Print {
        /// Value to print.
        value: Expr,
        /// Source location.
        span: Span,
    },
}

/// An expression with its location.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// The expression's shape.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Convenience constructor.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Self { kind, span }
    }

    /// Returns `true` if this expression can be assigned to.
    pub fn is_place(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::Var(_) | ExprKind::Field { .. } | ExprKind::Index { .. }
        )
    }
}

/// Expression shapes.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `nil`.
    Nil,
    /// `self`.
    SelfRef,
    /// Variable or global reference (resolution happens during lowering).
    Var(String),
    /// `obj.field`
    Field {
        /// Object expression.
        obj: Box<Expr>,
        /// Field name.
        field: String,
    },
    /// `recv.name(args)` or, with no receiver, `name(args)` — a free
    /// function or builtin call.
    Call {
        /// Receiver; `None` for free/builtin calls.
        recv: Option<Box<Expr>>,
        /// Selector.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `new Class(args)`
    New {
        /// Class name.
        class: String,
        /// Constructor arguments, passed to `init`.
        args: Vec<Expr>,
    },
    /// `array(len)` — a nil-filled reference array.
    NewArray {
        /// Length expression.
        len: Box<Expr>,
    },
    /// `[a, b, c]`
    ArrayLit(Vec<Expr>),
    /// `arr[index]`
    Index {
        /// Array expression.
        arr: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `lhs op rhs`
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `op operand`
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==` (structural on primitives, identity on objects)
    Eq,
    /// `!=`
    Ne,
    /// `===` (reference identity; blocks inlining of operands)
    RefEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_place_classifies() {
        let sp = Span::dummy();
        let var = Expr::new(ExprKind::Var("x".into()), sp);
        assert!(var.is_place());
        let field = Expr::new(
            ExprKind::Field {
                obj: Box::new(var.clone()),
                field: "f".into(),
            },
            sp,
        );
        assert!(field.is_place());
        let lit = Expr::new(ExprKind::Int(1), sp);
        assert!(!lit.is_place());
        let call = Expr::new(
            ExprKind::Call {
                recv: None,
                name: "f".into(),
                args: vec![],
            },
            sp,
        );
        assert!(!call.is_place());
    }

    #[test]
    fn field_annotation_lookup() {
        let f = FieldDecl {
            name: "lower_left".into(),
            annotations: vec!["inline_ideal".into(), "inline_cxx".into()],
            span: Span::dummy(),
        };
        assert!(f.has_annotation("inline_ideal"));
        assert!(!f.has_annotation("inline_never"));
    }
}
