//! Recursive-descent parser for Izzy.

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use oi_support::{Diagnostic, Span};

/// Parses an Izzy source string into a [`Program`].
///
/// # Errors
///
/// Returns the first lexical or syntactic [`Diagnostic`] encountered.
///
/// # Examples
///
/// ```
/// let p = oi_lang::parse(
///     "class Point { field x; field y; method abs() { return sqrt(self.x*self.x + self.y*self.y); } }",
/// )?;
/// assert_eq!(p.classes[0].methods[0].name, "abs");
/// # Ok::<(), oi_support::Diagnostic>(())
/// ```
pub fn parse(source: &str) -> Result<Program, Diagnostic> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, Diagnostic> {
        if self.peek() == &kind {
            Ok(self.advance())
        } else {
            Err(Diagnostic::error(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
                self.peek_span(),
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.peek_span();
                self.advance();
                Ok((name, span))
            }
            other => Err(Diagnostic::error(
                format!("expected {what} name, found {}", other.describe()),
                self.peek_span(),
            )),
        }
    }

    fn program(&mut self) -> Result<Program, Diagnostic> {
        let mut program = Program::default();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Class => program.classes.push(self.class_decl()?),
                TokenKind::Fn => program.functions.push(self.fn_decl()?),
                TokenKind::Global => {
                    let span = self.peek_span();
                    self.advance();
                    let (name, _) = self.expect_ident("global")?;
                    self.expect(TokenKind::Semi)?;
                    program.globals.push(GlobalDecl { name, span });
                }
                other => {
                    return Err(Diagnostic::error(
                        format!(
                            "expected `class`, `fn` or `global`, found {}",
                            other.describe()
                        ),
                        self.peek_span(),
                    ));
                }
            }
        }
        Ok(program)
    }

    fn class_decl(&mut self) -> Result<ClassDecl, Diagnostic> {
        let span = self.peek_span();
        self.expect(TokenKind::Class)?;
        let (name, _) = self.expect_ident("class")?;
        let parent = if self.eat(&TokenKind::Colon) {
            Some(self.expect_ident("superclass")?.0)
        } else {
            None
        };
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        loop {
            match self.peek() {
                TokenKind::RBrace => {
                    self.advance();
                    break;
                }
                TokenKind::Field => {
                    let fspan = self.peek_span();
                    self.advance();
                    let (fname, _) = self.expect_ident("field")?;
                    let mut annotations = Vec::new();
                    while self.eat(&TokenKind::At) {
                        annotations.push(self.expect_ident("annotation")?.0);
                    }
                    self.expect(TokenKind::Semi)?;
                    fields.push(FieldDecl {
                        name: fname,
                        annotations,
                        span: fspan,
                    });
                }
                TokenKind::Method => {
                    let mspan = self.peek_span();
                    self.advance();
                    let (mname, _) = self.expect_ident("method")?;
                    let params = self.param_list()?;
                    let body = self.block()?;
                    methods.push(MethodDecl {
                        name: mname,
                        params,
                        body,
                        span: mspan,
                    });
                }
                other => {
                    return Err(Diagnostic::error(
                        format!(
                            "expected `field`, `method` or `}}`, found {}",
                            other.describe()
                        ),
                        self.peek_span(),
                    ));
                }
            }
        }
        Ok(ClassDecl {
            name,
            parent,
            fields,
            methods,
            span,
        })
    }

    fn fn_decl(&mut self) -> Result<FnDecl, Diagnostic> {
        let span = self.peek_span();
        self.expect(TokenKind::Fn)?;
        let (name, _) = self.expect_ident("function")?;
        let params = self.param_list()?;
        let body = self.block()?;
        Ok(FnDecl {
            name,
            params,
            body,
            span,
        })
    }

    fn param_list(&mut self) -> Result<Vec<String>, Diagnostic> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.expect_ident("parameter")?.0);
                if self.eat(&TokenKind::Comma) {
                    continue;
                }
                self.expect(TokenKind::RParen)?;
                break;
            }
        }
        Ok(params)
    }

    fn block(&mut self) -> Result<Block, Diagnostic> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                return Err(Diagnostic::error("unterminated block", self.peek_span()));
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.peek_span();
        match self.peek() {
            TokenKind::Var => {
                self.advance();
                let (name, _) = self.expect_ident("variable")?;
                self.expect(TokenKind::Eq)?;
                let init = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Var { name, init, span })
            }
            TokenKind::If => self.if_stmt(),
            TokenKind::While => {
                self.advance();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, span })
            }
            TokenKind::Return => {
                self.advance();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            TokenKind::Print => {
                self.advance();
                let value = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Print { value, span })
            }
            _ => {
                let e = self.expr()?;
                if self.eat(&TokenKind::Eq) {
                    if !e.is_place() {
                        return Err(Diagnostic::error(
                            "left side of assignment is not assignable",
                            e.span,
                        ));
                    }
                    let value = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Assign {
                        target: e,
                        value,
                        span,
                    })
                } else {
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Expr(e))
                }
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.peek_span();
        self.expect(TokenKind::If)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_block = self.block()?;
        let else_block = if self.eat(&TokenKind::Else) {
            if self.peek() == &TokenKind::If {
                // `else if` chains become a nested single-statement block.
                let nested = self.if_stmt()?;
                Some(Block {
                    stmts: vec![nested],
                })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_block,
            else_block,
            span,
        })
    }

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        self.binary(0)
    }

    /// Precedence-climbing binary expression parser. Level 0 is weakest.
    fn binary(&mut self, min_level: u8) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary()?;
        loop {
            let (op, level) = match self.peek() {
                TokenKind::OrOr => (BinOp::Or, 1),
                TokenKind::AndAnd => (BinOp::And, 2),
                TokenKind::EqEq => (BinOp::Eq, 3),
                TokenKind::NotEq => (BinOp::Ne, 3),
                TokenKind::EqEqEq => (BinOp::RefEq, 3),
                TokenKind::Lt => (BinOp::Lt, 4),
                TokenKind::Le => (BinOp::Le, 4),
                TokenKind::Gt => (BinOp::Gt, 4),
                TokenKind::Ge => (BinOp::Ge, 4),
                TokenKind::Plus => (BinOp::Add, 5),
                TokenKind::Minus => (BinOp::Sub, 5),
                TokenKind::Star => (BinOp::Mul, 6),
                TokenKind::Slash => (BinOp::Div, 6),
                TokenKind::Percent => (BinOp::Rem, 6),
                _ => break,
            };
            if level < min_level {
                break;
            }
            self.advance();
            let rhs = self.binary(level + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.peek_span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Bang => Some(UnOp::Not),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let operand = self.unary()?;
            let span = span.merge(operand.span);
            return Ok(Expr::new(
                ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
                span,
            ));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, Diagnostic> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.advance();
                    let (name, nspan) = self.expect_ident("member")?;
                    if self.peek() == &TokenKind::LParen {
                        let args = self.arg_list()?;
                        let span = e.span.merge(nspan);
                        e = Expr::new(
                            ExprKind::Call {
                                recv: Some(Box::new(e)),
                                name,
                                args,
                            },
                            span,
                        );
                    } else {
                        let span = e.span.merge(nspan);
                        e = Expr::new(
                            ExprKind::Field {
                                obj: Box::new(e),
                                field: name,
                            },
                            span,
                        );
                    }
                }
                TokenKind::LBracket => {
                    self.advance();
                    let index = self.expr()?;
                    let close = self.expect(TokenKind::RBracket)?;
                    let span = e.span.merge(close.span);
                    e = Expr::new(
                        ExprKind::Index {
                            arr: Box::new(e),
                            index: Box::new(index),
                        },
                        span,
                    );
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn arg_list(&mut self) -> Result<Vec<Expr>, Diagnostic> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if self.eat(&TokenKind::Comma) {
                    continue;
                }
                self.expect(TokenKind::RParen)?;
                break;
            }
        }
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.peek_span();
        let kind = self.peek().clone();
        match kind {
            TokenKind::Int(n) => {
                self.advance();
                Ok(Expr::new(ExprKind::Int(n), span))
            }
            TokenKind::Float(x) => {
                self.advance();
                Ok(Expr::new(ExprKind::Float(x), span))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::new(ExprKind::Str(s), span))
            }
            TokenKind::True => {
                self.advance();
                Ok(Expr::new(ExprKind::Bool(true), span))
            }
            TokenKind::False => {
                self.advance();
                Ok(Expr::new(ExprKind::Bool(false), span))
            }
            TokenKind::Nil => {
                self.advance();
                Ok(Expr::new(ExprKind::Nil, span))
            }
            TokenKind::SelfKw => {
                self.advance();
                Ok(Expr::new(ExprKind::SelfRef, span))
            }
            TokenKind::New => {
                self.advance();
                let (class, _) = self.expect_ident("class")?;
                let args = self.arg_list()?;
                Ok(Expr::new(ExprKind::New { class, args }, span))
            }
            TokenKind::Array => {
                self.advance();
                self.expect(TokenKind::LParen)?;
                let len = self.expr()?;
                let close = self.expect(TokenKind::RParen)?;
                Ok(Expr::new(
                    ExprKind::NewArray { len: Box::new(len) },
                    span.merge(close.span),
                ))
            }
            TokenKind::LBracket => {
                self.advance();
                let mut elems = Vec::new();
                if !self.eat(&TokenKind::RBracket) {
                    loop {
                        elems.push(self.expr()?);
                        if self.eat(&TokenKind::Comma) {
                            continue;
                        }
                        self.expect(TokenKind::RBracket)?;
                        break;
                    }
                }
                Ok(Expr::new(ExprKind::ArrayLit(elems), span))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.advance();
                if self.peek() == &TokenKind::LParen {
                    let args = self.arg_list()?;
                    Ok(Expr::new(
                        ExprKind::Call {
                            recv: None,
                            name,
                            args,
                        },
                        span,
                    ))
                } else {
                    Ok(Expr::new(ExprKind::Var(name), span))
                }
            }
            other => Err(Diagnostic::error(
                format!("expected expression, found {}", other.describe()),
                span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        match parse(src) {
            Ok(p) => p,
            Err(e) => panic!("parse failed: {} in {src}", e.render(src)),
        }
    }

    #[test]
    fn parses_rectangle_example() {
        let p = parse_ok(
            "class Point { field x; field y;
               method init(a, b) { self.x = a; self.y = b; }
               method abs() { return sqrt(self.x * self.x + self.y * self.y); }
             }
             class Rectangle { field lower_left @inline_ideal @inline_cxx; field upper_right;
               method area() { return self.lower_left.area(self.upper_right); }
             }
             class Parallelogram : Rectangle { field upper_left; }
             fn main() { var p1 = new Point(1.0, 2.0); print p1.abs(); }",
        );
        assert_eq!(p.classes.len(), 3);
        assert_eq!(p.classes[2].parent.as_deref(), Some("Rectangle"));
        assert!(p.classes[1].fields[0].has_annotation("inline_ideal"));
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let p = parse_ok("fn f() { return 1 + 2 * 3; }");
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body.stmts[0] else {
            panic!("expected return");
        };
        let ExprKind::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &e.kind
        else {
            panic!("expected add at top: {e:?}");
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn comparison_weaker_than_arith() {
        let p = parse_ok("fn f(a) { return a + 1 < a * 2; }");
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Lt, .. }));
    }

    #[test]
    fn chained_postfix() {
        let p = parse_ok("fn f(r) { return r.lower_left.x; }");
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body.stmts[0] else {
            panic!()
        };
        let ExprKind::Field { obj, field } = &e.kind else {
            panic!()
        };
        assert_eq!(field, "x");
        assert!(matches!(&obj.kind, ExprKind::Field { field, .. } if field == "lower_left"));
    }

    #[test]
    fn method_call_vs_field() {
        let p = parse_ok("fn f(a) { return a.head().abs(); }");
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(&e.kind, ExprKind::Call { name, .. } if name == "abs"));
    }

    #[test]
    fn else_if_chain() {
        let p = parse_ok(
            "fn f(a) { if (a) { return 1; } else if (!a) { return 2; } else { return 3; } }",
        );
        let Stmt::If {
            else_block: Some(b),
            ..
        } = &p.functions[0].body.stmts[0]
        else {
            panic!()
        };
        assert!(matches!(b.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn assignment_targets() {
        parse_ok("fn f(a) { a = 1; a.f = 2; a[0] = 3; }");
        assert!(parse("fn f(a) { 1 = 2; }").is_err());
        assert!(parse("fn f(a) { f() = 2; }").is_err());
    }

    #[test]
    fn array_literals_and_indexing() {
        let p = parse_ok("fn f() { var a = [1, 2, 3]; var b = array(10); return a[b[0]]; }");
        assert_eq!(p.functions[0].body.stmts.len(), 3);
    }

    #[test]
    fn globals_parse() {
        let p = parse_ok("global EVENTS; fn main() { EVENTS = nil; }");
        assert_eq!(p.globals[0].name, "EVENTS");
    }

    #[test]
    fn identity_operator_parses() {
        let p = parse_ok("fn f(a, b) { return a === b; }");
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(
            e.kind,
            ExprKind::Binary {
                op: BinOp::RefEq,
                ..
            }
        ));
    }

    #[test]
    fn error_messages_name_expectations() {
        let err = parse("class {").unwrap_err();
        assert!(err.message.contains("class name"), "{}", err.message);
        let err = parse("fn f() { var = 1; }").unwrap_err();
        assert!(err.message.contains("variable name"), "{}", err.message);
    }

    #[test]
    fn unterminated_block_reported() {
        assert!(parse("fn f() { var x = 1;").is_err());
    }
}
