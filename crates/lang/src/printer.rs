//! Pretty-printing of the AST back to parseable Izzy source.
//!
//! The printer's contract, checked by property tests: for any parsed
//! program `p`, `parse(print(p))` succeeds and equals `p`.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for g in &p.globals {
        let _ = writeln!(out, "global {};", g.name);
    }
    for c in &p.classes {
        print_class(&mut out, c);
    }
    for f in &p.functions {
        let _ = write!(out, "fn {}({})", f.name, f.params.join(", "));
        print_block(&mut out, &f.body, 0);
        out.push('\n');
    }
    out
}

fn print_class(out: &mut String, c: &ClassDecl) {
    let _ = write!(out, "class {}", c.name);
    if let Some(parent) = &c.parent {
        let _ = write!(out, " : {parent}");
    }
    out.push_str(" {\n");
    for f in &c.fields {
        let _ = write!(out, "  field {}", f.name);
        for a in &f.annotations {
            let _ = write!(out, " @{a}");
        }
        out.push_str(";\n");
    }
    for m in &c.methods {
        let _ = write!(out, "  method {}({})", m.name, m.params.join(", "));
        print_block(out, &m.body, 1);
        out.push('\n');
    }
    out.push_str("}\n");
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_block(out: &mut String, b: &Block, depth: usize) {
    out.push_str(" {\n");
    for s in &b.stmts {
        print_stmt(out, s, depth + 1);
    }
    indent(out, depth);
    out.push('}');
}

fn print_stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Var { name, init, .. } => {
            let _ = write!(out, "var {name} = ");
            print_expr(out, init);
            out.push_str(";\n");
        }
        Stmt::Assign { target, value, .. } => {
            print_expr(out, target);
            out.push_str(" = ");
            print_expr(out, value);
            out.push_str(";\n");
        }
        Stmt::Expr(e) => {
            print_expr(out, e);
            out.push_str(";\n");
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
            ..
        } => {
            out.push_str("if (");
            print_expr(out, cond);
            out.push(')');
            print_block(out, then_block, depth);
            if let Some(else_block) = else_block {
                out.push_str(" else");
                print_block(out, else_block, depth);
            }
            out.push('\n');
        }
        Stmt::While { cond, body, .. } => {
            out.push_str("while (");
            print_expr(out, cond);
            out.push(')');
            print_block(out, body, depth);
            out.push('\n');
        }
        Stmt::Return { value, .. } => {
            out.push_str("return");
            if let Some(v) = value {
                out.push(' ');
                print_expr(out, v);
            }
            out.push_str(";\n");
        }
        Stmt::Print { value, .. } => {
            out.push_str("print ");
            print_expr(out, value);
            out.push_str(";\n");
        }
    }
}

/// Prints fully parenthesized expressions (cheap and unambiguous).
fn print_expr(out: &mut String, e: &Expr) {
    match &e.kind {
        ExprKind::Int(n) => {
            // Negative literals re-lex as unary minus; parenthesize so a
            // following postfix (`-1[0]`) cannot re-associate.
            if *n < 0 {
                let _ = write!(out, "({n})");
            } else {
                let _ = write!(out, "{n}");
            }
        }
        ExprKind::Float(x) => {
            // `{:?}` keeps a decimal point or exponent so it re-lexes as a
            // float.
            if *x < 0.0 {
                let _ = write!(out, "({x:?})");
            } else {
                let _ = write!(out, "{x:?}");
            }
        }
        ExprKind::Str(s) => {
            let _ = write!(out, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""));
        }
        ExprKind::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        ExprKind::Nil => out.push_str("nil"),
        ExprKind::SelfRef => out.push_str("self"),
        ExprKind::Var(name) => out.push_str(name),
        ExprKind::Field { obj, field } => {
            print_expr(out, obj);
            let _ = write!(out, ".{field}");
        }
        ExprKind::Call { recv, name, args } => {
            if let Some(recv) = recv {
                print_expr(out, recv);
                out.push('.');
            }
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, a);
            }
            out.push(')');
        }
        ExprKind::New { class, args } => {
            let _ = write!(out, "new {class}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, a);
            }
            out.push(')');
        }
        ExprKind::NewArray { len } => {
            out.push_str("array(");
            print_expr(out, len);
            out.push(')');
        }
        ExprKind::ArrayLit(elems) => {
            out.push('[');
            for (i, a) in elems.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, a);
            }
            out.push(']');
        }
        ExprKind::Index { arr, index } => {
            print_expr(out, arr);
            out.push('[');
            print_expr(out, index);
            out.push(']');
        }
        ExprKind::Binary { op, lhs, rhs } => {
            out.push('(');
            print_expr(out, lhs);
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::RefEq => "===",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            let _ = write!(out, " {sym} ");
            print_expr(out, rhs);
            out.push(')');
        }
        ExprKind::Unary { op, operand } => {
            out.push('(');
            out.push_str(match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            });
            print_expr(out, operand);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Spans differ after printing; compare structure by re-printing.
    fn normalize(p: &Program) -> String {
        print_program(p)
    }

    #[test]
    fn round_trips_rectangle_program() {
        let src = "class Point { field x @inline_ideal; field y;
               method init(a, b) { self.x = a; self.y = b; }
               method abs() { return sqrt(self.x * self.x + self.y * self.y); }
             }
             class Para : Point { field skew; }
             global G;
             fn main() {
               var p = new Point(3.0, 4.0);
               G = p;
               if (p.abs() > 1.0 && !(G === nil)) { print p.abs(); } else { print 0; }
               var a = [1, 2, 3];
               a[0] = a[1] + a[2];
               while (a[0] > 0) { a[0] = a[0] - 1; }
               print -a[0];
             }";
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("{}\n{printed}", e.render(&printed)));
        assert_eq!(normalize(&p1), normalize(&p2));
    }

    #[test]
    fn floats_reparse_as_floats() {
        let p1 = parse("fn main() { print 2.0; print 1e10; }").unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap();
        assert_eq!(normalize(&p1), normalize(&p2));
        assert!(printed.contains("2.0"));
    }

    #[test]
    fn strings_escape_correctly() {
        let p1 = parse(r#"fn main() { print "a\"b\\c"; }"#).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap();
        assert_eq!(normalize(&p1), normalize(&p2));
    }
}
