#![warn(missing_docs)]
//! The benchmark suite of the PLDI'97 evaluation (§6), re-implemented for
//! the Izzy uniform object model.
//!
//! The paper evaluates on four pre-existing C++/ICC++ codes; those sources
//! are not available, so each is re-implemented faithfully to the paper's
//! description of *what object inlining finds in it*:
//!
//! - [`programs::oopack`]: the ComplexBenchmark kernel — arrays of complex-number
//!   objects, inline-allocated in C++ but references in a uniform model.
//! - [`programs::richards`]: the operating-system simulator — tasks with a
//!   *polymorphic* private-data slot (declared `void*` in C++, so it cannot
//!   be inlined there; our divergent per-subclass inlining handles it).
//! - [`programs::silo`]: an event-driven simulator — inlinable queue wrapper objects,
//!   log cons cells merged with their data, and a **global event list whose
//!   cons cells must not be merged** (the paper's aliasing limit).
//! - [`programs::polyover`]: polygon-map overlay — arrays of polygons (inlined into
//!   the arrays) and result polygons merged with the cons cells of their
//!   list; evaluated in an array and a list variant, both ~3x in the paper.
//!
//! Each benchmark also has a **manual** variant: the same computation with
//! inline allocation done by hand (flattened fields, parallel coordinate
//! arrays) — the stand-in for the paper's `G++ -O2` bars. All variants of a
//! benchmark print identical output, which the evaluation harness asserts.

pub mod eval;
pub mod ground_truth;
pub mod programs;

pub use eval::{evaluate, BenchSize, Evaluation};
pub use ground_truth::GroundTruth;
pub use programs::{all_benchmarks, Benchmark};
