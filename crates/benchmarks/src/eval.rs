//! The evaluation harness: compile a benchmark three ways and measure.

use crate::programs::Benchmark;
use oi_core::ladder::{optimize_with_ladder, LadderConfig};
use oi_core::pipeline::{baseline, InlineConfig};
use oi_ir::size::SizeReport;
use oi_support::Budget;
use oi_vm::{HeapCensusReport, Metrics, VmConfig};

/// Problem sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchSize {
    /// Seconds-scale CI runs.
    Small,
    /// The default measurement size.
    Default,
    /// Stress size.
    Large,
}

/// Everything measured about one benchmark.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Benchmark name.
    pub name: &'static str,
    /// Metrics of the baseline (Concert-without-inlining) build.
    pub baseline: Metrics,
    /// Metrics of the object-inlined build.
    pub inlined: Metrics,
    /// Metrics of the hand-inlined source (the `G++ -O2` stand-in).
    pub manual: Metrics,
    /// Heap census of the baseline run.
    pub baseline_census: HeapCensusReport,
    /// Heap census of the object-inlined run.
    pub inlined_census: HeapCensusReport,
    /// Effectiveness counters (Figure 14's measured column).
    pub report: oi_core::EffectivenessReport,
    /// Generated-code size of the baseline build (Figure 15).
    pub baseline_size: SizeReport,
    /// Generated-code size of the inlined build (Figure 15).
    pub inlined_size: SizeReport,
    /// Method contours without / with the inlining sensitivity (Figure 16).
    pub contours: (oi_analysis::ContourStats, oi_analysis::ContourStats),
    /// Method clone groups the paper's §5.1 cloning would materialize,
    /// with the inlining sensitivity.
    pub clone_groups: usize,
    /// Program output (identical across baseline and inlined builds).
    pub output: String,
}

impl Evaluation {
    /// Speedup of the inlined build over the baseline (Figure 17's main
    /// bar, normalized to baseline = 1.0).
    pub fn speedup(&self) -> f64 {
        self.inlined.speedup_over(&self.baseline)
    }

    /// Relative performance of the manual build (the `G++` bar).
    pub fn manual_speedup(&self) -> f64 {
        self.manual.speedup_over(&self.baseline)
    }
}

/// Compiles and measures one benchmark.
///
/// # Panics
///
/// Panics if any variant fails to compile or run, or if the baseline and
/// object-inlined builds print different output (a correctness bug).
pub fn evaluate(bench: &Benchmark, vm: &VmConfig, inline_config: &InlineConfig) -> Evaluation {
    let program = oi_ir::lower::compile(&bench.source)
        .unwrap_or_else(|e| panic!("{}: {}", bench.name, e.render(&bench.source)));
    let manual_program = oi_ir::lower::compile(&bench.manual_source)
        .unwrap_or_else(|e| panic!("{} manual: {}", bench.name, e.render(&bench.manual_source)));

    let contours = oi_analysis::report::contour_comparison(&program);
    let tagged = oi_analysis::analyze(&program, &oi_analysis::AnalysisConfig::default());
    let clone_groups = oi_analysis::report::clone_groups(&program, &tagged);

    let base = baseline(&program, &inline_config.opt);
    // The degradation ladder (oracle off: this harness checks outputs
    // itself below) keeps a pathological configuration from panicking the
    // whole evaluation; a descent shows up as `report.tier`.
    let ladder = LadderConfig {
        inline: *inline_config,
        oracle: false,
        ..Default::default()
    };
    let opt = optimize_with_ladder(&program, &ladder, &Budget::unlimited()).optimized;
    // The manual variant gets the same baseline cleanups (devirt, method
    // inlining) so the comparison isolates data layout.
    let manual = baseline(&manual_program, &inline_config.opt);

    let base_run = oi_vm::run(&base, vm).unwrap_or_else(|e| panic!("{} baseline: {e}", bench.name));
    let opt_run =
        oi_vm::run(&opt.program, vm).unwrap_or_else(|e| panic!("{} inlined: {e}", bench.name));
    let manual_run =
        oi_vm::run(&manual, vm).unwrap_or_else(|e| panic!("{} manual: {e}", bench.name));

    assert_eq!(
        base_run.output, opt_run.output,
        "{}: object inlining changed program output",
        bench.name
    );
    assert_eq!(
        base_run.output, manual_run.output,
        "{}: manual variant computes something different",
        bench.name
    );

    Evaluation {
        name: bench.name,
        baseline: base_run.metrics,
        inlined: opt_run.metrics,
        manual: manual_run.metrics,
        baseline_census: base_run.heap_census,
        inlined_census: opt_run.heap_census,
        report: opt.report,
        baseline_size: oi_ir::size::measure(&base),
        inlined_size: oi_ir::size::measure(&opt.program),
        contours,
        clone_groups,
        output: base_run.output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::all_benchmarks;

    #[test]
    fn oopack_evaluates_with_speedup() {
        let bench = crate::programs::oopack::benchmark(BenchSize::Small);
        let eval = evaluate(&bench, &VmConfig::default(), &InlineConfig::default());
        assert!(
            eval.speedup() > 1.1,
            "oopack should speed up: {:.2} ({} vs {})",
            eval.speedup(),
            eval.inlined.cycles,
            eval.baseline.cycles,
        );
        assert!(eval.inlined.allocations < eval.baseline.allocations);
    }

    #[test]
    fn every_benchmark_preserves_output_under_inlining() {
        for bench in all_benchmarks(BenchSize::Small) {
            // `evaluate` asserts output equality internally.
            let eval = evaluate(&bench, &VmConfig::default(), &InlineConfig::default());
            assert!(!eval.output.is_empty());
        }
    }

    #[test]
    fn census_accounting_agrees_with_metrics_on_every_benchmark() {
        // The heap census and the interpreter's `words_allocated` counter
        // are independent accountings of the same bump allocator; they must
        // agree on programs that allocate objects, arrays, and (in the
        // inlined builds) inline children.
        let mut saw_inline_children = false;
        for bench in all_benchmarks(BenchSize::Small) {
            let eval = evaluate(&bench, &VmConfig::default(), &InlineConfig::default());
            assert_eq!(
                eval.baseline.words_allocated, eval.baseline_census.total_words,
                "{}: baseline metrics vs census drift",
                bench.name
            );
            assert_eq!(
                eval.inlined.words_allocated, eval.inlined_census.total_words,
                "{}: inlined metrics vs census drift",
                bench.name
            );
            assert_eq!(
                eval.baseline.allocations, eval.baseline_census.total_objects,
                "{}: baseline allocation count vs census drift",
                bench.name
            );
            // Inlining folds children into containers: fewer objects and
            // fewer header words, never more.
            assert!(
                eval.inlined_census.header_words <= eval.baseline_census.header_words,
                "{}: inlining must not add header words",
                bench.name
            );
            saw_inline_children |=
                eval.inlined_census.inline_elements > 0 || eval.inlined.inline_child_accesses > 0;
        }
        assert!(
            saw_inline_children,
            "suite should exercise inline children somewhere"
        );
    }

    #[test]
    fn effectiveness_matches_ground_truth() {
        for bench in all_benchmarks(BenchSize::Small) {
            let eval = evaluate(&bench, &VmConfig::default(), &InlineConfig::default());
            let auto = eval.report.fields_inlined + eval.report.array_sites_inlined;
            assert_eq!(
                auto, bench.ground_truth.expected_auto,
                "{}: expected {} automatic inlinings, got {} (fields {:?}, {} arrays); rejected: {:#?}",
                bench.name,
                bench.ground_truth.expected_auto,
                auto,
                eval.report
                    .outcomes
                    .iter()
                    .filter(|o| o.inlined)
                    .map(|o| o.name.clone())
                    .collect::<Vec<_>>(),
                eval.report.array_sites_inlined,
                eval.report
                    .outcomes
                    .iter()
                    .filter(|o| !o.inlined)
                    .collect::<Vec<_>>(),
            );
        }
    }
}
