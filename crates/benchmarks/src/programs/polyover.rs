//! Polygon-map overlay (paper §6; the benchmark from Wilson & Lu's
//! "Parallel Programming Using C++").
//!
//! "it computes an overlay of two polygon maps; it uses several algorithms
//! employing arrays and lists of polygons. Our transformation inlines cons
//! cells as in Silo, contents of arrays, and, most interestingly, an array
//! of cons cells... The arrays are inline allocated in C++, but the cons
//! cells cannot be." Both variants are about 3x faster with inlining in the
//! paper (Figure 17); the win comes from collapsing reference chains
//! (`cell.poly.ll.x` is three dereferences in the uniform model, one in the
//! inlined one — nested inlining across passes), from constructing result
//! polygons directly inside their cons cells (allocation reduction), and
//! from locality.
//!
//! Polygons are axis-aligned boxes with two `Pt` corner objects, on an
//! integer grid; the overlay intersects every pair of maps A and B and
//! accumulates the non-empty intersections.

use crate::eval::BenchSize;
use crate::ground_truth::GroundTruth;
use crate::programs::Benchmark;

/// Number of polygons per map.
pub fn map_size(size: BenchSize) -> usize {
    match size {
        BenchSize::Small => 48,
        BenchSize::Default => 420,
        BenchSize::Large => 500,
    }
}

const COMMON_DECL: &str = r#"
global SEED;
fn lcg() {
  SEED = (SEED * 1103515245 + 12345) % 2147483648;
  return SEED;
}
fn maxi(a, b) { if (a > b) { return a; } return b; }
fn mini(a, b) { if (a < b) { return a; } return b; }
"#;

const POLY_DECL: &str = r#"
class Pt {
  field x; field y;
  method init(x, y) { self.x = x; self.y = y; }
}

class Poly {
  field ll @inline_ideal @inline_cxx; field ur @inline_ideal @inline_cxx;
  method init(xl, yl, xh, yh) {
    self.ll = new Pt(xl, yl);
    self.ur = new Pt(xh, yh);
  }
  method area() {
    return (self.ur.x - self.ll.x) * (self.ur.y - self.ll.y);
  }
}
"#;

/// Array variant: maps are arrays of polygons; results go into a list of
/// cons cells merged with their result polygons.
pub fn source_array(size: BenchSize) -> String {
    let n = map_size(size);
    format!(
        r#"
// polyover, array variant: two arrays of polygons, pairwise overlay.
{COMMON_DECL}
{POLY_DECL}

class ResCell {{
  field poly @inline_ideal; field next;
  method init(xl, yl, xh, yh, next) {{
    self.poly = new Poly(xl, yl, xh, yh);
    self.next = next;
  }}
}}

fn fill_map(m, n, salt) {{
  var i = 0;
  while (i < n) {{
    var x = lcg() % 900;
    var y = lcg() % 900;
    var w = 20 + lcg() % 140;
    var h = 20 + lcg() % 140;
    m[i] = new Poly(x + salt, y, x + salt + w, y + h);
    i = i + 1;
  }}
  return nil;
}}

fn main() {{
  SEED = 987654321;
  var n = {n};
  var ma = array(n);
  var mb = array(n);
  fill_map(ma, n, 0);
  fill_map(mb, n, 13);

  var results = nil;
  var count = 0;
  var i = 0;
  while (i < n) {{
    var a = ma[i];
    var j = 0;
    while (j < n) {{
      var b = mb[j];
      var xl = maxi(a.ll.x, b.ll.x);
      var yl = maxi(a.ll.y, b.ll.y);
      var xh = mini(a.ur.x, b.ur.x);
      var yh = mini(a.ur.y, b.ur.y);
      if (xl < xh && yl < yh) {{
        results = new ResCell(xl, yl, xh, yh, results);
        count = count + 1;
      }}
      j = j + 1;
    }}
    i = i + 1;
  }}

  print count;
  var area = 0;
  var cell = results;
  while (!(cell === nil)) {{
    area = area + cell.poly.area();
    cell = cell.next;
  }}
  print area;
}}
"#
    )
}

/// List variant: maps are cons lists whose cells are merged with their
/// polygons; the overlay walks both lists.
pub fn source_list(size: BenchSize) -> String {
    let n = map_size(size);
    format!(
        r#"
// polyover, list variant: two cons lists of polygons, pairwise overlay.
{COMMON_DECL}
{POLY_DECL}

class MapCell {{
  field poly @inline_ideal; field next;
  method init(xl, yl, xh, yh, next) {{
    self.poly = new Poly(xl, yl, xh, yh);
    self.next = next;
  }}
}}

class ResCell {{
  field poly @inline_ideal; field next;
  method init(xl, yl, xh, yh, next) {{
    self.poly = new Poly(xl, yl, xh, yh);
    self.next = next;
  }}
}}

fn build_map(n, salt) {{
  var head = nil;
  var i = 0;
  while (i < n) {{
    var x = lcg() % 900;
    var y = lcg() % 900;
    var w = 20 + lcg() % 140;
    var h = 20 + lcg() % 140;
    head = new MapCell(x + salt, y, x + salt + w, y + h, head);
    i = i + 1;
  }}
  return head;
}}

fn main() {{
  SEED = 987654321;
  var n = {n};
  var ma = build_map(n, 0);
  var mb = build_map(n, 13);

  var results = nil;
  var count = 0;
  var ca = ma;
  while (!(ca === nil)) {{
    var a = ca.poly;
    var cb = mb;
    while (!(cb === nil)) {{
      var b = cb.poly;
      var xl = maxi(a.ll.x, b.ll.x);
      var yl = maxi(a.ll.y, b.ll.y);
      var xh = mini(a.ur.x, b.ur.x);
      var yh = mini(a.ur.y, b.ur.y);
      if (xl < xh && yl < yh) {{
        results = new ResCell(xl, yl, xh, yh, results);
        count = count + 1;
      }}
      cb = cb.next;
    }}
    ca = ca.next;
  }}

  print count;
  var area = 0;
  var cell = results;
  while (!(cell === nil)) {{
    area = area + cell.poly.area();
    cell = cell.next;
  }}
  print area;
}}
"#
    )
}

/// Hand-inlined array variant: parallel coordinate arrays; result cons
/// cells keep references to separately allocated polygons — C++ inlines
/// the arrays but cannot merge cons cells with data.
pub fn manual_source_array(size: BenchSize) -> String {
    let n = map_size(size);
    format!(
        r#"
// polyover, array variant, inline allocation by hand (the C++ layout).
{COMMON_DECL}

class FlatPoly {{
  field xl; field yl; field xh; field yh;
  method init(xl, yl, xh, yh) {{
    self.xl = xl; self.yl = yl; self.xh = xh; self.yh = yh;
  }}
  method area() {{ return (self.xh - self.xl) * (self.yh - self.yl); }}
}}

class ResCell {{
  field poly; field next;
  method init(p, next) {{ self.poly = p; self.next = next; }}
}}

fn fill_map(xl, yl, xh, yh, n, salt) {{
  var i = 0;
  while (i < n) {{
    var x = lcg() % 900;
    var y = lcg() % 900;
    var w = 20 + lcg() % 140;
    var h = 20 + lcg() % 140;
    xl[i] = x + salt;
    yl[i] = y;
    xh[i] = x + salt + w;
    yh[i] = y + h;
    i = i + 1;
  }}
  return nil;
}}

fn main() {{
  SEED = 987654321;
  var n = {n};
  var axl = array(n); var ayl = array(n); var axh = array(n); var ayh = array(n);
  var bxl = array(n); var byl = array(n); var bxh = array(n); var byh = array(n);
  fill_map(axl, ayl, axh, ayh, n, 0);
  fill_map(bxl, byl, bxh, byh, n, 13);

  var results = nil;
  var count = 0;
  var i = 0;
  while (i < n) {{
    var j = 0;
    while (j < n) {{
      var xl = maxi(axl[i], bxl[j]);
      var yl = maxi(ayl[i], byl[j]);
      var xh = mini(axh[i], bxh[j]);
      var yh = mini(ayh[i], byh[j]);
      if (xl < xh && yl < yh) {{
        results = new ResCell(new FlatPoly(xl, yl, xh, yh), results);
        count = count + 1;
      }}
      j = j + 1;
    }}
    i = i + 1;
  }}

  print count;
  var area = 0;
  var cell = results;
  while (!(cell === nil)) {{
    area = area + cell.poly.area();
    cell = cell.next;
  }}
  print area;
}}
"#
    )
}

/// Hand-inlined list variant: map cells carry their coordinates directly
/// (the conceptually disruptive edit the paper mentions); result cells keep
/// separate polygons.
pub fn manual_source_list(size: BenchSize) -> String {
    let n = map_size(size);
    format!(
        r#"
// polyover, list variant, hand-flattened map cells.
{COMMON_DECL}

class FlatPoly {{
  field xl; field yl; field xh; field yh;
  method init(xl, yl, xh, yh) {{
    self.xl = xl; self.yl = yl; self.xh = xh; self.yh = yh;
  }}
  method area() {{ return (self.xh - self.xl) * (self.yh - self.yl); }}
}}

class MapCell {{
  field xl; field yl; field xh; field yh; field next;
  method init(xl, yl, xh, yh, next) {{
    self.xl = xl; self.yl = yl; self.xh = xh; self.yh = yh;
    self.next = next;
  }}
}}

class ResCell {{
  field poly; field next;
  method init(p, next) {{ self.poly = p; self.next = next; }}
}}

fn build_map(n, salt) {{
  var head = nil;
  var i = 0;
  while (i < n) {{
    var x = lcg() % 900;
    var y = lcg() % 900;
    var w = 20 + lcg() % 140;
    var h = 20 + lcg() % 140;
    head = new MapCell(x + salt, y, x + salt + w, y + h, head);
    i = i + 1;
  }}
  return head;
}}

fn main() {{
  SEED = 987654321;
  var n = {n};
  var ma = build_map(n, 0);
  var mb = build_map(n, 13);

  var results = nil;
  var count = 0;
  var ca = ma;
  while (!(ca === nil)) {{
    var cb = mb;
    while (!(cb === nil)) {{
      var xl = maxi(ca.xl, cb.xl);
      var yl = maxi(ca.yl, cb.yl);
      var xh = mini(ca.xh, cb.xh);
      var yh = mini(ca.yh, cb.yh);
      if (xl < xh && yl < yh) {{
        results = new ResCell(new FlatPoly(xl, yl, xh, yh), results);
        count = count + 1;
      }}
      cb = cb.next;
    }}
    ca = ca.next;
  }}

  print count;
  var area = 0;
  var cell = results;
  while (!(cell === nil)) {{
    area = area + cell.poly.area();
    cell = cell.next;
  }}
  print area;
}}
"#
    )
}

/// The array-variant benchmark.
pub fn benchmark_array(size: BenchSize) -> Benchmark {
    Benchmark {
        name: "polyover-array",
        description: "polygon overlay over arrays of polygons; results merged into cons cells",
        source: source_array(size),
        manual_source: manual_source_array(size),
        // Slots: Poly.ll, Poly.ur, ma contents, mb contents, ResCell.poly,
        // ResCell.next = 6. Ideal: all but ResCell.next = 5. C++: the
        // corner points and the arrays = 4. Automatic: ll, ur, both
        // arrays, ResCell.poly = 5.
        ground_truth: GroundTruth {
            total: 6,
            ideal: 5,
            cxx: 4,
            expected_auto: 5,
        },
    }
}

/// The list-variant benchmark.
pub fn benchmark_list(size: BenchSize) -> Benchmark {
    Benchmark {
        name: "polyover-list",
        description: "polygon overlay over cons lists of polygons, cells merged with data",
        source: source_list(size),
        manual_source: manual_source_list(size),
        // Slots: Poly.ll, Poly.ur, MapCell.poly, MapCell.next,
        // ResCell.poly, ResCell.next = 6. Ideal: the four poly/corner
        // slots = 4. C++: only the corner points (cons cells cannot be
        // inline allocated) = 2. Automatic: all four = 4.
        ground_truth: GroundTruth {
            total: 6,
            ideal: 4,
            cxx: 2,
            expected_auto: 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_and_list_variants_agree_on_results() {
        let pa = oi_ir::lower::compile(&source_array(BenchSize::Small)).unwrap();
        let pl = oi_ir::lower::compile(&source_list(BenchSize::Small)).unwrap();
        let oa = oi_vm::run(&pa, &oi_vm::VmConfig::default()).unwrap();
        let ol = oi_vm::run(&pl, &oi_vm::VmConfig::default()).unwrap();
        // Same polygons (same LCG stream); counts and total area are
        // order-independent.
        assert_eq!(oa.output, ol.output);
    }

    #[test]
    fn overlay_finds_intersections() {
        let p = oi_ir::lower::compile(&source_array(BenchSize::Small)).unwrap();
        let out = oi_vm::run(&p, &oi_vm::VmConfig::default()).unwrap();
        let count: i64 = out.output.lines().next().unwrap().parse().unwrap();
        let n = map_size(BenchSize::Small) as i64;
        assert!(count > n, "maps must overlap densely: {}", out.output);
    }

    #[test]
    fn nested_point_inlining_takes_two_passes() {
        let p = oi_ir::lower::compile(&source_list(BenchSize::Small)).unwrap();
        let opt = oi_core::pipeline::optimize(&p, &Default::default());
        assert!(
            opt.passes >= 2,
            "Pt→Poly then Poly→cells: got {} passes",
            opt.passes
        );
        assert_eq!(opt.report.fields_inlined, 4, "{:#?}", opt.report.outcomes);
    }
}
