//! Richards operating-system simulator (paper §6).
//!
//! "the Task object has a private data pointer (declared as `void*` in C++
//! and accessed using casts). Various subclasses use different types in
//! this slot, and hence it cannot be declared inlined in C++. Our
//! transformation inlines the private data independently for each
//! subclass." Also: packets carry a small data record that C++ *can*
//! inline, and there is an array of pointers to tasks that is polymorphic,
//! which the analysis does not inline (the paper's own limitation).
//!
//! This is a port of the classic Deutsch benchmark (idle/worker/handler/
//! device tasks exchanging packets through a priority scheduler), with the
//! XOR in the idle task's LFSR replaced by an arithmetic mix (the language
//! has no bitwise operators); the schedule is equally deterministic.

use crate::eval::BenchSize;
use crate::ground_truth::GroundTruth;
use crate::programs::Benchmark;

/// Idle-task countdown controlling total work.
pub fn idle_count(size: BenchSize) -> usize {
    match size {
        BenchSize::Small => 300,
        BenchSize::Default => 2_000,
        BenchSize::Large => 10_000,
    }
}

/// Everything except the packet-data representation, shared by both
/// variants. `{DAT_DECL}`, `{DAT_INIT}`, `{DAT_GET}`, `{DAT_SET}` splice in
/// the representation-specific parts.
fn body(count: usize, dat_decl: &str, dat_init: &str, dat_get: &str, dat_set: &str) -> String {
    format!(
        r#"
// Richards OS simulator. IDs: 0 idle, 1 worker, 2/3 handlers, 4/5 devices.
// Kinds: 0 device packet, 1 work packet.

global TASKTAB;
global TASKLIST;
global CURRENT;
global CURRENT_ID;
global QUEUE_COUNT;
global HOLD_COUNT;

{dat_decl}

class Packet {{
  field link; field id; field kind; field a1; {dat_field}
  method init(link, id, kind) {{
    self.link = link;
    self.id = id;
    self.kind = kind;
    self.a1 = 0;
    {dat_init}
  }}
  method dget(i) {{ {dat_get} }}
  method dset(i, v) {{ {dat_set} }}
  method add_to(queue) {{
    self.link = nil;
    if (queue === nil) {{ return self; }}
    var peek = queue;
    var next = peek.link;
    while (!(next === nil)) {{
      peek = next;
      next = peek.link;
    }}
    peek.link = self;
    return queue;
  }}
}}

// Private-data records: one class per task kind (the paper's `void*`).
class IdleRec {{
  field control; field count;
  method init(c, n) {{ self.control = c; self.count = n; }}
}}
class WorkerRec {{
  field dest; field count;
  method init(d, n) {{ self.dest = d; self.count = n; }}
}}
class HandlerRec {{
  field work_q; field dev_q;
  method init() {{ self.work_q = nil; self.dev_q = nil; }}
}}
class DeviceRec {{
  field pending;
  method init() {{ self.pending = nil; }}
}}

class Task {{
  field link; field id; field priority; field queue;
  field held; field suspended; field runnable;
  field rec @inline_ideal;

  method setup(id, priority, queue) {{
    self.id = id;
    self.priority = priority;
    self.queue = queue;
    self.held = false;
    self.suspended = true;
    if (queue === nil) {{ self.runnable = false; }} else {{ self.runnable = true; }}
    self.link = TASKLIST;
    TASKLIST = self;
    TASKTAB[id] = self;
  }}

  method is_held_or_suspended() {{
    return self.held || (self.suspended && !self.runnable);
  }}

  method check_priority_add(task, packet) {{
    if (self.queue === nil) {{
      self.queue = packet;
      self.runnable = true;
      if (self.priority > task.priority) {{ return self; }}
    }} else {{
      self.queue = packet.add_to(self.queue);
    }}
    return task;
  }}

  method run_task() {{
    var packet = nil;
    if (self.suspended && self.runnable) {{
      packet = self.queue;
      self.queue = packet.link;
      self.suspended = false;
      if (self.queue === nil) {{ self.runnable = false; }} else {{ self.runnable = true; }}
    }}
    return self.run(packet);
  }}
}}

class IdleTask : Task {{
  method init(id, priority, queue, count) {{
    self.rec = new IdleRec(1, count);
    setup(id, priority, queue);
  }}
  method run(packet) {{
    var r = self.rec;
    r.count = r.count - 1;
    if (r.count == 0) {{ return hold_current(); }}
    if (r.control % 2 == 0) {{
      r.control = r.control / 2;
      return release(4);
    }}
    r.control = (r.control / 2 + 9241) % 65536;
    return release(5);
  }}
}}

class WorkerTask : Task {{
  method init(id, priority, queue) {{
    self.rec = new WorkerRec(2, 0);
    setup(id, priority, queue);
  }}
  method run(packet) {{
    if (packet === nil) {{ return suspend_current(); }}
    var r = self.rec;
    if (r.dest == 2) {{ r.dest = 3; }} else {{ r.dest = 2; }}
    packet.id = r.dest;
    packet.a1 = 0;
    var i = 0;
    while (i < 4) {{
      r.count = r.count + 1;
      if (r.count > 26) {{ r.count = 1; }}
      packet.dset(i, 64 + r.count);
      i = i + 1;
    }}
    return queue_packet(packet);
  }}
}}

class HandlerTask : Task {{
  method init(id, priority, queue) {{
    self.rec = new HandlerRec();
    setup(id, priority, queue);
  }}
  method run(packet) {{
    var r = self.rec;
    if (!(packet === nil)) {{
      if (packet.kind == 1) {{
        r.work_q = packet.add_to(r.work_q);
      }} else {{
        r.dev_q = packet.add_to(r.dev_q);
      }}
    }}
    if (!(r.work_q === nil)) {{
      var work = r.work_q;
      var count = work.a1;
      if (count >= 4) {{
        r.work_q = work.link;
        return queue_packet(work);
      }}
      if (!(r.dev_q === nil)) {{
        var dev = r.dev_q;
        r.dev_q = dev.link;
        dev.a1 = work.dget(count);
        work.a1 = count + 1;
        return queue_packet(dev);
      }}
    }}
    return suspend_current();
  }}
}}

class DeviceTask : Task {{
  method init(id, priority, queue) {{
    self.rec = new DeviceRec();
    setup(id, priority, queue);
  }}
  method run(packet) {{
    var r = self.rec;
    if (packet === nil) {{
      if (r.pending === nil) {{ return suspend_current(); }}
      var v = r.pending;
      r.pending = nil;
      return queue_packet(v);
    }}
    r.pending = packet;
    return hold_current();
  }}
}}

fn schedule() {{
  CURRENT = TASKLIST;
  while (!(CURRENT === nil)) {{
    if (CURRENT.is_held_or_suspended()) {{
      CURRENT = CURRENT.link;
    }} else {{
      CURRENT_ID = CURRENT.id;
      CURRENT = CURRENT.run_task();
    }}
  }}
}}

fn release(id) {{
  var t = TASKTAB[id];
  if (t === nil) {{ return nil; }}
  t.held = false;
  if (t.priority > CURRENT.priority) {{ return t; }}
  return CURRENT;
}}

fn hold_current() {{
  HOLD_COUNT = HOLD_COUNT + 1;
  CURRENT.held = true;
  return CURRENT.link;
}}

fn suspend_current() {{
  CURRENT.suspended = true;
  return CURRENT;
}}

fn queue_packet(packet) {{
  var t = TASKTAB[packet.id];
  if (t === nil) {{ return nil; }}
  QUEUE_COUNT = QUEUE_COUNT + 1;
  packet.link = nil;
  packet.id = CURRENT_ID;
  return t.check_priority_add(CURRENT, packet);
}}

fn main() {{
  TASKTAB = array(6);
  TASKLIST = nil;
  QUEUE_COUNT = 0;
  HOLD_COUNT = 0;

  var idle = new IdleTask(0, 0, nil, {count});
  // The idle task starts running.
  idle.suspended = false;
  idle.runnable = true;

  var wq = new Packet(nil, 1, 1);
  wq = new Packet(wq, 1, 1);
  var worker = new WorkerTask(1, 1000, wq);

  var qa = new Packet(nil, 4, 0);
  qa = new Packet(qa, 4, 0);
  qa = new Packet(qa, 4, 0);
  var handler_a = new HandlerTask(2, 2000, qa);

  var qb = new Packet(nil, 5, 0);
  qb = new Packet(qb, 5, 0);
  qb = new Packet(qb, 5, 0);
  var handler_b = new HandlerTask(3, 3000, qb);

  var device_a = new DeviceTask(4, 4000, nil);
  var device_b = new DeviceTask(5, 5000, nil);

  schedule();

  print QUEUE_COUNT;
  print HOLD_COUNT;
}}
"#,
        dat_decl = dat_decl,
        dat_field = if dat_decl.is_empty() {
            "field d0; field d1; field d2; field d3;"
        } else {
            "field dat @inline_ideal;"
        },
        dat_init = dat_init,
        dat_get = dat_get,
        dat_set = dat_set,
        count = count,
    )
}

/// Uniform model: packets hold a `DatRec` object; tasks hold private
/// records through the polymorphic `rec` slot.
pub fn source(size: BenchSize) -> String {
    body(
        idle_count(size),
        r#"class DatRec {
  field d0; field d1; field d2; field d3;
  method init() { self.d0 = 0; self.d1 = 0; self.d2 = 0; self.d3 = 0; }
}"#,
        "self.dat = new DatRec();",
        r#"var d = self.dat;
    if (i == 0) { return d.d0; }
    if (i == 1) { return d.d1; }
    if (i == 2) { return d.d2; }
    return d.d3;"#,
        r#"var d = self.dat;
    if (i == 0) { d.d0 = v; return nil; }
    if (i == 1) { d.d1 = v; return nil; }
    if (i == 2) { d.d2 = v; return nil; }
    d.d3 = v;
    return nil;"#,
    )
}

/// Hand-inlined variant: the packet data record is flattened into `Packet`
/// (what the original C++ declares inline); the polymorphic private-data
/// slot stays a reference because C++ cannot inline a `void*` slot.
pub fn manual_source(size: BenchSize) -> String {
    body(
        idle_count(size),
        "",
        "self.d0 = 0; self.d1 = 0; self.d2 = 0; self.d3 = 0;",
        r#"if (i == 0) { return self.d0; }
    if (i == 1) { return self.d1; }
    if (i == 2) { return self.d2; }
    return self.d3;"#,
        r#"if (i == 0) { self.d0 = v; return nil; }
    if (i == 1) { self.d1 = v; return nil; }
    if (i == 2) { self.d2 = v; return nil; }
    self.d3 = v;
    return nil;"#,
    )
}

/// The assembled benchmark.
pub fn benchmark(size: BenchSize) -> Benchmark {
    Benchmark {
        name: "richards",
        description: "OS simulator: polymorphic private task data, packet records",
        source: source(size),
        manual_source: manual_source(size),
        // Slots: Packet.dat, Task.rec, Packet.link, Task.link, Task.queue,
        // HandlerRec.work_q, HandlerRec.dev_q, DeviceRec.pending, TASKTAB
        // contents = 9 total. Ideal adds the task table (better array
        // analysis could split it, §6.4): dat + rec + tasktab = 3. C++ can
        // only declare the packet record inline (rec is void*): 1.
        // The analysis inlines dat and rec (per subclass): 2.
        ground_truth: GroundTruth {
            total: 9,
            ideal: 3,
            cxx: 1,
            expected_auto: 2,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_is_deterministic() {
        let p = oi_ir::lower::compile(&source(BenchSize::Small)).unwrap();
        let a = oi_vm::run(&p, &oi_vm::VmConfig::default()).unwrap();
        let b = oi_vm::run(&p, &oi_vm::VmConfig::default()).unwrap();
        assert_eq!(a.output, b.output);
        let lines: Vec<&str> = a.output.lines().collect();
        assert_eq!(lines.len(), 2);
        let queued: i64 = lines[0].parse().unwrap();
        let held: i64 = lines[1].parse().unwrap();
        assert!(queued > 0, "work must actually flow: {}", a.output);
        assert!(held > 0);
    }

    #[test]
    fn larger_sizes_do_more_work() {
        let run = |size| {
            let p = oi_ir::lower::compile(&source(size)).unwrap();
            oi_vm::run(&p, &oi_vm::VmConfig::default())
                .unwrap()
                .metrics
                .instructions
        };
        assert!(run(BenchSize::Default) > run(BenchSize::Small));
    }
}
