//! OOPACK ComplexBenchmark (paper §6).
//!
//! "One kernel (the ComplexBenchmark) uses arrays of complex number
//! objects; these numbers are inline allocated in C++, but would be
//! references in Java or Lisp. Our transformation inlines these objects
//! into their containing arrays." The paper credits part of the ~2x win to
//! laying the complex array out as parallel arrays (Fortran style).

use crate::eval::BenchSize;
use crate::ground_truth::GroundTruth;
use crate::programs::Benchmark;

/// Problem size: (array length, iterations).
pub fn params(size: BenchSize) -> (usize, usize) {
    match size {
        BenchSize::Small => (64, 4),
        BenchSize::Default => (512, 16),
        BenchSize::Large => (2048, 32),
    }
}

/// The uniform-object-model source: three arrays of `Complex` objects,
/// `c[i] = a[i]*b[i] + a[i]` repeated.
pub fn source(size: BenchSize) -> String {
    let (n, iters) = params(size);
    format!(
        r#"
// OOPACK ComplexBenchmark: arrays of complex-number objects.
class Complex {{
  field re; field im;
  method init(r, i) {{ self.re = r; self.im = i; }}
  method plus(o) {{
    return new Complex(self.re + o.re, self.im + o.im);
  }}
  method times(o) {{
    return new Complex(self.re * o.re - self.im * o.im,
                       self.re * o.im + self.im * o.re);
  }}
}}

fn main() {{
  var n = {n};
  var a = array(n);
  var b = array(n);
  var c = array(n);
  var i = 0;
  while (i < n) {{
    a[i] = new Complex(float(i % 10) * 0.5, 1.0);
    b[i] = new Complex(0.25, float(i % 7) * 0.125);
    i = i + 1;
  }}
  var iter = 0;
  while (iter < {iters}) {{
    i = 0;
    while (i < n) {{
      c[i] = a[i].times(b[i]).plus(a[i]);
      i = i + 1;
    }}
    iter = iter + 1;
  }}
  var sre = 0.0;
  var sim = 0.0;
  i = 0;
  while (i < n) {{
    sre = sre + c[i].re;
    sim = sim + c[i].im;
    i = i + 1;
  }}
  print sre;
  print sim;
}}
"#
    )
}

/// The hand-inlined variant: parallel float arrays, the layout a C (or
/// inline-allocating C++) programmer writes directly.
pub fn manual_source(size: BenchSize) -> String {
    let (n, iters) = params(size);
    format!(
        r#"
// OOPACK ComplexBenchmark, inline allocation done by hand:
// parallel re/im arrays, no Complex objects at all.
fn main() {{
  var n = {n};
  var are = array(n);
  var aim = array(n);
  var bre = array(n);
  var bim = array(n);
  var cre = array(n);
  var cim = array(n);
  var i = 0;
  while (i < n) {{
    are[i] = float(i % 10) * 0.5;
    aim[i] = 1.0;
    bre[i] = 0.25;
    bim[i] = float(i % 7) * 0.125;
    i = i + 1;
  }}
  var iter = 0;
  while (iter < {iters}) {{
    i = 0;
    while (i < n) {{
      var tre = are[i] * bre[i] - aim[i] * bim[i];
      var tim = are[i] * bim[i] + aim[i] * bre[i];
      cre[i] = tre + are[i];
      cim[i] = tim + aim[i];
      i = i + 1;
    }}
    iter = iter + 1;
  }}
  var sre = 0.0;
  var sim = 0.0;
  i = 0;
  while (i < n) {{
    sre = sre + cre[i];
    sim = sim + cim[i];
    i = i + 1;
  }}
  print sre;
  print sim;
}}
"#
    )
}

/// The assembled benchmark.
pub fn benchmark(size: BenchSize) -> Benchmark {
    Benchmark {
        name: "oopack",
        description: "ComplexBenchmark kernel: arrays of complex-number objects",
        source: source(size),
        manual_source: manual_source(size),
        // Slots: the three arrays' contents. All three are inline
        // allocated in C++ and all three are found automatically.
        ground_truth: GroundTruth {
            total: 3,
            ideal: 3,
            cxx: 3,
            expected_auto: 3,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_expected_sums() {
        // c = a*b + a is idempotent across iterations (c is overwritten),
        // so the sums are those of one iteration.
        let p = oi_ir::lower::compile(&source(BenchSize::Small)).unwrap();
        let out = oi_vm::run(&p, &oi_vm::VmConfig::default()).unwrap();
        let lines: Vec<&str> = out.output.lines().collect();
        assert_eq!(lines.len(), 2);
        let sre: f64 = lines[0].parse().unwrap();
        let sim: f64 = lines[1].parse().unwrap();
        // Recompute in Rust.
        let (n, _) = params(BenchSize::Small);
        let mut esre = 0.0;
        let mut esim = 0.0;
        for i in 0..n {
            let (ar, ai) = ((i % 10) as f64 * 0.5, 1.0);
            let (br, bi) = (0.25, (i % 7) as f64 * 0.125);
            esre += (ar * br - ai * bi) + ar;
            esim += (ar * bi + ai * br) + ai;
        }
        assert!((sre - esre).abs() < 1e-9, "{sre} vs {esre}");
        assert!((sim - esim).abs() < 1e-9, "{sim} vs {esim}");
    }
}
