//! Benchmark program sources.

pub mod oopack;
pub mod polyover;
pub mod richards;
pub mod silo;

use crate::eval::BenchSize;
use crate::ground_truth::GroundTruth;

/// One benchmark: a uniform-object-model program, a hand-inlined variant,
/// and its effectiveness ground truth.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Short name (`oopack`, `richards`, `silo`, `polyover-array`,
    /// `polyover-list`).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Izzy source, uniform object model (everything a reference).
    pub source: String,
    /// Izzy source with inline allocation done by hand — the `G++ -O2`
    /// stand-in.
    pub manual_source: String,
    /// Figure 14 ground truth.
    pub ground_truth: GroundTruth,
}

/// The full suite at a given size (paper Figure 17 has five bars groups:
/// polyover appears twice, as array and list variants).
pub fn all_benchmarks(size: BenchSize) -> Vec<Benchmark> {
    vec![
        oopack::benchmark(size),
        richards::benchmark(size),
        silo::benchmark(size),
        polyover::benchmark_array(size),
        polyover::benchmark_list(size),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_parse_and_lower() {
        for b in all_benchmarks(BenchSize::Small) {
            let p = oi_ir::lower::compile(&b.source)
                .unwrap_or_else(|e| panic!("{}: {}", b.name, e.render(&b.source)));
            oi_ir::verify::verify(&p).unwrap_or_else(|e| panic!("{}: {e:?}", b.name));
            let m = oi_ir::lower::compile(&b.manual_source)
                .unwrap_or_else(|e| panic!("{} manual: {}", b.name, e.render(&b.manual_source)));
            oi_ir::verify::verify(&m).unwrap_or_else(|e| panic!("{} manual: {e:?}", b.name));
        }
    }

    #[test]
    fn uniform_and_manual_variants_print_identically() {
        for b in all_benchmarks(BenchSize::Small) {
            let p = oi_ir::lower::compile(&b.source).unwrap();
            let m = oi_ir::lower::compile(&b.manual_source).unwrap();
            let config = oi_vm::VmConfig::default();
            let pu = oi_vm::run(&p, &config).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let mu = oi_vm::run(&m, &config).unwrap_or_else(|e| panic!("{} manual: {e}", b.name));
            assert_eq!(pu.output, mu.output, "{} manual variant diverges", b.name);
            assert!(!pu.output.is_empty(), "{} prints nothing", b.name);
        }
    }
}
