//! Silo event-driven simulator (paper §6).
//!
//! "Some wrapper objects for queues can be inlined into their containers,
//! and list items (essentially cons cells) can be eliminated by combining
//! them with their data. The queue wrappers are inline allocated in C++,
//! but the cons cells cannot be." And the negative result: "our analysis
//! cannot inline cons cells of the global event list, because it cannot
//! tell that a given event is in the list at most once" — events are
//! aliased between the global list and the stations that scheduled them.
//!
//! The model: jobs arrive at a ring of service stations following a
//! deterministic LCG; each station owns a FIFO `Queue` wrapper (inlinable)
//! and a `Stats` record (inlinable); every service completion appends a log
//! cell whose record is created at the append (merged, cons+data); events
//! live in a global time-ordered list *and* in the station that scheduled
//! them (not inlinable).

use crate::eval::BenchSize;
use crate::ground_truth::GroundTruth;
use crate::programs::Benchmark;

/// Number of simulated events.
pub fn event_count(size: BenchSize) -> usize {
    match size {
        BenchSize::Small => 400,
        BenchSize::Default => 4_000,
        BenchSize::Large => 20_000,
    }
}

/// Shared simulator body. The queue wrapper and stats record
/// representations are spliced per variant.
#[allow(clippy::too_many_arguments)]
fn body(
    events: usize,
    wrapper_decls: &str,
    station_fields: &str,
    station_init: &str,
    q_push: &str,
    q_pop: &str,
    q_len: &str,
    stat_bump: &str,
    stat_read: &str,
) -> String {
    format!(
        r#"
// Silo-style event-driven queueing simulator over 4 stations.

global EVLIST;     // global event list: EvCell cons cells (time-ordered)
global CLOCK;
global SEED;
global LOG;        // log list: cells merged with their records

{wrapper_decls}

class Job {{
  field id; field arrival; field link;
  method init(id, t) {{ self.id = id; self.arrival = t; self.link = nil; }}
}}

// An event: a job arrival (kind 0) or a service completion (kind 1).
// Events are referenced both from the global list and from the station
// that scheduled them — the aliasing that blocks cons/data merging.
class Event {{
  field time; field kind; field station;
  method init(t, k, s) {{ self.time = t; self.kind = k; self.station = s; }}
}}

class EvCell {{
  field ev; field next;
  method init(e, n) {{ self.ev = e; self.next = n; }}
}}

class LogRec {{
  field t; field s; field q;
  method init(t, s, q) {{ self.t = t; self.s = s; self.q = q; }}
}}

class LogCell {{
  field rec @inline_ideal; field next;
  method init(t, s, q, next) {{
    self.rec = new LogRec(t, s, q);
    self.next = next;
  }}
}}

class Station {{
  field id;
  field busy;
  field pending;     // the in-flight completion event (aliases EVLIST!)
  field served;
  {station_fields}
  method init(id) {{
    self.id = id;
    self.busy = false;
    self.pending = nil;
    self.served = 0;
    {station_init}
  }}
  method enqueue(job) {{
    {q_push}
  }}
  method dequeue() {{
    {q_pop}
  }}
  method qlen() {{
    {q_len}
  }}
  method note_served(t) {{
    self.served = self.served + 1;
    {stat_bump}
  }}
  method stat_sum() {{
    {stat_read}
  }}
}}

fn lcg() {{
  SEED = (SEED * 1103515245 + 12345) % 2147483648;
  return SEED;
}}

// Insert an event into the global time-ordered list.
fn post(ev) {{
  if (EVLIST === nil) {{
    EVLIST = new EvCell(ev, nil);
    return nil;
  }}
  var head = EVLIST;
  if (ev.time < head.ev.time) {{
    EVLIST = new EvCell(ev, head);
    return nil;
  }}
  var cur = head;
  while (!(cur.next === nil)) {{
    if (ev.time < cur.next.ev.time) {{
      cur.next = new EvCell(ev, cur.next);
      return nil;
    }}
    cur = cur.next;
  }}
  cur.next = new EvCell(ev, nil);
  return nil;
}}

fn next_event() {{
  var cell = EVLIST;
  EVLIST = cell.next;
  return cell.ev;
}}

fn start_service(s, t) {{
  var job = s.dequeue();
  if (job === nil) {{ return nil; }}
  s.busy = true;
  var done = new Event(t + 3 + lcg() % 11, 1, s);
  s.pending = done;     // aliased: station and EVLIST share the event
  post(done);
  return nil;
}}

fn main() {{
  SEED = 12345;
  CLOCK = 0;
  EVLIST = nil;
  LOG = nil;

  var stations = array(4);
  var i = 0;
  while (i < 4) {{
    stations[i] = new Station(i);
    i = i + 1;
  }}

  // Seed arrivals.
  var jobid = 0;
  i = 0;
  while (i < 4) {{
    post(new Event(1 + lcg() % 5, 0, stations[i]));
    i = i + 1;
  }}

  var processed = 0;
  while (processed < {events}) {{
    var ev = next_event();
    CLOCK = ev.time;
    var s = ev.station;
    if (ev.kind == 0) {{
      // Arrival: enqueue a job, schedule the next arrival here, and start
      // service if the server is free.
      jobid = jobid + 1;
      s.enqueue(new Job(jobid, CLOCK));
      post(new Event(CLOCK + 1 + lcg() % 7, 0, s));
      if (!s.busy) {{ start_service(s, CLOCK); }}
    }} else {{
      // Completion.
      s.busy = false;
      s.pending = nil;
      s.note_served(CLOCK);
      LOG = new LogCell(CLOCK, s.id, s.qlen(), LOG);
      start_service(s, CLOCK);
    }}
    processed = processed + 1;
  }}

  // Report: per-station served counts, stat checksum, log checksum.
  i = 0;
  var served_total = 0;
  var stat_total = 0;
  while (i < 4) {{
    served_total = served_total + stations[i].served;
    stat_total = stat_total + stations[i].stat_sum();
    i = i + 1;
  }}
  print served_total;
  print stat_total;
  var sum = 0;
  var cell = LOG;
  while (!(cell === nil)) {{
    var r = cell.rec;
    sum = sum + r.t + r.s * 7 + r.q * 31;
    cell = cell.next;
  }}
  print sum;
  print CLOCK;
}}
"#
    )
}

/// Uniform model: stations hold `Queue` wrapper and `Stats` record objects.
pub fn source(size: BenchSize) -> String {
    body(
        event_count(size),
        r#"class Queue {
  field head; field tail; field size;
  method init() { self.head = nil; self.tail = nil; self.size = 0; }
}
class Stats {
  field count; field qsum; field tlast;
  method init() { self.count = 0; self.qsum = 0; self.tlast = 0; }
}"#,
        "field queue @inline_ideal @inline_cxx; field stats @inline_ideal @inline_cxx;",
        "self.queue = new Queue(); self.stats = new Stats();",
        r#"var q = self.queue;
    job.link = nil;
    if (q.tail === nil) { q.head = job; } else { q.tail.link = job; }
    q.tail = job;
    q.size = q.size + 1;
    return nil;"#,
        r#"var q = self.queue;
    var job = q.head;
    if (job === nil) { return nil; }
    q.head = job.link;
    if (q.head === nil) { q.tail = nil; }
    q.size = q.size - 1;
    return job;"#,
        "return self.queue.size;",
        r#"var st = self.stats;
    st.count = st.count + 1;
    st.qsum = st.qsum + self.qlen();
    st.tlast = t;"#,
        r#"var st = self.stats;
    return st.count + st.qsum * 3 + st.tlast;"#,
    )
}

/// Hand-inlined variant: queue and stats state flattened into `Station`
/// (what the C++ version inline-allocates); the log cons cells stay
/// separate from their records — C++ cannot merge them.
pub fn manual_source(size: BenchSize) -> String {
    body(
        event_count(size),
        "",
        "field q_head; field q_tail; field q_size; field st_count; field st_qsum; field st_tlast;",
        r#"self.q_head = nil; self.q_tail = nil; self.q_size = 0;
    self.st_count = 0; self.st_qsum = 0; self.st_tlast = 0;"#,
        r#"job.link = nil;
    if (self.q_tail === nil) { self.q_head = job; } else { self.q_tail.link = job; }
    self.q_tail = job;
    self.q_size = self.q_size + 1;
    return nil;"#,
        r#"var job = self.q_head;
    if (job === nil) { return nil; }
    self.q_head = job.link;
    if (self.q_head === nil) { self.q_tail = nil; }
    self.q_size = self.q_size - 1;
    return job;"#,
        "return self.q_size;",
        r#"self.st_count = self.st_count + 1;
    self.st_qsum = self.st_qsum + self.qlen();
    self.st_tlast = t;"#,
        "return self.st_count + self.st_qsum * 3 + self.st_tlast;",
    )
}

/// The assembled benchmark.
pub fn benchmark(size: BenchSize) -> Benchmark {
    Benchmark {
        name: "silo",
        description: "event-driven simulator: queue wrappers, log cells, global event list",
        source: source(size),
        manual_source: manual_source(size),
        // Slots: Station.queue, Station.stats, LogCell.rec, EvCell.ev,
        // Event.station, Station.pending, Queue.head, Queue.tail,
        // Job.link, LogCell.next, EvCell.next, stations array = 12 total.
        // Ideal: queue, stats, rec (the event list stays aliased even for a
        // human) = 3. C++ inlines the wrappers but cannot merge cons cells
        // with data: 2. Automatic: queue, stats, rec = 3.
        ground_truth: GroundTruth {
            total: 12,
            ideal: 4,
            cxx: 3,
            expected_auto: 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_produces_stable_checksums() {
        let p = oi_ir::lower::compile(&source(BenchSize::Small)).unwrap();
        let out = oi_vm::run(&p, &oi_vm::VmConfig::default()).unwrap();
        let lines: Vec<&str> = out.output.lines().collect();
        assert_eq!(lines.len(), 4);
        let served: i64 = lines[0].parse().unwrap();
        assert!(served > 0, "stations must serve jobs: {}", out.output);
    }

    #[test]
    fn events_flow_through_global_list() {
        // The global event list forces allocations of EvCell; they must
        // remain in the inlined program too (the paper's negative result is
        // asserted in the integration tests; here we just check volume).
        let p = oi_ir::lower::compile(&source(BenchSize::Small)).unwrap();
        let out = oi_vm::run(&p, &oi_vm::VmConfig::default()).unwrap();
        assert!(out.metrics.allocations > event_count(BenchSize::Small) as u64);
    }
}
