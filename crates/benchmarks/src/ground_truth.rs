//! Figure 14 ground truth: per-benchmark inlinable-slot counts.
//!
//! An "object slot" is either a declared field observed to hold objects or
//! a distinct array allocation site holding objects. The paper's columns:
//!
//! - `total`: slots that hold objects at all,
//! - `ideal`: slots a human determined inlinable under aliasing constraints,
//! - `cxx`: slots the original C++ declared inline (C++ cannot inline
//!   polymorphic slots or cons cells, which is where the paper beats it),
//! - the *automatic* column is measured, not ground truth.

/// Hand-determined counts for one benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroundTruth {
    /// Object-holding slots (fields + array-content groups).
    pub total: usize,
    /// Ideally inlinable given aliasing constraints.
    pub ideal: usize,
    /// Declared inline in the original C++.
    pub cxx: usize,
    /// Slots the automatic analysis is expected to inline (fields +
    /// array sites). Used by integration tests as the expected "auto"
    /// column.
    pub expected_auto: usize,
}

impl GroundTruth {
    /// Invariant required of any sane ground truth: cxx ≤ ideal ≤ total and
    /// the expected automatic result is within ideal.
    pub fn is_consistent(&self) -> bool {
        self.cxx <= self.ideal && self.ideal <= self.total && self.expected_auto <= self.ideal
    }
}

#[cfg(test)]
mod tests {
    use crate::eval::BenchSize;

    #[test]
    fn all_ground_truths_are_consistent() {
        for b in crate::programs::all_benchmarks(BenchSize::Small) {
            assert!(
                b.ground_truth.is_consistent(),
                "{}: inconsistent ground truth {:?}",
                b.name,
                b.ground_truth
            );
        }
    }

    #[test]
    fn automatic_matches_or_beats_cxx_somewhere() {
        // The paper's headline effectiveness claim: "there was no field
        // manually declared inline in C++ that our analysis did not find
        // inlinable", and on three benchmarks it did strictly better.
        let benches = crate::programs::all_benchmarks(BenchSize::Small);
        assert!(benches
            .iter()
            .all(|b| b.ground_truth.expected_auto >= b.ground_truth.cxx));
        assert!(benches
            .iter()
            .any(|b| b.ground_truth.expected_auto > b.ground_truth.cxx));
    }
}
