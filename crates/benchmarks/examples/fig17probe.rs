//! Quick Figure 17 summary: speedups plus the allocation/cache mechanism,
//! at the default benchmark size.
//!
//! ```sh
//! cargo run --release -p oi-benchmarks --example fig17probe
//! ```

use oi_benchmarks::{all_benchmarks, evaluate, BenchSize};

fn main() {
    println!("{:16} {:>8} {:>8}", "benchmark", "inlined", "manual");
    for b in all_benchmarks(BenchSize::Default) {
        let e = evaluate(&b, &oi_vm::VmConfig::default(), &Default::default());
        println!(
            "{:16} {:>7.2}x {:>7.2}x   (allocs {} -> {}, misses {} -> {})",
            e.name,
            e.speedup(),
            e.manual_speedup(),
            e.baseline.allocations,
            e.inlined.allocations,
            e.baseline.cache_misses,
            e.inlined.cache_misses
        );
    }
}
