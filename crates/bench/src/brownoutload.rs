//! `oic bench brownoutload` — the overload-control gate (`oi.brownout.v1`).
//!
//! Replays a seeded cold-compile burst against an in-process serve
//! session with adaptive brownout enabled, hard enough that the
//! controller must descend at least one rung, then retries every shed
//! through the typed `retry_after_ms` contract and paces liveness probes
//! until the service climbs back to `guarded-full`.
//!
//! The gate fails on any of:
//!
//! - a protocol error (unanswered or unparseable response line);
//! - an unexpected error (anything that is not `ok:true` or a typed
//!   retryable refusal);
//! - zero brownout descends (the burst did not exercise the ladder);
//! - a give-up (a retried request that never converged);
//! - queue-wait p99 *during brownout* above twice the target — degraded
//!   service must actually be faster, or the ladder is theater;
//! - missing recovery: final tier not `guarded-full`, recovers ≠
//!   descends, or an open circuit breaker;
//! - a reconciliation mismatch between client tallies and the server's
//!   `serve.requests` / `serve.shed_total` counters (every attempt
//!   answered exactly once, every shed accounted).

use crate::client::{request_with_retries, with_pump_client, Transport, RETRYABLE_KINDS};
use crate::overload::{RetryPolicy, RetrySession};
use crate::serve::{ServeConfig, Server};
use oi_support::cli::{Arg, ArgScanner};
use oi_support::Json;
use std::time::Duration;

/// Tuning for one brownoutload run.
#[derive(Clone, Debug)]
pub struct BrownoutLoadConfig {
    /// Requests in the cold burst (pipelined, no pacing).
    pub burst: usize,
    /// Distinct sources the burst cycles through.
    pub sources: usize,
    /// Seed for retry jitter.
    pub seed: u64,
    /// The brownout controller's queue-wait p99 target (ms).
    pub target_ms: u64,
    /// Serve queue bound (small, so the burst builds real pressure).
    pub queue: usize,
    /// Pump workers.
    pub jobs: usize,
    /// Retries allowed per shed request.
    pub retries: u32,
}

impl Default for BrownoutLoadConfig {
    fn default() -> Self {
        BrownoutLoadConfig {
            burst: 40,
            sources: 12,
            seed: 1,
            target_ms: 50,
            queue: 6,
            jobs: 1,
            retries: 8,
        }
    }
}

/// Everything one run measured, plus the gate verdict.
#[derive(Debug)]
pub struct BrownoutLoadReport {
    config: BrownoutLoadConfig,
    /// Burst requests that eventually completed `ok:true`.
    completed: u64,
    /// Burst requests whose retries ran out.
    give_ups: u64,
    /// Every request line sent (burst + retries + probes).
    attempts: u64,
    /// Retry attempts beyond each request's first try.
    retries_used: u64,
    /// Shed responses observed client-side (`overloaded` / `shedding` /
    /// `tenant-over-concurrency`), at any attempt.
    shed_responses: u64,
    /// Sheds answered at the reader (id-less: never reached dispatch).
    reader_sheds: u64,
    /// Responses that were neither `ok:true` nor typed-retryable.
    unexpected_errors: u64,
    /// Unanswered or unparseable response lines.
    protocol_errors: u64,
    /// Total backoff slept across all retried requests (ms).
    backoff_ms_total: u64,
    /// Probe round-trips spent waiting for recovery.
    recovery_probes: u64,
    /// Did the controller return to `guarded-full` before the probe
    /// budget ran out?
    recovered: bool,
    /// Server counters after the session drained.
    serve_requests: u64,
    serve_sheds: u64,
    descends: u64,
    recovers: u64,
    final_tier: &'static str,
    breaker_open: i64,
    /// Queue-wait p99 observed while degraded (ns; 0 = no samples).
    brownout_p99_ns: u128,
    degraded_compiles: u64,
}

impl BrownoutLoadReport {
    /// Gate failures, empty when the run is clean.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut fails = Vec::new();
        if self.protocol_errors > 0 {
            fails.push(format!("{} protocol errors", self.protocol_errors));
        }
        if self.unexpected_errors > 0 {
            fails.push(format!("{} unexpected errors", self.unexpected_errors));
        }
        if self.descends == 0 {
            fails.push("burst never forced a brownout descend".to_string());
        }
        if self.give_ups > 0 {
            fails.push(format!("{} retried requests gave up", self.give_ups));
        }
        if self.completed + self.give_ups != self.config.burst as u64 {
            fails.push(format!(
                "burst accounting leak: {} completed + {} gave up != {} sent",
                self.completed, self.give_ups, self.config.burst
            ));
        }
        let bound_ns = u128::from(self.config.target_ms) * 2_000_000;
        if self.brownout_p99_ns > bound_ns {
            fails.push(format!(
                "brownout queue-wait p99 {}us exceeds 2x target ({}us)",
                self.brownout_p99_ns / 1_000,
                bound_ns / 1_000
            ));
        }
        if !self.recovered || self.final_tier != "guarded-full" {
            fails.push(format!(
                "service did not recover to guarded-full (final tier: {})",
                self.final_tier
            ));
        }
        if self.descends != self.recovers {
            fails.push(format!(
                "ladder did not unwind: {} descends vs {} recovers",
                self.descends, self.recovers
            ));
        }
        if self.breaker_open != 0 {
            fails.push(format!("{} circuit breakers left open", self.breaker_open));
        }
        if self.serve_requests != self.attempts - self.reader_sheds {
            fails.push(format!(
                "request reconciliation: server saw {} requests, client sent {} ({} shed at reader)",
                self.serve_requests, self.attempts, self.reader_sheds
            ));
        }
        if self.serve_sheds != self.shed_responses {
            fails.push(format!(
                "shed reconciliation: serve.shed_total {} != {} shed responses observed",
                self.serve_sheds, self.shed_responses
            ));
        }
        fails
    }

    /// The `oi.brownout.v1` document.
    pub fn to_json(&self) -> Json {
        let failures = self.gate_failures();
        Json::obj(vec![
            ("schema", "oi.brownout.v1".into()),
            (
                "config",
                Json::obj(vec![
                    ("burst", (self.config.burst as u64).into()),
                    ("sources", (self.config.sources as u64).into()),
                    ("seed", self.config.seed.into()),
                    ("target_ms", self.config.target_ms.into()),
                    ("queue", (self.config.queue as u64).into()),
                    ("jobs", (self.config.jobs as u64).into()),
                    ("retries", u64::from(self.config.retries).into()),
                ]),
            ),
            (
                "client",
                Json::obj(vec![
                    ("completed", self.completed.into()),
                    ("give_ups", self.give_ups.into()),
                    ("attempts", self.attempts.into()),
                    ("retries_used", self.retries_used.into()),
                    ("shed_responses", self.shed_responses.into()),
                    ("reader_sheds", self.reader_sheds.into()),
                    ("unexpected_errors", self.unexpected_errors.into()),
                    ("protocol_errors", self.protocol_errors.into()),
                    ("backoff_ms_total", self.backoff_ms_total.into()),
                    ("recovery_probes", self.recovery_probes.into()),
                ]),
            ),
            (
                "server",
                Json::obj(vec![
                    ("requests", self.serve_requests.into()),
                    ("shed_total", self.serve_sheds.into()),
                    ("brownout_descend_total", self.descends.into()),
                    ("brownout_recover_total", self.recovers.into()),
                    ("final_tier", self.final_tier.into()),
                    ("breaker_open", self.breaker_open.into()),
                    (
                        "brownout_queue_wait_p99_us",
                        ((self.brownout_p99_ns / 1_000).min(u128::from(u64::MAX)) as u64).into(),
                    ),
                    ("brownout_degraded_compiles", self.degraded_compiles.into()),
                ]),
            ),
            (
                "gate",
                Json::obj(vec![
                    ("passed", failures.is_empty().into()),
                    (
                        "failures",
                        Json::Arr(failures.into_iter().map(Json::from).collect()),
                    ),
                ]),
            ),
        ])
    }

    /// Human-readable summary table.
    pub fn render_text(&self) -> String {
        let failures = self.gate_failures();
        let mut s = String::new();
        s.push_str("brownoutload\n");
        s.push_str(&format!(
            "  burst {} over {} sources, target {}ms, queue {}, {} job(s), {} retries\n",
            self.config.burst,
            self.config.sources,
            self.config.target_ms,
            self.config.queue,
            self.config.jobs,
            self.config.retries
        ));
        s.push_str(&format!(
            "  completed {}  give-ups {}  attempts {}  retries {}  backoff {}ms\n",
            self.completed, self.give_ups, self.attempts, self.retries_used, self.backoff_ms_total
        ));
        s.push_str(&format!(
            "  sheds {} (reader {})  descends {}  recovers {}  final tier {}\n",
            self.shed_responses, self.reader_sheds, self.descends, self.recovers, self.final_tier
        ));
        s.push_str(&format!(
            "  brownout p99 {}us  degraded compiles {}  breaker open {}\n",
            self.brownout_p99_ns / 1_000,
            self.degraded_compiles,
            self.breaker_open
        ));
        if failures.is_empty() {
            s.push_str("  gate: PASS\n");
        } else {
            s.push_str("  gate: FAIL\n");
            for f in &failures {
                s.push_str(&format!("    - {f}\n"));
            }
        }
        s
    }
}

/// The i-th synthetic source: distinct class and constant pools so every
/// source is a distinct cache key with real (but small) compile work.
fn source(i: usize) -> String {
    format!(
        "class Inner{i} {{ field a; field b;
           method init(x, y) {{ self.a = x; self.b = y; }}
         }}
         class Outer{i} {{ field lo; field hi;
           method init(x, y) {{ self.lo = new Inner{i}(x, x + {i}); self.hi = new Inner{i}(y, y + {i}); }}
           method span() {{ return self.hi.a - self.lo.a + self.hi.b - self.lo.b; }}
         }}
         fn main() {{
           var o = new Outer{i}(1, {});
           print o.span();
         }}",
        i + 2
    )
}

fn compile_line(source_ix: usize, id: u64) -> String {
    Json::obj(vec![
        ("id", Json::from(id)),
        ("op", "compile".into()),
        ("source", source(source_ix).into()),
    ])
    .to_string()
}

fn is_shed_kind(kind: &str) -> bool {
    matches!(kind, "overloaded" | "shedding" | "tenant-over-concurrency")
}

fn kind_of(resp: &Json) -> &str {
    resp.get("error_kind").and_then(Json::as_str).unwrap_or("")
}

fn is_ok(resp: &Json) -> bool {
    resp.get("ok").and_then(Json::as_bool).unwrap_or(false)
}

/// Runs the burst, the retry convergence, and the recovery wait.
pub fn run_brownoutload(config: &BrownoutLoadConfig) -> BrownoutLoadReport {
    let server = Server::new(ServeConfig {
        brownout_target_ms: Some(config.target_ms),
        brownout_dwell_ms: 25,
        queue: config.queue.max(1),
        jobs: config.jobs.max(1),
        ..ServeConfig::default()
    });
    let mut completed = 0u64;
    let mut give_ups = 0u64;
    let mut attempts = 0u64;
    let mut retries_used = 0u64;
    let mut shed_responses = 0u64;
    let mut reader_sheds = 0u64;
    let mut unexpected_errors = 0u64;
    let mut protocol_errors = 0u64;
    let mut backoff_ms_total = 0u64;
    let mut recovery_probes = 0u64;
    let mut recovered = false;

    with_pump_client(&server, |client| {
        // Phase 1 — the burst: everything pipelined at once, cold cache,
        // bounded queue. The reader sheds the overflow `overloaded`, the
        // queue builds wait, and the controller must descend.
        let lines: Vec<String> = (0..config.burst)
            .map(|i| compile_line(i % config.sources.max(1), i as u64))
            .collect();
        for line in &lines {
            client.send_line(line);
        }
        let mut needs_retry: Vec<usize> = Vec::new();
        for (i, _) in lines.iter().enumerate() {
            attempts += 1;
            match client.recv_line() {
                None => protocol_errors += 1,
                Some(resp) => {
                    let kind = kind_of(&resp).to_string();
                    if is_ok(&resp) {
                        completed += 1;
                    } else if RETRYABLE_KINDS.contains(&kind.as_str()) {
                        if is_shed_kind(&kind) {
                            shed_responses += 1;
                        }
                        if resp.get("id").is_none_or(|id| *id == Json::Null) {
                            reader_sheds += 1;
                        }
                        needs_retry.push(i);
                    } else {
                        unexpected_errors += 1;
                    }
                }
            }
        }

        // Phase 2 — convergence: every shed is retried lock-step under
        // the typed retry contract. Backoff gives the service air; the
        // cache warms as retries land, so pressure decays naturally.
        let policy = RetryPolicy {
            max_attempts: config.retries.saturating_add(1),
            ..RetryPolicy::default()
        };
        for &i in &needs_retry {
            let mut session =
                RetrySession::new(policy, config.seed ^ (i as u64).wrapping_mul(0x9e37_79b9));
            let outcome = request_with_retries(client, &lines[i], &mut session);
            attempts += u64::from(outcome.attempts);
            retries_used += u64::from(outcome.attempts.saturating_sub(1));
            backoff_ms_total += outcome.backoff_ms_total;
            // Every non-final answer in the retry loop was a retryable
            // refusal; the final one is too when the budget ran out.
            let final_retryable = outcome
                .response
                .as_ref()
                .map(|r| RETRYABLE_KINDS.contains(&kind_of(r)))
                .unwrap_or(false);
            let refusals =
                u64::from(outcome.attempts.saturating_sub(1)) + u64::from(final_retryable);
            shed_responses += refusals; // no quarantine in this scenario
            match &outcome.response {
                None => protocol_errors += 1,
                Some(resp) if is_ok(resp) => completed += 1,
                Some(resp) if final_retryable => {
                    debug_assert!(outcome.gave_up, "retryable final implies give-up: {resp}");
                    give_ups += 1;
                }
                Some(_) => unexpected_errors += 1,
            }
        }

        // Phase 3 — recovery: paced liveness probes feed the controller
        // calm samples until it climbs back to guarded-full (or the
        // probe budget proves it never will).
        for probe in 0..2_000u64 {
            let line = Json::obj(vec![
                ("id", Json::from(1_000_000 + probe)),
                ("op", "health".into()),
            ])
            .to_string();
            attempts += 1;
            recovery_probes += 1;
            let Some(resp) = client.roundtrip(&line) else {
                protocol_errors += 1;
                break;
            };
            if !is_ok(&resp) {
                unexpected_errors += 1;
            }
            let tier = resp
                .get("payload")
                .and_then(|p| p.get("brownout_tier"))
                .and_then(Json::as_str)
                .unwrap_or("");
            if tier == "guarded-full" {
                recovered = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    let m = server.metrics();
    BrownoutLoadReport {
        config: config.clone(),
        completed,
        give_ups,
        attempts,
        retries_used,
        shed_responses,
        reader_sheds,
        unexpected_errors,
        protocol_errors,
        backoff_ms_total,
        recovery_probes,
        recovered,
        serve_requests: m.counter("serve.requests"),
        serve_sheds: m.counter("serve.shed_total"),
        descends: m.counter("serve.brownout_descend_total"),
        recovers: m.counter("serve.brownout_recover_total"),
        final_tier: server.brownout_level().name(),
        breaker_open: m.gauge("serve.breaker_open"),
        brownout_p99_ns: m.quantile_ns("serve.brownout_queue_wait_ns", 99.0),
        degraded_compiles: m.counter("serve.brownout_degraded_compiles"),
    }
}

const USAGE: &str = "usage: oi-bench brownoutload [--burst N] [--sources K] [--seed S] \
     [--target-ms N] [--queue N] [--jobs N] [--retries N] [--json] [--out FILE]\n\
     \n\
     Replay a seeded cold-compile burst against a brownout-enabled serve\n\
     session, retry every shed through the typed retry_after_ms contract,\n\
     and wait for recovery. Emits oi.brownout.v1 with --json; exit 1 when\n\
     the overload gate fails (no descend, any give-up or unexpected error,\n\
     unbounded brownout p99, missing recovery, or a shed/request\n\
     reconciliation mismatch).";

fn usage_error(msg: &str) -> u8 {
    eprintln!("{msg}\n\n{USAGE}");
    2
}

fn parse_flag<T: std::str::FromStr>(scanner: &mut ArgScanner, flag: &str) -> Result<T, String> {
    let v = scanner.value_for(flag).unwrap_or_default();
    v.parse::<T>()
        .map_err(|_| format!("`{flag}` needs a valid value, got `{v}`"))
}

/// Entry point for `oic bench brownoutload`.
pub fn cli_main(args: &[String]) -> u8 {
    let mut config = BrownoutLoadConfig::default();
    let mut json_output = false;
    let mut out: Option<String> = None;
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        let arg = match arg {
            Ok(a) => a,
            Err(e) => return usage_error(&e),
        };
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "burst" => match parse_flag::<usize>(&mut scanner, "--burst") {
                    Ok(n) if n > 0 => config.burst = n,
                    _ => return usage_error("`--burst` needs a positive integer"),
                },
                "sources" => match parse_flag::<usize>(&mut scanner, "--sources") {
                    Ok(n) if n > 0 => config.sources = n,
                    _ => return usage_error("`--sources` needs a positive integer"),
                },
                "seed" => match parse_flag::<u64>(&mut scanner, "--seed") {
                    Ok(n) => config.seed = n,
                    Err(e) => return usage_error(&e),
                },
                "target-ms" => match parse_flag::<u64>(&mut scanner, "--target-ms") {
                    Ok(n) if n > 0 => config.target_ms = n,
                    _ => return usage_error("`--target-ms` needs a positive integer"),
                },
                "queue" => match parse_flag::<usize>(&mut scanner, "--queue") {
                    Ok(n) if n > 0 => config.queue = n,
                    _ => return usage_error("`--queue` needs a positive integer"),
                },
                "jobs" => match parse_flag::<usize>(&mut scanner, "--jobs") {
                    Ok(n) if n > 0 => config.jobs = n,
                    _ => return usage_error("`--jobs` needs a positive integer"),
                },
                "retries" => match parse_flag::<u32>(&mut scanner, "--retries") {
                    Ok(n) => config.retries = n,
                    Err(e) => return usage_error(&e),
                },
                "json" => json_output = true,
                "out" => match scanner.value_for("--out") {
                    Ok(path) => out = Some(path),
                    Err(_) => return usage_error("`--out` needs a file path"),
                },
                other => return usage_error(&format!("unknown flag `--{other}`")),
            },
            Arg::Flag { name, value } => {
                return usage_error(&format!(
                    "unknown flag `--{name}={}`",
                    value.unwrap_or_default()
                ))
            }
            Arg::Positional(p) => return usage_error(&format!("unexpected argument `{p}`")),
        }
    }
    let report = run_brownoutload(&config);
    let doc = if json_output {
        report.to_json().to_string()
    } else {
        report.render_text().trim_end().to_string()
    };
    let code = match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
            eprintln!("wrote {path}");
            0
        }
        None => {
            println!("{doc}");
            0
        }
    };
    if code != 0 {
        return code;
    }
    u8::from(!report.gate_failures().is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brownoutload_gate_passes_and_reconciles() {
        let report = run_brownoutload(&BrownoutLoadConfig::default());
        assert!(
            report.gate_failures().is_empty(),
            "gate failures: {:?}\n{}",
            report.gate_failures(),
            report.render_text()
        );
        assert!(report.descends >= 1, "burst must force a descend");
        assert_eq!(report.completed, report.config.burst as u64);
        let doc = report.to_json();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("oi.brownout.v1")
        );
        assert_eq!(
            doc.get("gate")
                .and_then(|g| g.get("passed"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn a_gentle_trickle_fails_the_descend_gate() {
        // Tiny burst against a huge queue: no pressure, no descend — the
        // gate must notice the scenario proved nothing.
        let report = run_brownoutload(&BrownoutLoadConfig {
            burst: 2,
            sources: 2,
            queue: 512,
            target_ms: 10_000,
            ..BrownoutLoadConfig::default()
        });
        assert!(report
            .gate_failures()
            .iter()
            .any(|f| f.contains("never forced a brownout descend")));
    }
}
